#!/usr/bin/env python
"""Fail when docs reference files or modules that do not exist.

Checks, across README.md and docs/**/*.md:

* relative markdown links — ``[text](path)`` — must point at an existing
  file or directory (anchors and external URLs are skipped);
* source-path references — `` `src/.../file.py` `` or
  ``src/.../file.py:123`` — must name an existing file;
* dotted module references — `` `repro.x.y` `` (optionally with a
  trailing ``.Symbol``) — must be importable as a module path under
  ``src/``.

Run from the repo root: ``python tools/check_doc_links.py``.
Exit code 0 = clean, 1 = broken references (each printed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
SRC_PATH = re.compile(r"\b(src/[\w/.-]+\.py)(?::[\d-]+)?")
MODULE_REF = re.compile(r"`(repro(?:\.\w+)+)`")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").rglob("*.md"))
    return [f for f in files if f.exists()]


def module_exists(dotted: str) -> bool:
    """True when ``dotted`` resolves to a module under src/, possibly
    followed by up to two attribute parts (``module.Class.method``)."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        base = SRC.joinpath(*parts[:cut])
        is_module = base.with_suffix(".py").exists()
        is_package = (base / "__init__.py").exists()
        if is_module or is_package:
            trailing = len(parts) - cut
            # A full match is always fine; attribute refs hang off a
            # real .py module and are at most Class.method deep.
            return trailing == 0 or (is_module and trailing <= 2)
    return False


def check(doc: Path) -> list[str]:
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(REPO)
    problems = []
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith("mailto:"):
            continue
        if not (doc.parent / target).exists():
            problems.append(f"{rel}: broken link -> {target}")
    for match in SRC_PATH.finditer(text):
        if not (REPO / match.group(1)).exists():
            problems.append(f"{rel}: missing source file -> "
                            f"{match.group(1)}")
    for match in MODULE_REF.finditer(text):
        if not module_exists(match.group(1)):
            problems.append(f"{rel}: unknown module -> {match.group(1)}")
    return problems


def main() -> int:
    problems = []
    for doc in doc_files():
        problems += check(doc)
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken doc reference(s)", file=sys.stderr)
        return 1
    print(f"doc links OK ({len(doc_files())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
