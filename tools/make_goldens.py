"""Regenerate the committed golden wire traces under tests/goldens/.

Usage (from the repo root)::

    PYTHONPATH=src python tools/make_goldens.py

Only run this after an *intended* wire-behaviour change, and commit the
refreshed files together with the change that caused them.  The scenario
registry lives in tests/obs/test_golden_traces.py so the generator and
the comparison test can never drift apart.
"""

from __future__ import annotations

import pathlib
import shutil
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from tests.obs.test_golden_traces import (  # noqa: E402
    GOLDEN_ARTIFACTS, GOLDEN_DIR, SCENARIOS)


def main() -> int:
    for name, scenario in sorted(SCENARIOS.items()):
        with tempfile.TemporaryDirectory() as tmp:
            paths = scenario(pathlib.Path(tmp))
            out_dir = GOLDEN_DIR / name
            out_dir.mkdir(parents=True, exist_ok=True)
            for artifact in GOLDEN_ARTIFACTS:
                dest = out_dir / artifact
                shutil.copyfile(paths[artifact], dest)
                print(f"{dest.relative_to(REPO_ROOT)}: "
                      f"{dest.stat().st_size} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
