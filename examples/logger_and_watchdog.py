#!/usr/bin/env python3
"""The paper's two extensions, demonstrated end to end.

1. **Stream logger** (Sec. 4.3) — base ST-TCP has exactly one
   unrecoverable single failure: the primary crashes while the backup is
   still fetching client bytes the primary had already acked.  A passive
   logger on the LAN records the client stream and re-supplies those
   bytes.

2. **Application watchdog** (Sec. 4.2.2) — an application failure on an
   *idle* connection produces no TCP-layer signal; an app-level watchdog
   reports the suspicion to ST-TCP directly.

Run:  python examples/logger_and_watchdog.py
"""

from repro.apps import EchoClient, EchoServer, StreamClient, StreamServer
from repro.faults import HwCrash, TransientLoss
from repro.scenarios import build_testbed
from repro.sim import millis, seconds
from repro.sttcp import EventKind


def output_commit_demo(with_logger: bool) -> None:
    tb = build_testbed(seed=21)
    EchoServer(tb.primary, "e-p", port=80).start()
    EchoServer(tb.backup, "e-b", port=80).start()
    tb.pair.start()
    logger = None
    if with_logger:
        _host, logger = tb.add_logger()
    client = EchoClient(tb.client, "c", tb.service_ip, port=80,
                        message_size=4096, interval_ns=millis(4), count=2000)
    client.start()
    # The unrecoverable window: loss burst at the backup, primary crash
    # while the missed-byte fetch is still in progress.
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.8))
    tb.inject.at(seconds(1) + millis(250), HwCrash(tb.primary))
    tb.run_until(120)
    unrecoverable = tb.pair.backup.events.has(EventKind.UNRECOVERABLE)
    label = "with logger   " if with_logger else "without logger"
    extra = (f", logger served {logger.fetches_served} fetches"
             if logger else "")
    print(f"  {label}: echoes {len(client.rtts_ns)}/{client.count}, "
          f"resets {client.reset_count}, "
          f"unrecoverable={unrecoverable}{extra}")


def watchdog_demo(with_watchdog: bool) -> None:
    tb = build_testbed(seed=31)
    server_p = StreamServer(tb.primary, "srv-p", port=80)
    server_p.start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    if with_watchdog:
        tb.pair.primary.attach_watchdog(server_p, period_ns=millis(100))
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=10_000, close_when_complete=False)
    client.start()
    tb.world.sim.schedule_at(seconds(2),
                             lambda: server_p.crash(cleanup=False))
    tb.run_until(20)
    takeover = tb.pair.backup.takeover_at
    label = "with watchdog   " if with_watchdog else "without watchdog"
    if takeover:
        print(f"  {label}: failure detected, takeover at "
              f"{takeover / 1e9:.2f}s ({(takeover - seconds(2)) / 1e9:.2f}s "
              "after the hang)")
    else:
        print(f"  {label}: idle-connection app failure NOT detected "
              "within 18s (the paper's admitted gap)")


def main() -> None:
    print("1. Output-commit problem: primary crashes mid-recovery "
          "(Sec. 4.3)")
    output_commit_demo(with_logger=False)
    output_commit_demo(with_logger=True)
    print("\n2. Idle-connection application failure (Sec. 4.2.2)")
    watchdog_demo(with_watchdog=False)
    watchdog_demo(with_watchdog=True)


if __name__ == "__main__":
    main()
