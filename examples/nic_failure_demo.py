#!/usr/bin/env python3
"""Demo 5 as a script: NIC failures and the dual-link heartbeat.

Part 1 fails the primary's NIC, part 2 the backup's.  In both cases the
IP-link heartbeat dies while the serial null-modem heartbeat survives;
the servers then use the heartbeat's progress counters and gateway-ping
results (exchanged over the serial line) to work out whose NIC died.

Run:  python examples/nic_failure_demo.py
"""

from repro.faults import NicFailure
from repro.metrics import format_duration
from repro.scenarios import RunOptions, run_failover_experiment
from repro.sttcp import EventKind


def report(result, engine, title: str) -> None:
    print(f"\n--- {title} ---")
    events = engine.events
    print("  IP HB link down   :", events.has(EventKind.HB_IP_LINK_DOWN))
    print("  serial HB link    :",
          "stayed up" if not events.has(EventKind.HB_SERIAL_LINK_DOWN)
          else "DOWN")
    print("  gateway pings     :",
          "probing started" if events.has(EventKind.PING_PROBING) else "-")
    diagnosis = events.first(EventKind.NIC_FAILURE_DETECTED)
    print("  diagnosis         :",
          diagnosis.detail.get("symptom", "-") if diagnosis else "-")
    pair = result.testbed.pair
    if pair.backup.takeover_at is not None:
        print("  recovery          : backup took over; primary powered down")
        print("  failover time     :",
              format_duration(result.timeline.failover_time_ns))
    else:
        print("  recovery          : primary switched to non-fault-tolerant "
              "mode; backup powered down")
        print("  client impact     : none (stall "
              f"{format_duration(result.glitch_ns)})")
    print("  stream intact     :", result.stream_intact)


def main() -> None:
    print("30 MB stream; a NIC fails at t=1s while both hosts stay alive.")

    part1 = run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.primary.nics[0]),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))
    report(part1, part1.testbed.pair.backup, "part 1: primary NIC fails")

    part2 = run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.backup.nics[0]),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))
    report(part2, part2.testbed.pair.primary, "part 2: backup NIC fails")

    print("\nOne HB channel would have made these cases indistinguishable"
          "\nfrom a machine crash (see bench_ablation_dual_hb) — the serial"
          "\nlink is what lets ST-TCP assign blame correctly.")


if __name__ == "__main__":
    main()
