#!/usr/bin/env python3
"""Demo 3 as a script: what does ST-TCP cost when nothing fails?

Transfers a 100 MB file with ST-TCP enabled and disabled and compares
transfer times, plus a per-RTT view using the echo workload.

Run:  python examples/overhead_comparison.py
"""

from repro.apps import EchoClient, EchoServer, FileClient, FileServer
from repro.scenarios import build_testbed
from repro.sim import millis

FILE_SIZE = 100_000_000


def file_transfer(enable_sttcp: bool) -> FileClient:
    tb = build_testbed(seed=5,
                       mode="sttcp" if enable_sttcp else "baseline")
    FileServer(tb.primary, "fs-p", port=80).start()
    if enable_sttcp:
        FileServer(tb.backup, "fs-b", port=80).start()
        tb.pair.start()
    target = tb.service_ip if enable_sttcp else tb.addresses.primary_ip
    client = FileClient(tb.client, "client", target, port=80,
                        file_size=FILE_SIZE)
    client.start()
    tb.run_until(60)
    return client


def echo_rtt(enable_sttcp: bool) -> float:
    tb = build_testbed(seed=5,
                       mode="sttcp" if enable_sttcp else "baseline")
    EchoServer(tb.primary, "echo-p", port=80).start()
    if enable_sttcp:
        EchoServer(tb.backup, "echo-b", port=80).start()
        tb.pair.start()
    target = tb.service_ip if enable_sttcp else tb.addresses.primary_ip
    client = EchoClient(tb.client, "client", target, port=80,
                        message_size=64, interval_ns=millis(10), count=200)
    client.start()
    tb.run_until(30)
    return client.mean_rtt_ns


def main() -> None:
    print(f"Transferring {FILE_SIZE // 1_000_000} MB over the 100 Mbps "
          "testbed, failure-free...")
    with_st = file_transfer(True)
    without = file_transfer(False)
    t_on, t_off = with_st.transfer_time_ns, without.transfer_time_ns
    print(f"  ST-TCP enabled : {t_on / 1e9:8.4f} s "
          f"({with_st.throughput_mbps:5.1f} Mbps)")
    print(f"  ST-TCP disabled: {t_off / 1e9:8.4f} s "
          f"({without.throughput_mbps:5.1f} Mbps)")
    print(f"  bulk overhead  : {(t_on - t_off) / t_off * 100:+.2f}%")

    print("\nPer-request view (64-byte echo round trips):")
    rtt_on = echo_rtt(True)
    rtt_off = echo_rtt(False)
    print(f"  ST-TCP enabled : mean RTT {rtt_on / 1e6:.3f} ms")
    print(f"  ST-TCP disabled: mean RTT {rtt_off / 1e6:.3f} ms")
    print(f"  RTT overhead   : {(rtt_on - rtt_off) / rtt_off * 100:+.2f}%")

    print("\nDuring failure-free operation the client talks standard TCP to"
          "\nthe primary only; replication costs are off the critical path"
          "\n(heartbeats, suppressed backup traffic) — hence 'insignificant"
          "\noverhead' (paper Demo 3).")


if __name__ == "__main__":
    main()
