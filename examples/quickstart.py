#!/usr/bin/env python3
"""Quickstart: a replicated TCP service surviving a primary crash.

Builds the paper's Figure-2 testbed (client + primary + backup on a
switch, shared serviceIP behind a multicast Ethernet address, serial
heartbeat cable, power strip), streams data to a client, crashes the
primary mid-transfer, and shows that the client never notices.

Run:  python examples/quickstart.py
"""

from repro.apps import StreamClient, StreamServer
from repro.faults import HwCrash
from repro.metrics import ClientStreamMonitor, build_timeline, format_duration
from repro.scenarios import build_testbed
from repro.sim import seconds


def main() -> None:
    # 1. The testbed: switch, client (= gateway), primary, backup,
    #    serviceIP aliased on both servers, static ARP -> multicast EA.
    tb = build_testbed(seed=1)

    # 2. The service: a deterministic streaming server runs on BOTH
    #    machines (ST-TCP requires a deterministic replica, paper Sec. 2).
    StreamServer(tb.primary, "server-primary", port=80).start()
    StreamServer(tb.backup, "server-backup", port=80).start()

    # 3. Switch ST-TCP on: heartbeats, replication, failure detection.
    tb.pair.start()

    # 4. An ordinary TCP client — no modifications whatsoever — downloads
    #    50 MB from serviceIP.
    monitor = ClientStreamMonitor(tb.world)
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=50_000_000, monitor=monitor)
    client.start()

    # 5. Two seconds in, the primary suffers a hardware crash.
    fault_at = seconds(2)
    tb.inject.at(fault_at, HwCrash(tb.primary))

    # 6. Run the virtual world.
    tb.run_until(40)

    # 7. What did the client experience?
    timeline = build_timeline(fault_at, tb.pair.backup.events,
                              tb.pair.primary.events, monitor)
    print("transfer complete :", client.received == client.total_bytes)
    print("bytes received    :", f"{client.received:,}")
    print("payload corrupted :", client.corrupt_at is not None)
    print("connection resets :", client.reset_count)
    print("failover timeline :", timeline.describe())
    print("client glitch     :",
          format_duration(timeline.failover_time_ns),
          "(detection", format_duration(timeline.detection_latency_ns),
          "+ retransmission residue",
          format_duration(timeline.backoff_residue_ns) + ")")
    assert client.received == client.total_bytes
    assert client.reset_count == 0
    print("\nThe primary died mid-stream; the client never noticed. "
          "That is ST-TCP.")


if __name__ == "__main__":
    main()
