#!/usr/bin/env python3
"""A *stateful* service under ST-TCP: a replicated key-value store.

ST-TCP assumes the server application is deterministic — given the same
input stream, the replica computes the same state.  This example writes 50
keys, crashes the primary, and reads all 50 back from the backup **over
the same TCP connection**, without the client noticing anything.

Run:  python examples/kvstore_failover.py
"""

from repro.apps.kvstore import KvClient, KvServer
from repro.faults import HwCrash
from repro.scenarios import build_testbed
from repro.sim import millis, seconds


def main() -> None:
    tb = build_testbed(seed=41)
    KvServer(tb.primary, "kv-primary", port=80).start()
    backup_kv = KvServer(tb.backup, "kv-backup", port=80)
    backup_kv.start()
    tb.pair.start()

    writes = [b"SET user:%d name%d" % (i, i) for i in range(50)]
    reads = [b"GET user:%d" % i for i in range(50)]
    client = KvClient(tb.client, "client", tb.service_ip, port=80,
                      commands=writes + [b"KEYS"] + reads,
                      interval_ns=millis(20))
    client.start()

    # All 50 writes land in the first second; the primary dies at 1.2s,
    # before any of the reads are issued.
    tb.inject.at(seconds(1.2), HwCrash(tb.primary))
    tb.run_until(60)

    print("commands issued :", len(client.commands))
    print("replies received:", len(client.replies))
    print("connection reset:", client.reset_count)
    print("KEYS after crash:", client.replies[50].decode())
    reads_ok = client.replies[51:] == [b"VALUE name%d" % i for i in range(50)]
    print("all 50 reads answered by the backup:", reads_ok)
    print("backup store size:", len(backup_kv.store))
    assert reads_ok and client.reset_count == 0
    print("\nEvery key written to the dead primary was served by the "
          "backup,\non the same TCP connection — replicated state for free,"
          "\ncourtesy of the determinism assumption (paper Sec. 2).")


if __name__ == "__main__":
    main()
