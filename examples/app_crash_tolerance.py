#!/usr/bin/env python3
"""Demo 4 as a script: tolerating application crash failures.

Shows both paper scenarios against a live transfer:

1. the primary's application *hangs* (no FIN — Sec. 4.2.1): detected via
   the AppMaxLagBytes / AppMaxLagTime criteria carried in the heartbeat;
2. the OS *cleans up* the crashed application and closes its socket
   (a FIN is generated — Sec. 4.2.2): the FIN is intercepted and held for
   MaxDelayFIN while the failure is confirmed, then the backup takes over.

Run:  python examples/app_crash_tolerance.py
"""

from repro.faults import AppCrashWithCleanup, AppHang
from repro.metrics import format_duration
from repro.scenarios import RunOptions, run_failover_experiment
from repro.sim import seconds
from repro.sttcp import EventKind, SttcpConfig

CONFIG = SttcpConfig(max_delay_fin_ns=seconds(5))


def report(result, title: str) -> None:
    print(f"\n--- {title} ---")
    pair = result.testbed.pair
    detection = pair.backup.events.first(EventKind.APP_FAILURE_DETECTED)
    print("  detected as       :", detection.kind if detection else "-")
    if detection:
        print("  symptom           :", detection.detail["symptom"])
    held = pair.primary.events.first(EventKind.FIN_HELD)
    print("  FIN intercepted   :", "yes (held, MaxDelayFIN)" if held else
          "no FIN was generated")
    print("  failover time     :",
          format_duration(result.timeline.failover_time_ns))
    print("  stream intact     :", result.stream_intact,
          f"({result.client.received:,} bytes, "
          f"{result.client.reset_count} resets)")


def main() -> None:
    print("30 MB stream; the primary's APPLICATION (not the machine) "
          "fails at t=1s.")

    hang = run_failover_experiment(
        lambda tb, sp, sb: AppHang(sp),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
    report(hang, "scenario 1: application hangs, socket stays open (no FIN)")

    cleanup = run_failover_experiment(
        lambda tb, sp, sb: AppCrashWithCleanup(sp),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
    report(cleanup, "scenario 2: OS cleanup closes the socket (FIN)")

    print("\nIn both scenarios the TCP layer stayed up and heartbeats kept"
          "\nflowing — only the application-progress counters exposed the"
          "\nfailure, and the client-facing FIN was never allowed out.")


if __name__ == "__main__":
    main()
