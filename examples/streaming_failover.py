#!/usr/bin/env python3
"""Demo 1 as a script: the pie-chart view of a seamless failover.

Prints the client's download progress over time — the headless equivalent
of the paper's GUI pie chart — for ST-TCP and for a hot standby without
ST-TCP, so the contrast is visible in the progress curves themselves.

Run:  python examples/streaming_failover.py
"""

from repro.faults import HwCrash
from repro.metrics import format_duration
from repro.scenarios import (RunOptions, run_baseline_failover,
                            run_failover_experiment)
from repro.sim import millis, seconds

TOTAL = 30_000_000
FAULT_AT_S = 1.0


def pie(fraction: float, width: int = 30) -> str:
    filled = round(fraction * width)
    return "[" + "#" * filled + "." * (width - filled) + f"] {fraction:5.1%}"


def show_progress(monitor, title: str) -> None:
    print(f"\n--- {title} ---")
    for t_s, total in monitor.progress_series(millis(500)):
        marker = "  <-- primary crashed" if abs(t_s - FAULT_AT_S) < 0.26 else ""
        print(f"  t={t_s:6.2f}s {pie(total / TOTAL)}{marker}")


def main() -> None:
    print("Streaming 30 MB; the primary server crashes at t=1s.")

    sttcp = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=TOTAL, fault_at_s=FAULT_AT_S,
        options=RunOptions(seed=3, run_until_s=60))
    show_progress(sttcp.monitor, "with ST-TCP (client unmodified)")
    print(f"  resets: {sttcp.client.reset_count}, "
          f"glitch: {format_duration(sttcp.glitch_ns)}, "
          f"stream intact: {sttcp.stream_intact}")

    baseline = run_baseline_failover(
        total_bytes=TOTAL, fault_at_s=FAULT_AT_S, liveness_timeout_s=2.0,
        options=RunOptions(seed=3, run_until_s=60))
    show_progress(baseline.monitor,
                  "hot standby without ST-TCP (client must reconnect)")
    print(f"  reconnects: {baseline.client.reconnect_count}, "
          f"outage: {format_duration(baseline.disruption_ns)}")

    print("\nSame crash, same hardware: ST-TCP turns a multi-second outage"
          "\nwith an application-level reconnect into a sub-second glitch.")


if __name__ == "__main__":
    main()
