"""Structured trace log for the simulation.

Protocol components emit :class:`TraceRecord` entries through a shared
:class:`TraceLog`; tests and benchmarks filter them by category to assert
on behaviour ("the backup suppressed this FIN", "failover started at t=...")
without string-parsing stdout.

Category names are **not** defined here: the authoritative registry is
:data:`repro.obs.registry.CATEGORIES` (rendered for humans in
``docs/observability.md``), which also maps every fine-grained probe
point to its category.  Components that fire through the
:class:`~repro.obs.bus.ProbeBus` get their category from the registry;
components that still call :meth:`TraceLog.record` directly must use a
registered category — ``tests/obs/test_registry_sync.py`` scans ``src/``
and fails on any category emitted anywhere but declared nowhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace event."""

    time: int                    # virtual time, ns
    category: str                # see module docstring
    source: str                  # component name, e.g. "primary.tcp"
    message: str                 # human-readable summary
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Event time in (float) seconds."""
        return self.time / 1_000_000_000

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return (f"[{self.time_s:12.6f}s] {self.category:7s} {self.source:20s} "
                f"{self.message}" + (f" | {extra}" if extra else ""))


class TraceLog:
    """Append-only event log with category filtering and live subscribers.

    ``enabled_categories=None`` records everything; pass a set of category
    names to restrict recording (benchmarks disable ``eth``/``tcp`` traces
    to keep memory flat on 100 MB transfers).
    """

    def __init__(self, clock: Callable[[], int],
                 enabled_categories: Optional[set[str]] = None):
        self._clock = clock
        self._records: list[TraceRecord] = []
        self._enabled = enabled_categories
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        self._filter_listeners: list[Callable[[], None]] = []

    # ------------------------------------------------------------- recording

    def record(self, category: str, source: str, message: str,
               **fields: Any) -> None:
        """Append an event (no-op if the category is filtered out)."""
        if self._enabled is not None and category not in self._enabled:
            return
        rec = TraceRecord(self._clock(), category, source, message, fields)
        self._records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def wants(self, category: str) -> bool:
        """True when a record in ``category`` would be kept."""
        return self._enabled is None or category in self._enabled

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live callback invoked for every recorded event."""
        self._subscribers.append(callback)

    def on_filter_change(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the category filter changes
        (the probe bus invalidates its fire-would-do-work cache on it)."""
        self._filter_listeners.append(callback)

    def set_enabled_categories(self, categories: Optional[set[str]]) -> None:
        """Change the recording filter (None = record everything)."""
        self._enabled = categories
        for listener in self._filter_listeners:
            listener()

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """The underlying record list (live reference)."""
        return self._records

    def filter(self, category: Optional[str] = None,
               source: Optional[str] = None,
               contains: Optional[str] = None) -> list[TraceRecord]:
        """Return records matching all given criteria."""
        out = self._records
        if category is not None:
            out = [r for r in out if r.category == category]
        if source is not None:
            out = [r for r in out if r.source == source]
        if contains is not None:
            out = [r for r in out if contains in r.message]
        return list(out)

    def first(self, category: Optional[str] = None,
              contains: Optional[str] = None) -> Optional[TraceRecord]:
        """First matching record or None."""
        matches = self.filter(category=category, contains=contains)
        return matches[0] if matches else None

    def last(self, category: Optional[str] = None,
             contains: Optional[str] = None) -> Optional[TraceRecord]:
        """Last matching record or None."""
        matches = self.filter(category=category, contains=contains)
        return matches[-1] if matches else None

    def dump(self, category: Optional[str] = None) -> str:
        """Render matching records as text (debugging aid)."""
        return "\n".join(str(r) for r in self.filter(category=category))
