"""The :class:`World` — shared root object for a simulated scenario.

A ``World`` bundles the kernel services every component needs:

* the :class:`~repro.sim.core.Simulator` event loop,
* the :class:`~repro.sim.trace.TraceLog`,
* the :class:`~repro.obs.bus.ProbeBus` (observability probe points),
* the :class:`~repro.sim.rng.RngRegistry`.

Passing a single ``world`` around keeps constructor signatures short and
guarantees all components share one clock and one seed.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.bus import ProbeBus
from repro.sim import gcctl
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

__all__ = ["World"]


class World:
    """Root container for one simulation run."""

    def __init__(self, seed: int = 0,
                 trace_categories: Optional[set[str]] = None):
        self.sim = Simulator()
        # sim.clock is a plain bound method: it pickles (world snapshots)
        # and skips the extra lambda frame on every trace/probe timestamp.
        self.trace = TraceLog(self.sim.clock,
                              enabled_categories=trace_categories)
        self.probes = ProbeBus(self.sim.clock, self.trace)
        self.rng = RngRegistry(seed)
        # Bumped whenever NIC address filters change (multicast join/leave,
        # promiscuous toggles); switches use it to invalidate cached flood
        # target lists.  See Switch._forward.
        self.net_epoch = 0
        # Bumped whenever routing inputs change: interface addresses, the
        # default gateway, NIC fail/repair, ARP learns.  IP stacks use it
        # to invalidate cached send plans (IpStack.send).  Kept separate
        # from net_epoch so steady-state ARP learns (one per joining
        # client at fleet scale) do not also flush every switch's flood
        # target lists.
        self.route_epoch = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.sim.now

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self.sim.now_s

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Delegate to :meth:`Simulator.run`, marking the episode on the
        ``sim.run`` probe for observers.  The cyclic GC is quiesced for
        the duration of the drive (see :mod:`repro.sim.gcctl`)."""
        with gcctl.quiesce():
            processed = self.sim.run(until=until, max_events=max_events)
        self.probes.fire("sim.run", "world", events=processed)
        return processed

    def run_for(self, duration: int) -> int:
        """Delegate to :meth:`Simulator.run_for` (GC quiesced)."""
        with gcctl.quiesce():
            return self.sim.run_for(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<World t={self.now_s:.6f}s seed={self.rng.seed}>"
