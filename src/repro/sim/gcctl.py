"""Interpreter-GC orchestration for the event loop.

With the wire-path recycle pools in place (:mod:`repro.net.pool`) almost
all per-event garbage dies by refcount alone; what remains interesting
for CPython's *cyclic* collector is the testbed object graph itself —
hosts, NICs, cables, connections — which stays alive for the whole run.
Letting the generational collector fire on its own allocation thresholds
therefore buys nothing and costs unpredictable pauses in the middle of
the hot loop, each one scanning the very graph that never dies.

This module puts the collector under simulator control:

* :func:`freeze_baseline` — collect once, then ``gc.freeze()`` the
  survivors into the permanent generation.  Call it when a freshly built
  (or thawed) object graph will live for the rest of the process — the
  benchmark testbed, a campaign worker's import graph.  Frozen objects
  are exempt from every later collection, so safe-point collects stay
  cheap no matter how large the testbed is.  Do **not** freeze graphs
  that die before the process does (per-trial testbeds): permanent-
  generation cycles are never reclaimed.
* :func:`quiesce` — context manager wrapping event-loop drives
  (:meth:`repro.sim.world.World.run` uses it): cyclic collection is
  disabled for the duration, and a *bounded* young-generation collect
  runs at the exit safe point once enough allocations are pending.
  Re-entrant; the pre-existing enabled state is restored on exit.
* :func:`collect_full` — an explicit, counted full collection for
  coarse boundaries (campaign trial batches).
* :func:`stats` — collector counters plus the recycle-pool depths, for
  :mod:`repro.obs` exports and the benchmark's churn report.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager

__all__ = ["freeze_baseline", "thaw_baseline", "quiesce", "collect_full",
           "stats", "YOUNG_COLLECT_THRESHOLD"]

#: Exit-safe-point cadence: when an event-loop drive hands control back
#: and at least this many container allocations are pending in the young
#: generation, a bounded gen-0/1 collect runs.  Generation 2 — and with
#: it the frozen baseline graph — is never scanned at a safe point.
YOUNG_COLLECT_THRESHOLD = 2_000

_frozen_baseline = 0
_manual_collects = 0
_safe_point_collects = 0
_depth = 0
_was_enabled = True


def freeze_baseline() -> int:
    """Collect, then move every surviving object to the permanent
    generation.  Returns the total frozen count."""
    global _frozen_baseline, _manual_collects
    gc.collect()
    _manual_collects += 1
    gc.freeze()
    _frozen_baseline = gc.get_freeze_count()
    return _frozen_baseline


def thaw_baseline() -> int:
    """Undo :func:`freeze_baseline`: move the permanent generation back
    into the oldest generation and collect.  Returns the number of
    objects reclaimed.

    For harnesses that build several "process-lifetime" graphs in one
    process — the benchmark's best-of-N repeats each freeze a fresh
    testbed — thawing between graphs keeps dead frozen testbeds from
    accumulating (a frozen cycle is otherwise never reclaimed).
    """
    global _frozen_baseline, _manual_collects
    gc.unfreeze()
    reclaimed = gc.collect()
    _manual_collects += 1
    _frozen_baseline = gc.get_freeze_count()
    return reclaimed


@contextmanager
def quiesce():
    """Suspend cyclic collection around an event-loop drive.

    Nested drives (a scenario stepping the world in a loop) share one
    suspension; the bounded safe-point collect and the state restore
    happen when the outermost drive exits.
    """
    global _depth, _was_enabled, _safe_point_collects
    _depth += 1
    if _depth == 1:
        _was_enabled = gc.isenabled()
        if _was_enabled:
            gc.disable()
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            if gc.get_count()[0] >= YOUNG_COLLECT_THRESHOLD:
                gc.collect(1)
                _safe_point_collects += 1
            if _was_enabled:
                gc.enable()


def collect_full() -> int:
    """An explicit full collection, counted in :func:`stats`."""
    global _manual_collects
    _manual_collects += 1
    return gc.collect()


def stats() -> dict:
    """Collector counters + recycle-pool depths (one flat record)."""
    from repro.net import pool  # lazy: repro.net imports repro.sim

    per_gen = gc.get_stats()
    return {
        "enabled": gc.isenabled(),
        "counts": list(gc.get_count()),
        "frozen": gc.get_freeze_count(),
        "frozen_baseline": _frozen_baseline,
        "manual_collects": _manual_collects,
        "safe_point_collects": _safe_point_collects,
        "collections": [g.get("collections", 0) for g in per_gen],
        "collected": [g.get("collected", 0) for g in per_gen],
        "pools": pool.stats(),
    }
