"""Deterministic random-number streams.

Every stochastic component (link loss, ISN generation, jitter) draws from
its own named stream derived from a single scenario seed, so adding a new
consumer of randomness never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams.

    Streams are keyed by name: ``registry.stream("link.client-switch")``
    always returns the same object, seeded from
    ``sha256(root_seed || name)``, making runs reproducible regardless of
    the order in which streams are first requested.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, seed: int) -> None:
        """Re-key the registry (and every already-issued stream) to ``seed``.

        Components hold direct references to their streams, so replacing
        the ``random.Random`` objects would silently orphan them; instead
        each memoized stream is re-seeded *in place* with exactly the value
        a fresh registry would have derived.  A restored testbed snapshot
        reseeded this way is indistinguishable from a cold build with the
        same seed, provided no draws happened before the snapshot.
        """
        self._seed = seed
        for name, rng in self._streams.items():
            digest = hashlib.sha256(
                f"{seed}:{name}".encode("utf-8")).digest()
            rng.seed(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self._seed} streams={len(self._streams)}>"
