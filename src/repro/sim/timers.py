"""Restartable timers on top of the event kernel.

TCP and the ST-TCP heartbeat machinery are full of "arm / re-arm / cancel"
timer patterns; :class:`Timer` and :class:`PeriodicTimer` capture them once
so protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.core import EventHandle, Simulator

__all__ = ["Timer", "PeriodicTimer"]


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    ``callback`` fires once, ``interval`` nanoseconds after the most recent
    :meth:`start` / :meth:`restart`.  Restarting an armed timer cancels the
    previous deadline — exactly the semantics of a TCP retransmission timer.
    """

    __slots__ = ("_sim", "_callback", "_label", "_handle")

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 label: str = "timer"):
        self._sim = sim
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while a deadline is pending."""
        handle = self._handle
        return (handle is not None
                and not (handle._cancelled or handle._fired))

    @property
    def deadline(self) -> Optional[int]:
        """Absolute firing time in ns, or None when not armed."""
        return self._handle.time if self.armed else None

    def start(self, interval: int) -> None:
        """Arm the timer ``interval`` ns from now, replacing any deadline."""
        self.stop()
        self._handle = self._sim.schedule(interval, self._fire, label=self._label)

    # restart is an alias that reads better at call sites that always re-arm.
    restart = start

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTimer:
    """A timer that fires every ``period`` ns until stopped.

    Used for heartbeat transmission and application pacing.  The period can
    be changed on the fly with :meth:`reschedule`; by default the new
    period takes effect from the next tick, while ``immediate=True``
    re-arms the pending deadline as well (heartbeat-frequency sweeps
    change the period mid-run and must not wait out a stale long period).
    """

    __slots__ = ("_sim", "_callback", "_period", "_label", "_handle")

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 period: int, label: str = "periodic"):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._callback = callback
        self._period = period
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def period(self) -> int:
        """Current tick period in nanoseconds."""
        return self._period

    @property
    def running(self) -> bool:
        """True while the timer is ticking."""
        return self._handle is not None and self._handle.pending

    def start(self, fire_immediately: bool = False) -> None:
        """Begin ticking.  With ``fire_immediately`` the first tick is now."""
        self.stop()
        delay = 0 if fire_immediately else self._period
        self._handle = self._sim.schedule(delay, self._tick, label=self._label)

    def stop(self) -> None:
        """Stop ticking.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def reschedule(self, period: int, immediate: bool = False) -> None:
        """Change the period.

        By default the pending tick keeps its old deadline and the new
        period applies from the *next* tick onward.  With
        ``immediate=True`` the pending deadline itself is re-armed to
        ``now + period`` (and ticking continues at the new period), so a
        mid-run period change takes effect without waiting out the old
        interval.  On a stopped timer ``immediate`` is a no-op beyond
        storing the period for the next :meth:`start`.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._period = period
        if immediate and self.running:
            self._handle.cancel()
            self._handle = self._sim.schedule(period, self._tick,
                                              label=self._label)

    def _tick(self) -> None:
        self._handle = self._sim.schedule(self._period, self._tick,
                                          label=self._label)
        self._callback()
