"""Restartable timers on top of the event kernel.

TCP and the ST-TCP heartbeat machinery are full of "arm / re-arm / cancel"
timer patterns; :class:`Timer` and :class:`PeriodicTimer` capture them once
so protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.core import EventHandle, Simulator

__all__ = ["Timer", "DeadlineTimer", "PeriodicTimer"]


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    ``callback`` fires once, ``interval`` nanoseconds after the most recent
    :meth:`start` / :meth:`restart`.  Restarting an armed timer cancels the
    previous deadline — exactly the semantics of a TCP retransmission timer.
    """

    __slots__ = ("_sim", "_callback", "_label", "_handle")

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 label: str = "timer"):
        self._sim = sim
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while a deadline is pending."""
        handle = self._handle
        return (handle is not None
                and not (handle._cancelled or handle._fired))

    @property
    def deadline(self) -> Optional[int]:
        """Absolute firing time in ns, or None when not armed."""
        return self._handle.time if self.armed else None

    def start(self, interval: int) -> None:
        """Arm the timer ``interval`` ns from now, replacing any deadline."""
        self.stop()
        self._handle = self._sim.schedule(interval, self._fire, label=self._label)

    # restart is an alias that reads better at call sites that always re-arm.
    restart = start

    def stop(self) -> None:
        """Disarm the timer.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class DeadlineTimer:
    """A :class:`Timer` variant for high-churn re-arm patterns.

    A TCP retransmission timer is restarted on every new ack — thousands
    of times per connection — but actually *fires* only on loss.  With the
    eager :class:`Timer` every restart is a cancel + schedule pair, which
    churns wheel buckets with tombstones and triggers periodic compaction
    sweeps.  Here :meth:`start` is a field write: the logical deadline
    lives in :attr:`deadline`, and a single scheduled sentinel event
    re-arms itself forward when it fires before the deadline (the Linux
    kernel's "deferrable timer" trick).  :meth:`stop` simply clears the
    deadline; a stale sentinel fires once as a no-op instead of leaving a
    tombstone in the queue.

    The callback still runs at exactly the deadline instant, so virtual-
    time behaviour matches :class:`Timer`; only the (time, seq) tiebreak
    of the firing event against other events at the same nanosecond can
    differ, which the golden-trace suite holds unchanged for every
    committed scenario.
    """

    __slots__ = ("_sim", "_callback", "_label", "_handle", "_deadline")

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 label: str = "timer"):
        self._sim = sim
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._deadline: Optional[int] = None

    @property
    def armed(self) -> bool:
        """True while a deadline is pending."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[int]:
        """Absolute firing time in ns, or None when not armed."""
        return self._deadline

    def start(self, interval: int) -> None:
        """Arm the timer ``interval`` ns from now, replacing any deadline."""
        sim = self._sim
        deadline = sim._now + interval
        self._deadline = deadline
        handle = self._handle
        if handle is None:
            self._handle = sim.schedule(interval, self._fire,
                                        label=self._label)
        elif handle.time > deadline:
            # The pending sentinel lies beyond the new deadline (the RTO
            # shrank faster than time advanced) — only here do we pay a
            # real cancel + reschedule.
            handle.cancel()
            self._handle = sim.schedule(interval, self._fire,
                                        label=self._label)
        # else: the sentinel fires at or before the deadline and will
        # re-arm itself for the remainder.

    restart = start

    def stop(self) -> None:
        """Disarm the timer.  Idempotent; the sentinel no-ops later."""
        self._deadline = None

    def _fire(self) -> None:
        self._handle = None
        deadline = self._deadline
        if deadline is None:
            return
        now = self._sim._now
        if now < deadline:
            self._handle = self._sim.schedule(deadline - now, self._fire,
                                              label=self._label)
            return
        self._deadline = None
        self._callback()


class PeriodicTimer:
    """A timer that fires every ``period`` ns until stopped.

    Used for heartbeat transmission and application pacing.  The period can
    be changed on the fly with :meth:`reschedule`; by default the new
    period takes effect from the next tick, while ``immediate=True``
    re-arms the pending deadline as well (heartbeat-frequency sweeps
    change the period mid-run and must not wait out a stale long period).
    """

    __slots__ = ("_sim", "_callback", "_period", "_label", "_handle")

    def __init__(self, sim: Simulator, callback: Callable[[], Any],
                 period: int, label: str = "periodic"):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._sim = sim
        self._callback = callback
        self._period = period
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def period(self) -> int:
        """Current tick period in nanoseconds."""
        return self._period

    @property
    def running(self) -> bool:
        """True while the timer is ticking."""
        return self._handle is not None and self._handle.pending

    def start(self, fire_immediately: bool = False) -> None:
        """Begin ticking.  With ``fire_immediately`` the first tick is now."""
        self.stop()
        delay = 0 if fire_immediately else self._period
        self._handle = self._sim.schedule(delay, self._tick, label=self._label)

    def stop(self) -> None:
        """Stop ticking.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def reschedule(self, period: int, immediate: bool = False) -> None:
        """Change the period.

        By default the pending tick keeps its old deadline and the new
        period applies from the *next* tick onward.  With
        ``immediate=True`` the pending deadline itself is re-armed to
        ``now + period`` (and ticking continues at the new period), so a
        mid-run period change takes effect without waiting out the old
        interval.  On a stopped timer ``immediate`` is a no-op beyond
        storing the period for the next :meth:`start`.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._period = period
        if immediate and self.running:
            self._handle.cancel()
            self._handle = self._sim.schedule(period, self._tick,
                                              label=self._label)

    def _tick(self) -> None:
        self._handle = self._sim.schedule(self._period, self._tick,
                                          label=self._label)
        self._callback()
