"""Deterministic discrete-event simulation kernel.

Public surface::

    from repro.sim import (
        Simulator, World, Timer, PeriodicTimer, TraceLog, RngRegistry,
        seconds, millis, micros, NS_PER_S, NS_PER_MS, NS_PER_US,
    )
"""

from repro.sim.core import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    EventHandle,
    Simulator,
    micros,
    millis,
    seconds,
)
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.trace import TraceLog, TraceRecord
from repro.sim.world import World

__all__ = [
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "EventHandle",
    "PeriodicTimer",
    "RngRegistry",
    "Simulator",
    "Timer",
    "TraceLog",
    "TraceRecord",
    "World",
    "micros",
    "millis",
    "seconds",
]
