"""Discrete-event simulation kernel.

The whole reproduction runs on a single-threaded, deterministic event loop
with an integer-nanosecond virtual clock.  Components schedule callbacks;
the kernel executes them in (time, insertion-order) order, so two runs with
the same seed produce byte-identical traces.

Since the fleet-scale event-core pass the ready queue is no longer a single
binary heap: near-future deadlines live in a two-level hierarchical timer
wheel (O(1) insert/cancel) and only far-future events fall back to a heap
overflow tier.  The full design — wheel geometry, overflow handling,
tombstone interaction and the determinism argument — is documented in
``docs/scheduler.md``; the geometry constants below are mirrored there and
kept in sync by ``tests/check/test_scheduler_doc.py``.

Design notes
------------
* Time is ``int`` nanoseconds.  Helpers :data:`NS_PER_US`, :data:`NS_PER_MS`
  and :data:`NS_PER_S` (plus :func:`seconds`, :func:`millis`, :func:`micros`)
  convert human units without floating-point drift.
* :meth:`Simulator.schedule` returns an :class:`EventHandle` that can be
  cancelled; cancellation is O(1) (lazy deletion from the wheel bucket or
  overflow heap).  Dead entries are compacted away once they outnumber live
  ones in a non-trivial queue, so arm/cancel churn (timer restarts) cannot
  grow the queue without bound.
* Event ordering is the global sort order of ``(time, sequence)`` — the
  exact order the old single-heap kernel produced.  Buckets hold unsorted
  ``(time, seq, handle)`` entries and are sorted once when the cursor
  reaches them; cross-tier ties are merged before firing (see
  ``docs/scheduler.md`` for the proof sketch).
* The kernel never catches exceptions raised by callbacks: a bug in a
  protocol implementation should fail the test loudly, not be swallowed.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = [
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "seconds",
    "millis",
    "micros",
    "EventHandle",
    "Simulator",
]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

_INF = float("inf")


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_S)


def millis(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_MS)


def micros(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_US)


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Handles are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` guarantees the
    callback will not run; cancelling an already-fired or already-cancelled
    handle is a harmless no-op.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired", "label",
                 "_owner", "_pooled")

    def __init__(self, time: int, callback: Callable[..., Any],
                 args: tuple, label: str = "",
                 owner: "Optional[Simulator]" = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._fired = False
        self._owner = owner
        # Kernel-owned records acquired by Simulator.post() are recycled
        # into a free list the moment they fire; handles returned to
        # callers are not (the caller may hold the reference forever).
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has executed."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will eventually fire."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "pending")
        name = self.label or getattr(self.callback, "__qualname__", "?")
        return f"<EventHandle {name} @{self.time}ns {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with an int-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(millis(10), my_callback, arg1, arg2)
        sim.run(until=seconds(5))

    The ready queue is a hierarchical timer wheel with a heap overflow
    tier (``docs/scheduler.md``): level 0 buckets 4.096 us of virtual time
    each and spans ~4.19 ms, level 1 buckets ~4.19 ms each and spans
    ~4.29 s, and anything beyond the level-1 horizon waits in a binary
    heap until the cursor approaches.  Insert and cancel are O(1) for the
    wheel tiers; firing order is byte-identical to a single global heap.

    The simulator is also the root object from which scenario builders hang
    shared services (trace log, RNG registry); see :mod:`repro.sim.trace`
    and :mod:`repro.sim.rng`.
    """

    __slots__ = ("_now", "_seq", "_running", "_events_processed",
                 "_cancelled_in_queue", "_size", "_cur0", "_l1_start",
                 "_wheel0", "_wheel1", "_l0_slots", "_l1_slots",
                 "_overflow", "_active", "_active_idx", "_active_slot",
                 "_far_min", "_tick_end", "_handle_pool", "_bucket_pool")

    #: log2 of the level-0 bucket width: 4096 ns per slot.
    L0_GRAIN_BITS = 12
    #: log2 of the slot count per wheel level (1024 slots).
    WHEEL_BITS = 10
    #: Slots per wheel level.
    WHEEL_SLOTS = 1 << WHEEL_BITS
    #: log2 of the level-1 bucket width: one level-0 revolution (~4.19 ms).
    L1_GRAIN_BITS = L0_GRAIN_BITS + WHEEL_BITS
    #: Virtual time covered by level 0 (~4.19 ms).
    L0_HORIZON_NS = WHEEL_SLOTS << L0_GRAIN_BITS
    #: Virtual time covered by levels 0+1 (~4.29 s); beyond this events
    #: wait in the overflow heap.
    L1_HORIZON_NS = WHEEL_SLOTS << L1_GRAIN_BITS

    #: Queues smaller than this are never compacted — rebuilding a tiny
    #: queue costs more than carrying its tombstones to the pop.
    COMPACT_MIN_QUEUE = 64

    #: Free-list bounds (see docs/performance.md, "Allocation & GC").
    #: Excess records beyond the cap fall back to the allocator; the caps
    #: bound pool memory while covering steady-state in-flight counts.
    HANDLE_POOL_MAX = 512
    BUCKET_POOL_MAX = 64

    def __init__(self) -> None:
        self._now: int = 0
        self._seq = 0
        self._running = False
        self._events_processed = 0
        # Entries (incl. tombstones) across all tiers, and tombstone count.
        self._size = 0
        self._cancelled_in_queue = 0
        # Wheel cursor state: _cur0 is the absolute level-0 slot the kernel
        # has advanced to; level 0 covers absolute slots
        # [_cur0, _cur0 + WHEEL_SLOTS).  _l1_start is the absolute level-1
        # slot of the cursor; level 1 covers (_l1_start, + WHEEL_SLOTS).
        self._cur0 = 0
        self._l1_start = 0
        self._wheel0: list[list] = [[] for _ in range(self.WHEEL_SLOTS)]
        self._wheel1: list[list] = [[] for _ in range(self.WHEEL_SLOTS)]
        # Min-heaps of occupied absolute slot indices per level (lazily
        # purged; a stale index whose bucket is empty is skipped on pop).
        self._l0_slots: list[int] = []
        self._l1_slots: list[int] = []
        # Far-future events: a (time, seq, handle) binary heap.
        self._overflow: list[tuple] = []
        # The bucket currently being fired: a sorted list consumed by
        # index (cheaper than a heap pop per event).  Same-instant
        # insertions targeting the active slot are insort-ed behind the
        # consumption point.
        self._active: list[tuple] = []
        self._active_idx = 0
        self._active_slot = 0
        # Lower bound on the earliest event resident in L1/overflow; -1
        # means unknown (forces a full cross-tier peek).  Lets the hot
        # loop activate L0 buckets without touching the outer tiers.
        self._far_min: "int | float" = _INF
        # Callbacks to run once all events of the current instant have
        # executed, before the clock advances (see at_tick_end).
        self._tick_end: list = []
        # Free lists (docs/performance.md, "Allocation & GC"): recycled
        # EventHandle records for fire-and-forget posts, and recycled
        # wheel-bucket lists (one list is retired per activated slot —
        # nearly one per event at fleet scale).
        self._handle_pool: list[EventHandle] = []
        self._bucket_pool: list[list] = []

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def now_s(self) -> float:
        """Current virtual time in (float) seconds, for reporting only."""
        return self._now / NS_PER_S

    @property
    def events_processed(self) -> int:
        """Total logical events executed so far (useful for perf
        reporting).  Batched deliveries credit their merged micro-events
        via :meth:`credit_events`, so the counter stays comparable across
        kernel versions that merge differently."""
        return self._events_processed

    def credit_events(self, extra: int) -> None:
        """Credit ``extra`` merged micro-events executed inside the current
        callback.  Batching layers (e.g. the switch's flood delivery) fold
        several logical events into one scheduled callback; crediting keeps
        :attr:`events_processed` meaning *logical events executed* rather
        than *queue pops*, so throughput trajectories stay apples-to-apples
        across kernel versions."""
        self._events_processed += extra

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any, label: str = "") -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` nanoseconds.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback after all events already scheduled for the current instant
        (FIFO within a timestamp).
        """
        if type(delay) is not int and not isinstance(delay, int):
            raise SimulationError(
                f"delay must be an int (nanoseconds), got {type(delay).__name__}; "
                f"use seconds()/millis()/micros() helpers")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        # EventHandle.__init__ inlined (keep in sync): one scheduled event
        # per call makes the constructor frame measurable on its own.
        handle = EventHandle.__new__(EventHandle)
        handle.time = time
        handle.callback = callback
        handle.args = args
        handle.label = label
        handle._cancelled = False
        handle._fired = False
        handle._owner = self
        handle._pooled = False
        # Routing inlined from _route: this is the hottest call in the
        # simulator (once per scheduled event).
        self._seq += 1
        entry = (time, self._seq, handle)
        s0 = time >> 12               # == L0_GRAIN_BITS
        if s0 - self._cur0 < 1024:    # == WHEEL_SLOTS
            if s0 != self._active_slot:
                bucket = self._wheel0[s0 & 1023]
                if not bucket:
                    heappush(self._l0_slots, s0)
                bucket.append(entry)
            else:
                insort(self._active, entry, self._active_idx)
        else:
            self._route_far(entry, time)
        self._size += 1
        return handle

    def post(self, delay: int, callback: Callable[..., Any],
             *args: Any, label: str = "") -> None:
        """Run ``callback(*args)`` after ``delay`` nanoseconds — the
        fire-and-forget sibling of :meth:`schedule`.

        No handle is returned, so the event record is *kernel-owned*: it
        is acquired from a free list and recycled the instant the callback
        fires, making steady-state posting allocation-free.  Ordering,
        validation and tick semantics are identical to :meth:`schedule`
        (same (time, seq) entry routing).  Use it for the delivery-style
        events that are never cancelled — cable deliveries, switch
        forwards, loopback dispatch; anything that may need ``cancel()``
        must use :meth:`schedule`.
        """
        if type(delay) is not int and not isinstance(delay, int):
            raise SimulationError(
                f"delay must be an int (nanoseconds), got {type(delay).__name__}; "
                f"use seconds()/millis()/micros() helpers")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.callback = callback
            handle.args = args
            handle.label = label
            handle._fired = False
            # _cancelled stays False (pooled handles are unreachable from
            # user code, so cancel() can never touch them), _owner stays
            # self, _pooled stays True.
        else:
            handle = EventHandle.__new__(EventHandle)
            handle.time = time
            handle.callback = callback
            handle.args = args
            handle.label = label
            handle._cancelled = False
            handle._fired = False
            handle._owner = self
            handle._pooled = True
        self._seq += 1
        entry = (time, self._seq, handle)
        s0 = time >> 12               # == L0_GRAIN_BITS
        if s0 - self._cur0 < 1024:    # == WHEEL_SLOTS
            if s0 != self._active_slot:
                bucket = self._wheel0[s0 & 1023]
                if not bucket:
                    heappush(self._l0_slots, s0)
                bucket.append(entry)
            else:
                insort(self._active, entry, self._active_idx)
        else:
            self._route_far(entry, time)
        self._size += 1

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any, label: str = "") -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if not isinstance(time, int):
            raise SimulationError(
                f"time must be an int (nanoseconds), got {type(time).__name__}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time} < now={self._now})")
        handle = EventHandle(time, callback, args, label=label, owner=self)
        self._seq += 1
        self._route((time, self._seq, handle))
        self._size += 1
        return handle

    def _route(self, entry: tuple) -> None:
        """Place an existing (time, seq, handle) entry into the right tier.

        Used for absolute-time inserts and for migrating entries inward
        when the cursor advances (L1 bucket cascade, overflow refill) —
        migrated entries keep their original sequence number, which is what
        preserves the global (time, seq) firing order.
        """
        time = entry[0]
        s0 = time >> 12
        if s0 - self._cur0 < 1024:
            if s0 != self._active_slot:
                bucket = self._wheel0[s0 & 1023]
                if not bucket:
                    heappush(self._l0_slots, s0)
                bucket.append(entry)
            else:
                insort(self._active, entry, self._active_idx)
        else:
            self._route_far(entry, time)

    def _route_far(self, entry: tuple, time: int) -> None:
        """Route an entry beyond the level-0 window: level 1 or overflow."""
        s1 = time >> 22               # == L1_GRAIN_BITS
        if s1 - self._l1_start < 1024:
            bucket = self._wheel1[s1 & 1023]
            if not bucket:
                heappush(self._l1_slots, s1)
            bucket.append(entry)
        else:
            heappush(self._overflow, entry)
        if time < self._far_min:
            self._far_min = time

    def _note_cancelled(self) -> None:
        """A queued handle was cancelled; compact once tombstones dominate."""
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue * 2 > self._size
                and self._size >= self.COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every tier."""
        live = [e for e in self._active[self._active_idx:]
                if not e[2]._cancelled]
        self._active = live            # was sorted; filtering keeps order
        self._active_idx = 0
        for wheel in (self._wheel0, self._wheel1):
            for bucket in wheel:
                if bucket:
                    bucket[:] = [e for e in bucket if not e[2]._cancelled]
        self._overflow = [e for e in self._overflow if not e[2]._cancelled]
        heapify(self._overflow)
        # Stale slot indices (their bucket is now empty) are skipped
        # lazily by the search loops.
        self._size = (len(self._active) + len(self._overflow)
                      + sum(len(b) for b in self._wheel0 if b)
                      + sum(len(b) for b in self._wheel1 if b))
        self._cancelled_in_queue = 0
        self._far_min = -1  # unknown; next activation does a full peek

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending events)."""
        return self.schedule(0, callback, *args, label=label)

    def clock(self) -> int:
        """Current virtual time as a plain method (a picklable bound
        callable, unlike a lambda over :attr:`now` — world snapshots
        serialize component clocks as ``sim.clock`` references)."""
        return self._now

    def at_tick_end(self, callback: Callable[[], Any]) -> None:
        """Run ``callback`` once after every event already queued for the
        current instant has executed, before the clock advances.

        This is the batching hook: a layer that wants to coalesce all
        same-instant work for one object (e.g. every TCP segment arriving
        at a connection within one tick) registers a flush here instead of
        processing per event.  Callbacks run in registration order, may
        schedule new events (including zero-delay events at the current
        instant, which execute before the clock moves), and may register
        further tick-end callbacks (which run in the same instant as
        well).  Unlike :meth:`schedule`, registration is a list append —
        no handle, no ordering entry — so it is cheap enough for per-
        segment hot paths.
        """
        self._tick_end.append(callback)

    def _run_tick_end(self) -> None:
        callbacks = self._tick_end
        self._tick_end = []
        for callback in callbacks:
            callback()

    # ------------------------------------------------- cursor / tier search

    def _purge_slot_heap(self, slots: list, wheel: list) -> Optional[int]:
        """Drop stale slot indices; return the first occupied slot's index
        after sorting its bucket and purging dead entries from the head,
        or None when the level is empty."""
        while slots:
            s = slots[0]
            bucket = wheel[s & 1023]
            if not bucket:
                heappop(slots)
                continue
            if len(bucket) > 1:
                bucket.sort()
            dead = 0
            n = len(bucket)
            while dead < n and bucket[dead][2]._cancelled:
                dead += 1
            if dead:
                del bucket[:dead]
                self._cancelled_in_queue -= dead
                self._size -= dead
                if not bucket:
                    heappop(slots)
                    continue
            return s
        return None

    def _purge_overflow(self) -> None:
        ov = self._overflow
        while ov and ov[0][2]._cancelled:
            heappop(ov)
            self._cancelled_in_queue -= 1
            self._size -= 1

    def _move_cursor(self, time: int) -> None:
        s0 = time >> 12
        if s0 > self._cur0:
            self._cur0 = s0
            s1 = time >> 22
            if s1 > self._l1_start:
                self._l1_start = s1

    def _activate_l0(self, s0: int) -> None:
        """Make level-0 slot ``s0`` (already sorted/purged) the active
        bucket and advance the cursor to it.  The retired active list is
        cleared (dropping its consumed entries so recycled lists pin no
        callbacks or frames) and recycled as a future wheel bucket."""
        heappop(self._l0_slots)
        idx = s0 & 1023
        bucket = self._wheel0[idx]
        pool = self._bucket_pool
        self._wheel0[idx] = pool.pop() if pool else []
        self._move_cursor(bucket[0][0])
        self._active_slot = s0
        old = self._active
        self._active = bucket          # sorted by (time, seq)
        self._active_idx = 0
        if len(pool) < 64:             # == BUCKET_POOL_MAX
            old.clear()
            pool.append(old)

    def _advance(self, until: Optional[int]) -> bool:
        """Activate the bucket holding the next live event.

        Returns True when ``self._active`` holds the next live event (its
        time is <= ``until`` when given); False when the queue is drained
        or the next event lies beyond ``until``.  Migrates entries inward
        (overflow -> L1 -> L0) as the cursor advances; migration preserves
        original (time, seq) entries, so order is unaffected.
        """
        while True:
            if self._active_idx < len(self._active):
                # A cross-tier migration can land entries directly in the
                # active bucket (same slot as the cursor).
                if (until is not None
                        and self._active[self._active_idx][0] > until):
                    return False
                return True
            # _purge_slot_heap(L0) inlined (keep in sync): at fleet scale
            # events are sparse relative to the 4.1 us slot grain, so
            # nearly every queue pop comes through here and activates a
            # fresh bucket — the helper-call frames are measurable.
            slots = self._l0_slots
            wheel = self._wheel0
            s0 = None
            while slots:
                s = slots[0]
                bucket = wheel[s & 1023]
                if not bucket:
                    heappop(slots)
                    continue
                if len(bucket) > 1:
                    bucket.sort()
                if bucket[0][2]._cancelled:
                    dead = 1
                    n = len(bucket)
                    while dead < n and bucket[dead][2]._cancelled:
                        dead += 1
                    del bucket[:dead]
                    self._cancelled_in_queue -= dead
                    self._size -= dead
                    if not bucket:
                        heappop(slots)
                        continue
                s0 = s
                break
            t0 = wheel[s0 & 1023][0][0] if s0 is not None else None
            # Fast path: nothing in the outer tiers can precede the L0
            # candidate, so activate it without touching them.
            # (_activate_l0 inlined, keep in sync.)
            if t0 is not None and t0 < self._far_min:
                if until is not None and t0 > until:
                    return False
                heappop(slots)
                idx = s0 & 1023
                bucket = wheel[idx]
                pool = self._bucket_pool
                wheel[idx] = pool.pop() if pool else []
                # _move_cursor inlined.
                sc = t0 >> 12
                if sc > self._cur0:
                    self._cur0 = sc
                    s1 = t0 >> 22
                    if s1 > self._l1_start:
                        self._l1_start = s1
                self._active_slot = s0
                old = self._active
                self._active = bucket
                self._active_idx = 0
                if len(pool) < 64:     # == BUCKET_POOL_MAX
                    old.clear()
                    pool.append(old)
                return True
            # Full cross-tier peek.
            s1 = self._purge_slot_heap(self._l1_slots, self._wheel1)
            t1 = self._wheel1[s1 & 1023][0][0] if s1 is not None else None
            self._purge_overflow()
            tov = self._overflow[0][0] if self._overflow else None
            best = t0
            if t1 is not None and (best is None or t1 < best):
                best = t1
            if tov is not None and (best is None or tov < best):
                best = tov
            if best is None:
                self._far_min = _INF
                return False
            if until is not None and best > until:
                return False
            if tov is not None and tov == best:
                # Pull the overflow head (plus everything else that now
                # fits the L1 window) into the wheels and re-search.
                self._move_cursor(tov)
                horizon_slot = self._l1_start + 1024
                ov = self._overflow
                while ov:
                    head = ov[0]
                    if head[2]._cancelled:
                        heappop(ov)
                        self._cancelled_in_queue -= 1
                        self._size -= 1
                        continue
                    if head[0] >> 22 >= horizon_slot:
                        break
                    heappop(ov)
                    self._route(head)
                self._far_min = -1
                continue
            if t1 is not None and t1 == best:
                # Cascade the whole L1 bucket down; every entry fits the
                # new L0 window because an L1 bucket spans exactly one
                # L0 revolution starting at the new cursor.
                heappop(self._l1_slots)
                bucket = self._wheel1[s1 & 1023]
                self._wheel1[s1 & 1023] = []
                self._move_cursor(t1)
                route = self._route
                for entry in bucket:
                    if entry[2]._cancelled:
                        self._cancelled_in_queue -= 1
                        self._size -= 1
                    else:
                        route(entry)
                self._far_min = -1
                continue
            # L0 wins but ties or trails the far bound: refresh the bound
            # and activate.
            self._activate_l0(s0)
            self._far_min = _INF
            if t1 is not None:
                self._far_min = t1
            if tov is not None and tov < self._far_min:
                self._far_min = tov
            return True

    # --------------------------------------------------------------- running

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.

        Returns the number of callbacks executed by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` even if
        the queue drained earlier, so back-to-back ``run(until=...)`` calls
        behave like wall-clock segments.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        # Sentinels instead of per-event `is not None` checks: the loop
        # below runs once per event, so even a two-branch saving counts.
        stop = until if until is not None else _INF
        limit = max_events if max_events is not None else _INF
        try:
            while True:
                # Hot path: consume the active (sorted) bucket by index.
                active = self._active
                idx = self._active_idx
                if idx < len(active):
                    entry = active[idx]
                    time = entry[0]
                    if self._tick_end and time > self._now:
                        # The instant at self._now is complete: flush the
                        # tick-end batch before the clock advances.  Flushed
                        # callbacks may schedule at the current instant
                        # (insort into the active bucket), so re-enter the
                        # loop rather than falling through.
                        self._run_tick_end()
                        continue
                    if time > stop:
                        break
                    self._active_idx = idx + 1
                    self._size -= 1
                    handle = entry[2]
                    if handle._cancelled:
                        self._cancelled_in_queue -= 1
                        continue
                    self._now = time
                    handle._fired = True
                    handle.callback(*handle.args)
                    if handle._pooled:
                        # Kernel-owned record (see post()): break the refs
                        # so the free list pins no callbacks or frames,
                        # then recycle.
                        handle.callback = None
                        handle.args = None
                        pool = self._handle_pool
                        if len(pool) < 512:  # == HANDLE_POOL_MAX
                            pool.append(handle)
                    executed += 1
                    if executed >= limit:
                        break
                    continue
                if self._tick_end:
                    # Active bucket exhausted: every event at the current
                    # instant has run (same-instant entries always land in
                    # the active bucket).  Flush before _advance migrates
                    # or activates anything — a tick-end callback may still
                    # schedule at the current instant.
                    self._run_tick_end()
                    continue
                # _advance's L0 fast path inlined (keep in sync): at fleet
                # scale nearly every bucket activation comes through here —
                # one _advance frame per event adds up.  Anything unusual
                # (L0 empty, far bound in play) falls back to the method.
                slots = self._l0_slots
                wheel = self._wheel0
                s0 = None
                while slots:
                    s = slots[0]
                    bucket = wheel[s & 1023]
                    if not bucket:
                        heappop(slots)
                        continue
                    if len(bucket) > 1:
                        bucket.sort()
                    if bucket[0][2]._cancelled:
                        dead = 1
                        n = len(bucket)
                        while dead < n and bucket[dead][2]._cancelled:
                            dead += 1
                        del bucket[:dead]
                        self._cancelled_in_queue -= dead
                        self._size -= dead
                        if not bucket:
                            heappop(slots)
                            continue
                    s0 = s
                    break
                if s0 is not None:
                    bucket = wheel[s0 & 1023]
                    t0 = bucket[0][0]
                    if t0 < self._far_min:
                        if t0 > stop:
                            break
                        heappop(slots)
                        bidx = s0 & 1023
                        pool = self._bucket_pool
                        wheel[bidx] = pool.pop() if pool else []
                        # _move_cursor inlined.
                        sc = t0 >> 12
                        if sc > self._cur0:
                            self._cur0 = sc
                            sl1 = t0 >> 22
                            if sl1 > self._l1_start:
                                self._l1_start = sl1
                        self._active_slot = s0
                        old = self._active
                        self._active = bucket
                        self._active_idx = 0
                        if len(pool) < 64:     # == BUCKET_POOL_MAX
                            old.clear()
                            pool.append(old)
                        continue
                if not self._advance(until):
                    break
        finally:
            self._running = False
            self._events_processed += executed
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_for(self, duration: int, max_events: Optional[int] = None) -> int:
        """Process events for ``duration`` nanoseconds of virtual time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def peek_next_time(self) -> Optional[int]:
        """Virtual time of the next pending event, or None if queue is empty."""
        active = self._active
        idx = self._active_idx
        n = len(active)
        while idx < n and active[idx][2]._cancelled:
            idx += 1
            self._cancelled_in_queue -= 1
            self._size -= 1
        self._active_idx = idx
        best = active[idx][0] if idx < n else None
        s0 = self._purge_slot_heap(self._l0_slots, self._wheel0)
        if s0 is not None:
            t0 = self._wheel0[s0 & 1023][0][0]
            if best is None or t0 < best:
                best = t0
        s1 = self._purge_slot_heap(self._l1_slots, self._wheel1)
        if s1 is not None:
            t1 = self._wheel1[s1 & 1023][0][0]
            if best is None or t1 < best:
                best = t1
        self._purge_overflow()
        if self._overflow:
            tov = self._overflow[0][0]
            if best is None or tov < best:
                best = tov
        return best

    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-cancelled events."""
        return self._size - self._cancelled_in_queue

    @property
    def queue_size(self) -> int:
        """Total queue entries across all tiers, including tombstones of
        cancelled events that have not been compacted or popped yet."""
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now_s:.6f}s pending={self.pending_events} "
                f"processed={self._events_processed}>")
