"""Discrete-event simulation kernel.

The whole reproduction runs on a single-threaded, deterministic event loop
with an integer-nanosecond virtual clock.  Components schedule callbacks;
the kernel executes them in (time, insertion-order) order, so two runs with
the same seed produce byte-identical traces.

Design notes
------------
* Time is ``int`` nanoseconds.  Helpers :data:`NS_PER_US`, :data:`NS_PER_MS`
  and :data:`NS_PER_S` (plus :func:`seconds`, :func:`millis`, :func:`micros`)
  convert human units without floating-point drift.
* :meth:`Simulator.schedule` returns an :class:`EventHandle` that can be
  cancelled; cancellation is O(1) (lazy deletion from the heap).  Dead
  entries are compacted away once they outnumber live ones in a
  non-trivial queue, so arm/cancel churn (timer restarts) cannot grow the
  heap without bound.
* The kernel never catches exceptions raised by callbacks: a bug in a
  protocol implementation should fail the test loudly, not be swallowed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = [
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "seconds",
    "millis",
    "micros",
    "EventHandle",
    "Simulator",
]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_S)


def millis(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_MS)


def micros(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded to nearest ns)."""
    return round(value * NS_PER_US)


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Handles are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` guarantees the
    callback will not run; cancelling an already-fired or already-cancelled
    handle is a harmless no-op.
    """

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired", "label",
                 "_owner")

    def __init__(self, time: int, callback: Callable[..., Any],
                 args: tuple, label: str = "",
                 owner: "Optional[Simulator]" = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.label = label
        self._cancelled = False
        self._fired = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has executed."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still queued and will eventually fire."""
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "pending")
        name = self.label or getattr(self.callback, "__qualname__", "?")
        return f"<EventHandle {name} @{self.time}ns {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with an int-nanosecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(millis(10), my_callback, arg1, arg2)
        sim.run(until=seconds(5))

    The simulator is also the root object from which scenario builders hang
    shared services (trace log, RNG registry); see :mod:`repro.sim.trace`
    and :mod:`repro.sim.rng`.
    """

    __slots__ = ("_now", "_queue", "_sequence", "_running",
                 "_events_processed", "_cancelled_in_queue")

    #: Queues smaller than this are never compacted — rebuilding a tiny
    #: heap costs more than carrying its tombstones to the pop.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[tuple[int, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def now_s(self) -> float:
        """Current virtual time in (float) seconds, for reporting only."""
        return self._now / NS_PER_S

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (useful for perf reporting)."""
        return self._events_processed

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: int, callback: Callable[..., Any],
                 *args: Any, label: str = "") -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` nanoseconds.

        ``delay`` must be a non-negative integer; a zero delay runs the
        callback after all events already scheduled for the current instant
        (FIFO within a timestamp).
        """
        if not isinstance(delay, int):
            raise SimulationError(
                f"delay must be an int (nanoseconds), got {type(delay).__name__}; "
                f"use seconds()/millis()/micros() helpers")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(self, time: int, callback: Callable[..., Any],
                    *args: Any, label: str = "") -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual time ``time``."""
        if not isinstance(time, int):
            raise SimulationError(
                f"time must be an int (nanoseconds), got {type(time).__name__}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time} < now={self._now})")
        handle = EventHandle(time, callback, args, label=label, owner=self)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        return handle

    def _note_cancelled(self) -> None:
        """A queued handle was cancelled; compact once tombstones dominate."""
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue * 2 > len(self._queue)
                and len(self._queue) >= self.COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place so an active
        ``run()`` loop keeps seeing the same list object."""
        self._queue[:] = [entry for entry in self._queue
                          if not entry[2]._cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def call_soon(self, callback: Callable[..., Any], *args: Any,
                  label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending events)."""
        return self.schedule(0, callback, *args, label=label)

    # --------------------------------------------------------------- running

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.

        Returns the number of callbacks executed by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` even if
        the queue drained earlier, so back-to-back ``run(until=...)`` calls
        behave like wall-clock segments.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                time, _seq, handle = queue[0]
                if until is not None and time > until:
                    break
                heappop(queue)
                if handle._cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                self._now = time
                handle._fired = True
                handle.callback(*handle.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            self._events_processed += executed
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_for(self, duration: int, max_events: Optional[int] = None) -> int:
        """Process events for ``duration`` nanoseconds of virtual time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def peek_next_time(self) -> Optional[int]:
        """Virtual time of the next pending event, or None if queue is empty."""
        while self._queue and self._queue[0][2]._cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1
        return self._queue[0][0] if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of queued, not-yet-cancelled events."""
        return len(self._queue) - self._cancelled_in_queue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now_s:.6f}s pending={self.pending_events} "
                f"processed={self._events_processed}>")
