"""The multiprocess trial-execution engine.

:func:`run_campaign` maps a campaign's trials over a pool of worker
processes with chunked dispatch, a per-trial wall-clock deadline, and
bounded retry of timed-out or crashed trials.  The pool is built
directly on :mod:`multiprocessing` rather than
``concurrent.futures.ProcessPoolExecutor`` for one reason: a hung
worker must be *killable*.  An executor cannot terminate a single stuck
worker without breaking the pool; here the parent owns each worker
process, knows (from ``start`` messages) exactly which trial it is
chewing on, and can terminate + respawn it while the campaign streams
on.  A campaign therefore never deadlocks: every trial ends in a
record, ``ok`` or not.

Determinism: records are keyed by trial index and sorted before
aggregation, trial seeds are pre-derived (:func:`~repro.campaign.spec
.derive_seed`), and wall-clock timing is kept outside the canonical
aggregate — so :meth:`CampaignResult.to_json` is byte-identical for
``jobs=1`` and ``jobs=8``.

``jobs=1`` runs trials in-process (no fork, no IPC) and is the honest
baseline the scaling benchmark compares against.  Workers inherit the
campaign's :class:`~repro.scenarios.options.RunOptions`, which keeps
observability off (enforced by :class:`~repro.campaign.spec
.CampaignSpec`): a worker ships back one compact summary record per
trial, never probe streams.
"""

from __future__ import annotations

import contextlib
import gc
import json
import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.campaign.scenarios import execute_trial
from repro.campaign.spec import CampaignSpec, TrialSpec, expand
from repro.sim import gcctl

__all__ = ["CampaignResult", "run_campaign"]

#: Percentiles reported by the summaries (nearest-rank, deterministic).
_PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


@contextlib.contextmanager
def _gc_batched(every: int = 4):
    """Suspend the cyclic GC around a trial loop.

    A trial allocates millions of short-lived tuples and segments; with
    the collector enabled, generation-2 passes land mid-trial and scan
    the entire testbed object graph.  Virtually all trial garbage dies
    by refcount alone, so the collector is paused and run explicitly
    every ``every`` trials (call the yielded hook once per trial).  The
    previous enabled-state is restored on exit, exceptions included.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    counter = 0

    def tick() -> None:
        nonlocal counter
        counter += 1
        if counter % every == 0:
            gcctl.collect_full()

    try:
        yield tick
    finally:
        if was_enabled:
            gc.enable()


# ------------------------------------------------------------- aggregation

def _percentile_summary(values: list) -> Optional[dict]:
    """min/p50/p90/p99/max/mean over the non-None values, or None."""
    values = sorted(v for v in values if v is not None)
    if not values:
        return None
    n = len(values)
    out = {"n": n, "min": values[0], "max": values[-1],
           "mean": round(sum(values) / n, 3)}
    for name, q in _PERCENTILES:
        out[name] = values[min(n - 1, int(round(q * (n - 1))))]
    return out


def _oracle_tally(records: list[dict]) -> dict:
    tally = {"off": 0, "clean": 0, "violated": 0}
    for record in records:
        verdict = record.get("oracle", "off") or "off"
        tally["violated" if verdict.startswith("violated")
              else verdict if verdict in tally else "off"] += 1
    return tally


@dataclass
class CampaignResult:
    """Per-trial records plus deterministic summaries.

    The canonical aggregate (:meth:`to_json`, :meth:`to_jsonl`) carries
    only virtual-time data and is byte-identical across worker counts;
    wall-clock facts live beside it (:attr:`jobs`, :attr:`wall_s`,
    :attr:`trials_per_sec`).
    """

    spec: CampaignSpec
    records: list[dict]
    jobs: int = 1
    wall_s: float = 0.0
    #: Pool-level retry/kill events (informational, non-canonical).
    dispatch_log: list[str] = field(default_factory=list)

    @property
    def ok(self) -> list[dict]:
        """Records whose trial ran to completion."""
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failed(self) -> list[dict]:
        """Records that crashed, timed out, or breached an invariant."""
        return [r for r in self.records if r["status"] != "ok"]

    @property
    def trials_per_sec(self) -> float:
        """Throughput of this run (wall clock; not part of the aggregate)."""
        return len(self.records) / self.wall_s if self.wall_s else 0.0

    def summary(self) -> dict:
        """Campaign-level scorecard: counts, percentiles, grid breakdown."""
        ok = self.ok
        out = {
            "trials": len(self.records),
            "ok": len(ok),
            "failed": len(self.records) - len(ok),
            "intact": sum(1 for r in ok if r.get("stream_intact")),
            "oracle": _oracle_tally(self.records),
            "failover_time_ns": _percentile_summary(
                [r.get("failover_time_ns") for r in ok]),
            "goodput_bytes_per_s": _percentile_summary(
                [r.get("goodput_bytes_per_s") for r in ok]),
            "by_point": self._by_point(),
        }
        return out

    def _by_point(self) -> list[dict]:
        """One summary row per grid point, in grid order."""
        names = list(self.spec.grid)
        if not names:
            return []
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for record in self.records:
            key = tuple(record["params"].get(n) for n in names)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(record)
        rows = []
        for key in order:
            group = groups[key]
            ok = [r for r in group if r["status"] == "ok"]
            rows.append({
                "point": dict(zip(names, key)),
                "trials": len(group),
                "ok": len(ok),
                "intact": sum(1 for r in ok if r.get("stream_intact")),
                "failover_time_ns": _percentile_summary(
                    [r.get("failover_time_ns") for r in ok]),
                "goodput_bytes_per_s": _percentile_summary(
                    [r.get("goodput_bytes_per_s") for r in ok]),
            })
        return rows

    def to_dict(self) -> dict:
        """The canonical aggregate (deterministic across worker counts)."""
        return {"campaign": self.spec.describe(),
                "summary": self.summary(),
                "trials": self.records}

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for the same spec regardless of
        ``jobs`` or scheduling order."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_jsonl(self) -> str:
        """One canonical JSON line per trial record, index order."""
        return "".join(json.dumps(r, sort_keys=True) + "\n"
                       for r in self.records)


# -------------------------------------------------------------- the engine

def _auto_chunksize(n_trials: int, jobs: int) -> int:
    """Amortize IPC without starving the pool's tail: aim for ~4 chunks
    per worker, capped so no chunk hoards work."""
    return max(1, min(8, n_trials // (jobs * 4) or 1))


def _affine_chunks(trials: list[TrialSpec],
                   chunksize: int) -> list[list[TrialSpec]]:
    """Chunk the (grid-point-major) trial list without ever straddling a
    parameter change, so a worker's warm testbed cache gets a hit for
    every trial after the first of each grid point.  Records are keyed
    by index, so assignment shape never affects the aggregate."""
    chunks: list[list[TrialSpec]] = []
    run: list[TrialSpec] = []
    for trial in trials:
        if run and (len(run) >= chunksize
                    or trial.params != run[-1].params):
            chunks.append(run)
            run = []
        run.append(trial)
    if run:
        chunks.append(run)
    return chunks


def _profiled(profile_dir: Optional[str], worker_id: int):
    """Context manager: cProfile the body and dump ``worker-<id>.pstats``
    into ``profile_dir`` (no-op when ``profile_dir`` is None).  Pool
    workers wrap their whole trial loop in this, so one stats file per
    worker process lands next to the sweep's other outputs; a worker
    killed mid-trial (timeout/crash) leaves no dump."""
    if profile_dir is None:
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def _ctx():
        import cProfile
        import os
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            profiler.dump_stats(
                os.path.join(profile_dir, f"worker-{worker_id}.pstats"))
    return _ctx()


def _worker_main(worker_id: int, inbox, results,
                 warm_enabled: bool = True,
                 profile_dir: Optional[str] = None) -> None:
    """Worker loop: pull a chunk, announce and run each trial, stream the
    records back.  ``None`` is the shutdown sentinel."""
    from repro.campaign import warm as warm_mod

    warm_mod.set_enabled(warm_enabled)
    # The worker's import graph and pool plumbing live until the process
    # exits: freeze them out of every later collection.  (The in-process
    # jobs=1 path must NOT freeze — it runs inside a long-lived host
    # interpreter whose heap it does not own.)
    gcctl.freeze_baseline()
    with _profiled(profile_dir, worker_id), _gc_batched() as gc_tick:
        while True:
            chunk = inbox.get()
            if chunk is None:
                return
            for trial in chunk:
                results.put(("start", worker_id, trial.index, None))
                record = execute_trial(trial)
                gc_tick()
                results.put(("done", worker_id, trial.index, record))
            results.put(("idle", worker_id, None, None))


class _Worker:
    """One pool slot: a process, its private inbox, and what it holds."""

    def __init__(self, ctx, worker_id: int, results, warm_enabled: bool,
                 profile_dir: Optional[str] = None):
        self.id = worker_id
        self.inbox = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.inbox, results, warm_enabled, profile_dir),
            daemon=True, name=f"repro-campaign-{worker_id}")
        self.process.start()
        #: Trials handed to this worker and not yet recorded.
        self.assigned: list[TrialSpec] = []
        #: Index of the trial the worker announced it is running.
        self.current: Optional[int] = None
        self.started_at: Optional[float] = None

    def give(self, chunk: list[TrialSpec]) -> None:
        self.assigned = list(chunk)
        self.current = None
        self.started_at = None
        self.inbox.put(chunk)

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.inbox.close()

    def shutdown(self) -> None:
        try:
            self.inbox.put(None)
        except (OSError, ValueError):  # pragma: no cover - closed queue
            pass


def _failed_record(trial: TrialSpec, error: str) -> dict:
    return {"index": trial.index, "scenario": trial.scenario,
            "seed": trial.seed, "params": dict(trial.params),
            "status": "failed", "error": error}


def _run_pool(trials: list[TrialSpec], jobs: int,
              timeout_s: Optional[float], retries: int,
              chunksize: Optional[int], mp_context: Optional[str],
              log: list[str],
              progress: Optional[Callable[[dict], None]],
              warm: bool = True,
              profile_dir: Optional[str] = None) -> list[dict]:
    """Dispatch trials over ``jobs`` worker processes; always returns one
    record per trial, killing and respawning hung or crashed workers."""
    method = mp_context or ("fork" if "fork" in
                            multiprocessing.get_all_start_methods()
                            else "spawn")
    ctx = multiprocessing.get_context(method)
    chunksize = chunksize or _auto_chunksize(len(trials), jobs)
    backlog = _affine_chunks(trials, chunksize)
    attempts: dict[int, int] = {t.index: 0 for t in trials}
    records: dict[int, dict] = {}
    by_index = {t.index: t for t in trials}
    results = ctx.Queue()
    workers: dict[int, _Worker] = {}
    next_worker_id = 0

    def spawn() -> _Worker:
        nonlocal next_worker_id
        worker = _Worker(ctx, next_worker_id, results, warm, profile_dir)
        workers[worker.id] = worker
        next_worker_id += 1
        return worker

    def pump() -> None:
        """Hand backlog chunks to every idle worker.  Called after any
        event that frees a worker or refills the backlog, so no chunk
        can strand while a worker sits idle (the no-deadlock property)."""
        for worker in workers.values():
            if not backlog:
                return
            if not worker.assigned:
                worker.give(backlog.pop(0))

    def record_done(index: int, record: dict) -> None:
        records[index] = record
        if progress is not None:
            progress(record)

    def fail_or_retry(worker: _Worker, reason: str) -> None:
        """The worker lost its current trial; retry it or record failure,
        requeue the untouched rest of its chunk, and replace the worker."""
        index = worker.current
        if index is None:
            # A crashing worker can die before its "start" message is
            # flushed (the queue feeder thread never runs).  Charge the
            # attempt to the trial it must have been holding — the first
            # unrecorded one of its chunk — or retries could never
            # exhaust and a crash-looping trial would respawn forever.
            index = next((t.index for t in worker.assigned
                          if t.index not in records), None)
        if index is not None and index not in records:
            attempts[index] += 1
            trial = by_index[index]
            if attempts[index] > retries:
                log.append(f"trial {index}: {reason}; giving up "
                           f"after {attempts[index]} attempt(s)")
                record_done(index, _failed_record(
                    trial, f"{reason} (attempt {attempts[index]}, "
                           f"retries exhausted)"))
            else:
                log.append(f"trial {index}: {reason}; retrying")
                backlog.insert(0, [trial])
        untouched = [t for t in worker.assigned
                     if t.index not in records and t.index != index]
        if untouched:
            backlog.insert(0, untouched)
        worker.kill()
        del workers[worker.id]
        spawn()
        pump()

    for _ in range(jobs):
        spawn()
    pump()

    try:
        while len(records) < len(trials):
            # The next deadline bounds how long we may sit in get().
            poll = 0.2
            now = time.monotonic()
            if timeout_s is not None:
                for worker in workers.values():
                    if worker.started_at is not None:
                        poll = min(poll, max(
                            0.01, worker.started_at + timeout_s - now))
            try:
                kind, wid, index, payload = results.get(timeout=poll)
            except queue_mod.Empty:
                kind = None
            if kind == "start":
                worker = workers.get(wid)
                if worker is not None:
                    worker.current = index
                    worker.started_at = time.monotonic()
            elif kind == "done":
                worker = workers.get(wid)
                if worker is not None and index not in records:
                    record_done(index, payload)
                    worker.current = None
                    worker.started_at = None
            elif kind == "idle":
                worker = workers.get(wid)
                if worker is not None:
                    worker.assigned = []
                    worker.current = None
                    worker.started_at = None
                    pump()

            # Deadline sweep: kill workers stuck past the per-trial budget.
            if timeout_s is not None:
                now = time.monotonic()
                for worker in list(workers.values()):
                    if (worker.started_at is not None
                            and now - worker.started_at > timeout_s):
                        fail_or_retry(
                            worker, f"timed out after {timeout_s:g}s")
            # Crash sweep: a worker that died mid-trial sends no message.
            for worker in list(workers.values()):
                if not worker.process.is_alive():
                    code = worker.process.exitcode
                    fail_or_retry(
                        worker, f"worker crashed (exit code {code})")
    finally:
        for worker in workers.values():
            worker.shutdown()
        for worker in workers.values():
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        results.close()

    return [records[t.index] for t in trials]


def run_campaign(spec: CampaignSpec, jobs: int = 1,
                 chunksize: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 progress: Optional[Callable[[dict], None]] = None,
                 warm: bool = True,
                 profile_dir: Optional[str] = None) -> CampaignResult:
    """Run every trial of ``spec`` and aggregate the records.

    ``jobs=1`` executes in-process (serial, no fork); ``jobs>1`` fans
    trials out over that many worker processes with chunked dispatch
    and per-trial timeout/retry (see :class:`~repro.campaign.spec
    .CampaignSpec`).  ``progress`` (if given) is called with each
    record as it lands, in completion order.

    ``warm`` (default on) lets workers reuse a snapshot of each grid
    point's testbed across that point's trials instead of rebuilding it
    (see :mod:`repro.campaign.warm`); chunk assignment is grid-point-
    affine either way.  Records carry only virtual-time data, so the
    aggregate is identical warm or cold.

    ``profile_dir`` (the sweep CLI's ``--profile``) cProfiles every
    worker's trial loop and dumps ``worker-<id>.pstats`` files there —
    one per worker process (``worker-0`` for the in-process ``jobs=1``
    path).  Inspect with ``python -m pstats``.

    The aggregated result is byte-identical across ``jobs`` settings
    for the same spec — an explicit test and a CI leg hold this.
    """
    from repro.campaign import warm as warm_mod

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    trials = expand(spec)
    log: list[str] = []
    start = time.perf_counter()
    if jobs == 1 or not trials:
        records = []
        prev_warm = warm_mod.is_enabled()
        warm_mod.set_enabled(warm)
        try:
            with _profiled(profile_dir, 0), _gc_batched() as gc_tick:
                for trial in trials:
                    record = execute_trial(trial)
                    gc_tick()
                    records.append(record)
                    if progress is not None:
                        progress(record)
        finally:
            warm_mod.set_enabled(prev_warm)
    else:
        records = _run_pool(trials, jobs, spec.timeout_s, spec.retries,
                            chunksize, mp_context, log, progress,
                            warm=warm, profile_dir=profile_dir)
    wall_s = time.perf_counter() - start
    records.sort(key=lambda r: r["index"])
    return CampaignResult(spec=spec, records=records, jobs=jobs,
                          wall_s=wall_s, dispatch_log=log)
