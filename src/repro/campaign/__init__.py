"""Deterministic multiprocess campaigns: sweeps and Monte Carlo studies.

The paper's results are all *campaigns* — the same scenario re-run over
a parameter grid and many seeds.  This package scales those out across
cores without giving up reproducibility:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` /
  :class:`TrialSpec` and the :func:`derive_seed` scheme;
* :mod:`repro.campaign.scenarios` — the named scenario/fault registry a
  worker resolves trials against;
* :mod:`repro.campaign.engine` — :func:`run_campaign`: the worker pool
  with chunked dispatch, per-trial timeout/retry, and streaming
  aggregation into a :class:`CampaignResult`;
* :mod:`repro.campaign.cli` — ``python -m repro sweep``.

See ``docs/performance.md`` for the architecture and the determinism
contract (aggregated output is byte-identical across worker counts).
"""

from repro.campaign.engine import CampaignResult, run_campaign
from repro.campaign.scenarios import (FAULTS, execute_trial, get_scenario,
                                      register_scenario, scenario_names)
from repro.campaign.spec import (CampaignSpec, TrialSpec, derive_seed,
                                 expand)

__all__ = [
    "CampaignSpec", "TrialSpec", "derive_seed", "expand",
    "CampaignResult", "run_campaign",
    "register_scenario", "get_scenario", "scenario_names",
    "FAULTS", "execute_trial",
]
