"""Campaign and trial specifications, and the seed-derivation scheme.

A *campaign* is the same scenario re-run across a parameter grid and a
set of seeds — the shape of every result in the paper (Table 1 rows,
the heartbeat-frequency sweep, the overhead study) and of any Monte
Carlo failover study.  :class:`CampaignSpec` describes the whole study;
:func:`expand` flattens it into an ordered list of :class:`TrialSpec`
values, one per (grid point, repetition).

Determinism contract
--------------------
Aggregated campaign output must be byte-identical regardless of worker
count or scheduling order.  Three rules make that hold:

* every trial's seed is :func:`derive_seed`\\ ``(campaign_seed,
  trial_index)`` — a stable SHA-256 hash, never Python's process-salted
  ``hash()`` and never "worker id + counter";
* trial indexes are assigned by :func:`expand` before any dispatch, so
  a record is identified by *what* it ran, not *where*;
* trial records carry virtual-time measurements only — wall-clock
  timing lives next to the aggregate, never inside it.

Everything here is picklable with plain data (strings, numbers, dicts,
:class:`~repro.scenarios.options.RunOptions`), so specs cross process
boundaries cheaply.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.scenarios.options import RunOptions

__all__ = ["TrialSpec", "CampaignSpec", "derive_seed", "expand",
           "parse_scalar", "parse_grid_arg", "parse_set_arg"]


def derive_seed(campaign_seed: int, trial_index: int) -> int:
    """The trial's world seed: a stable 63-bit hash of (campaign seed,
    trial index).

    SHA-256 over a tagged string, truncated to 8 bytes with the sign
    bit cleared: stable across processes, Python versions and platforms
    (unlike ``hash()``), and uncorrelated between neighbouring indexes
    (unlike ``campaign_seed + trial_index``).
    """
    tag = f"repro.campaign:{campaign_seed}:{trial_index}".encode("ascii")
    digest = hashlib.sha256(tag).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class TrialSpec:
    """One fully-resolved trial: scenario kind, parameters, seed.

    ``scenario``
        A name registered in :mod:`repro.campaign.scenarios`
        (``"failover"``, ``"baseline"``, ``"workload"``, or a custom
        registration).
    ``params``
        Scenario parameters — the merged base + grid-point dict.  Plain
        JSON-able scalars only, so records round-trip losslessly.
    ``options``
        The :class:`~repro.scenarios.options.RunOptions` the trial runs
        under; its ``seed`` field is overridden by ``seed`` below.
    ``seed`` / ``index``
        The derived world seed and the campaign-wide trial index.
    """

    scenario: str = "failover"
    params: dict = field(default_factory=dict)
    options: RunOptions = field(default_factory=RunOptions)
    seed: int = 0
    index: int = 0


@dataclass(frozen=True)
class CampaignSpec:
    """The whole study: scenario, fixed params, grid, repetitions.

    ``base``
        Parameters shared by every trial.
    ``grid``
        Mapping of parameter name to the list of values to sweep; the
        cartesian product of all entries gives the grid points, in the
        mapping's insertion order (first key varies slowest).
    ``trials``
        Repetitions per grid point, each with its own derived seed —
        the Monte Carlo knob.
    ``seed``
        The campaign seed every trial seed is derived from.
    ``options``
        Shared :class:`~repro.scenarios.options.RunOptions`.  Campaign
        workers always run with observability *off* and ship back
        compact summary records, so ``obs_level`` must be ``None``
        (export single interesting runs via the demo CLIs instead).
    ``timeout_s`` / ``retries``
        Wall-clock budget per trial and how many times a timed-out or
        crashed trial is re-dispatched before being recorded as
        ``failed``.  ``timeout_s=None`` disables the deadline (worker
        crashes are still handled).
    """

    scenario: str = "failover"
    base: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    trials: int = 1
    seed: int = 3
    options: RunOptions = field(default_factory=RunOptions)
    timeout_s: Optional[float] = 300.0
    retries: int = 1

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.options.obs_level is not None:
            raise ValueError(
                "campaign trials run with observability off (workers ship "
                "back compact summaries, not probe streams); re-run single "
                "interesting trials with --obs-out via the demo CLIs")
        for name, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"grid entry {name!r} must be a non-empty list of values")

    def describe(self) -> dict:
        """JSON-able form recorded alongside the results."""
        return {
            "scenario": self.scenario,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "trials": self.trials,
            "seed": self.seed,
            "run_until_s": self.options.run_until_s,
            "check": self.options.check,
        }


def grid_points(spec: CampaignSpec) -> list[dict]:
    """The grid's cartesian product, insertion-ordered, as param dicts."""
    if not spec.grid:
        return [{}]
    names = list(spec.grid)
    return [dict(zip(names, combo))
            for combo in itertools.product(*(spec.grid[n] for n in names))]


def expand(spec: CampaignSpec) -> list[TrialSpec]:
    """Flatten a campaign into its ordered trial list.

    Trial indexes (and therefore seeds) depend only on the spec — never
    on worker count or dispatch order — which is what makes aggregated
    output byte-identical across ``jobs`` settings.
    """
    out: list[TrialSpec] = []
    index = 0
    for point in grid_points(spec):
        for _rep in range(spec.trials):
            out.append(TrialSpec(
                scenario=spec.scenario,
                params={**spec.base, **point},
                options=spec.options,
                seed=derive_seed(spec.seed, index),
                index=index))
            index += 1
    return out


# --------------------------------------------------------------- CLI parsing

def parse_scalar(text: str) -> Any:
    """``"5"`` → 5, ``"0.25"`` → 0.25, ``"true"`` → True, else the string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_grid_arg(arg: str) -> tuple[str, list]:
    """``"hb_period_ms=5,10,20"`` → ``("hb_period_ms", [5, 10, 20])``."""
    name, sep, values = arg.partition("=")
    if not sep or not name or not values:
        raise ValueError(
            f"bad --grid argument {arg!r}; expected name=v1,v2,...")
    return name, [parse_scalar(v) for v in values.split(",")]


def parse_set_arg(arg: str) -> tuple[str, Any]:
    """``"total_bytes=2000000"`` → ``("total_bytes", 2000000)``."""
    name, sep, value = arg.partition("=")
    if not sep or not name:
        raise ValueError(f"bad --set argument {arg!r}; expected name=value")
    return name, parse_scalar(value)
