"""``python -m repro sweep`` — run a campaign from the shell.

::

    python -m repro sweep --grid hb_period_ms=5,10,20 --trials 30 --jobs 4
    python -m repro sweep --scenario failover --fault nic_failure_primary \\
        --set total_bytes=2000000 --set fault_at_s=0.1 --run-until 6 \\
        --grid hb_miss_threshold=2,3,5 --trials 10 --jobs 2 \\
        --out sweep.json --jsonl trials.jsonl

``--grid name=v1,v2,...`` (repeatable) sweeps the cartesian product;
``--set name=value`` (repeatable) fixes a parameter for every trial;
``--trials N`` repeats each grid point under N derived seeds.  The
``--out`` JSON aggregate is canonical: byte-identical for the same
campaign seed regardless of ``--jobs``.
"""

from __future__ import annotations

import glob
import os
import sys

from repro.campaign.spec import (CampaignSpec, parse_grid_arg, parse_set_arg)

__all__ = ["add_sweep_args", "run_sweep"]


def add_sweep_args(parser) -> None:
    """Attach the sweep options to an argparse (sub)parser."""
    from repro.campaign.scenarios import FAULTS, scenario_names

    parser.add_argument("--scenario", choices=scenario_names(),
                        default="failover",
                        help="what each trial runs (default: failover)")
    parser.add_argument("--fault", choices=sorted(FAULTS), default=None,
                        help="fault injected mid-trial "
                             "(default: hw_crash_primary)")
    parser.add_argument("--grid", action="append", default=[],
                        metavar="NAME=V1,V2,...",
                        help="sweep a parameter over values (repeatable; "
                             "cartesian product across --grid flags)")
    parser.add_argument("--set", action="append", default=[], dest="fixed",
                        metavar="NAME=VALUE",
                        help="fix a parameter for every trial (repeatable)")
    parser.add_argument("--trials", type=int, default=1,
                        help="repetitions per grid point, each under its "
                             "own derived seed (default: 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1 = in-process)")
    parser.add_argument("--seed", type=int, default=3,
                        help="campaign seed; trial seeds are derived from "
                             "it (default: 3)")
    parser.add_argument("--run-until", type=float, default=60.0,
                        help="virtual seconds each trial runs (default: 60)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="wall-clock budget per trial in seconds; "
                             "0 disables (default: 300)")
    parser.add_argument("--retries", type=int, default=1,
                        help="re-dispatches of a timed-out/crashed trial "
                             "before it is recorded failed (default: 1)")
    parser.add_argument("--check", action="store_true",
                        help="run every trial under the invariant oracle "
                             "and record the verdict per trial")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the canonical JSON aggregate here")
    parser.add_argument("--jsonl", metavar="FILE", default=None,
                        help="write one JSON line per trial record here")
    parser.add_argument("--profile", metavar="DIR", default=None,
                        help="cProfile every worker and dump one "
                             "worker-<id>.pstats per worker process into "
                             "DIR (created if missing); the per-worker "
                             "dumps are then merged into merged.pstats "
                             "and printed as one aggregated report")
    parser.add_argument("--profile-top", type=int, default=25, metavar="N",
                        help="rows in the aggregated profile report, "
                             "sorted by cumulative time; 0 suppresses the "
                             "printed report (default: 25)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-trial progress lines")


def _build_spec(args) -> CampaignSpec:
    from repro.scenarios.options import RunOptions

    base = {}
    for arg in args.fixed:
        name, value = parse_set_arg(arg)
        base[name] = value
    if args.fault is not None:
        base["fault"] = args.fault
    grid = {}
    for arg in args.grid:
        name, values = parse_grid_arg(arg)
        grid[name] = values
    return CampaignSpec(
        scenario=args.scenario, base=base, grid=grid,
        trials=args.trials, seed=args.seed,
        options=RunOptions(run_until_s=args.run_until, check=args.check),
        timeout_s=args.timeout if args.timeout > 0 else None,
        retries=args.retries)


def run_sweep(args) -> int:
    """The ``sweep`` command body; returns a process exit code (0 = every
    trial ok, 1 = at least one failed/violated trial)."""
    from repro.campaign.engine import run_campaign
    from repro.metrics.report import format_table

    spec = _build_spec(args)

    def progress(record: dict) -> None:
        mark = "ok" if record["status"] == "ok" else record["status"].upper()
        print(f"  trial {record['index']:4d} {mark:9s} "
              f"seed={record['seed']}", flush=True)

    profile_dir = getattr(args, "profile", None)
    if profile_dir:
        os.makedirs(profile_dir, exist_ok=True)

    result = run_campaign(spec, jobs=args.jobs,
                          progress=None if args.quiet else progress,
                          profile_dir=profile_dir)

    summary = result.summary()
    print(f"\ncampaign: {len(result.records)} trial(s), "
          f"{summary['ok']} ok, {summary['failed']} failed, "
          f"jobs={result.jobs}, {result.wall_s:.2f}s wall "
          f"({result.trials_per_sec:.2f} trials/sec)")
    for line in result.dispatch_log:
        print(f"  dispatch: {line}")

    rows = []
    for point in summary["by_point"]:
        failover = point["failover_time_ns"] or {}
        rows.append([
            ", ".join(f"{k}={v}" for k, v in point["point"].items()),
            point["trials"], point["ok"], point["intact"],
            _fmt_ns(failover.get("p50")), _fmt_ns(failover.get("p90")),
        ])
    if rows:
        print()
        print(format_table(
            ["grid point", "trials", "ok", "intact",
             "failover p50", "failover p90"], rows))
    overall = summary["failover_time_ns"]
    if overall:
        print(f"\nfailover time: p50={_fmt_ns(overall['p50'])} "
              f"p90={_fmt_ns(overall['p90'])} p99={_fmt_ns(overall['p99'])} "
              f"(n={overall['n']})")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"\naggregate -> {args.out}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            fh.write(result.to_jsonl())
        print(f"trial records -> {args.jsonl}")
    if profile_dir:
        _profile_report(profile_dir, getattr(args, "profile_top", 25))
    return 0 if not result.failed else 1


def _profile_report(profile_dir: str, top: int) -> None:
    """Merge the per-worker pstats dumps into one whole-campaign view.

    Each worker process profiles only its own share of the trials; the
    merged file (and the printed top-N table, sorted by cumulative time)
    is the campaign-wide cost ranking — the thing one actually wants when
    hunting a sweep-level hot spot across N workers.
    """
    import pstats

    dumps = sorted(glob.glob(os.path.join(profile_dir, "worker-*.pstats")))
    if not dumps:
        print(f"profiles -> {profile_dir} (no worker stats files)")
        return
    stats = pstats.Stats(dumps[0], stream=sys.stdout)
    for dump in dumps[1:]:
        stats.add(dump)
    merged = os.path.join(profile_dir, "merged.pstats")
    stats.dump_stats(merged)
    print(f"profiles -> {profile_dir} ({len(dumps)} worker stats file(s), "
          f"merged -> merged.pstats)")
    if top > 0:
        print(f"\naggregated profile (all workers, top {top} by "
              f"cumulative time):")
        stats.sort_stats("cumulative").print_stats(top)


def _fmt_ns(ns) -> str:
    if ns is None:
        return "-"
    return f"{ns / 1e6:.1f} ms"


if __name__ == "__main__":  # pragma: no cover - debugging entry point
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    add_sweep_args(parser)
    sys.exit(run_sweep(parser.parse_args()))
