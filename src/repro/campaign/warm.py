"""Warm-trial testbed reuse for campaign workers.

A campaign grid point runs many trials that differ only in seed.  Cold
execution re-wires the whole Figure-2 testbed for every trial; warm
execution builds it once per (scenario, build-parameters) key, snapshots
the pristine result (:meth:`repro.scenarios.builder.Testbed.snapshot`),
and thaws + reseeds a copy for each subsequent trial.  The thawed world
is byte-for-byte equivalent to a cold build with the same seed — the
golden-trace suite pins this — so campaign aggregates are identical on
the warm and cold paths.

Honest engineering note (measured, see docs/performance.md): at this
simulator's scale a testbed build is cheap (~0.5–7 ms) and pickle restore
is actually *slower* than a cold build, while a trial runs for ~150 ms.
Setup is well under 1% of trial wall time either way, so the warm path is
about amortization *accounting* (the bench reports the setup-vs-run
split) and about keeping the door open for heavier testbeds, not a
throughput lever today.  The cache therefore reuses the *first build
directly* (zero-cost hit for trial #1) and only thaws snapshots for
later trials.

The cache is per-process: each pool worker owns one, which is why
:func:`repro.campaign.engine` assigns chunks grid-point-affinely — a
chunk never straddles a parameter change, so a warm worker hits its
cache for every trial after the first of each point.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.scenarios.builder import Testbed

__all__ = ["WarmTestbedCache", "get_cache", "set_enabled", "is_enabled",
           "reset_stats"]


class WarmTestbedCache:
    """Per-process snapshot cache keyed by build parameters.

    ``acquire(key, seed, builder)`` returns a pristine testbed seeded
    with ``seed``: the first call for a key invokes ``builder()`` (which
    must build with that seed), snapshots the result, and hands the
    fresh build straight back; later calls thaw the snapshot and reseed.
    Wall-time spent building vs restoring is accumulated in
    :attr:`stats` for the benchmark's setup-vs-run split.
    """

    def __init__(self) -> None:
        self._snapshots: dict[tuple, bytes] = {}
        self.stats = {"builds": 0, "restores": 0,
                      "build_s": 0.0, "restore_s": 0.0}

    def acquire(self, key: tuple, seed: int,
                builder: Callable[[], Testbed]) -> Testbed:
        """Return a pristine testbed for ``key`` seeded with ``seed``."""
        blob = self._snapshots.get(key)
        t0 = time.perf_counter()
        if blob is None:
            testbed = builder()
            self._snapshots[key] = testbed.snapshot()
            self.stats["builds"] += 1
            self.stats["build_s"] += time.perf_counter() - t0
            return testbed
        testbed = Testbed.restore(blob, seed=seed)
        self.stats["restores"] += 1
        self.stats["restore_s"] += time.perf_counter() - t0
        return testbed

    def clear(self) -> None:
        """Drop all snapshots (stats are kept)."""
        self._snapshots.clear()


# One cache per process; pool workers each get their own on first use.
_CACHE: Optional[WarmTestbedCache] = None
_ENABLED = True


def get_cache() -> WarmTestbedCache:
    """The process-wide cache (created on first use)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = WarmTestbedCache()
    return _CACHE


def set_enabled(enabled: bool) -> None:
    """Flip the warm path on/off (the bench's warm-vs-cold A/B switch)."""
    global _ENABLED
    _ENABLED = enabled


def is_enabled() -> bool:
    """Whether scenario runners should use the warm cache."""
    return _ENABLED


def reset_stats() -> dict:
    """Zero the process-wide cache's counters; returns the old values."""
    cache = get_cache()
    old = dict(cache.stats)
    for key in cache.stats:
        cache.stats[key] = 0 if isinstance(cache.stats[key], int) else 0.0
    return old
