"""Trial scenario registry: what a campaign worker actually runs.

A scenario is a function ``TrialSpec -> record dict``.  Workers resolve
scenarios (and faults) *by name* inside the worker process, so nothing
callable ever crosses a process boundary — a :class:`TrialSpec` stays
plain picklable data.

Records are compact JSON-able dicts (virtual-time measurements and
verdicts only, never wall clock) so aggregated campaign output is
byte-identical regardless of worker count; see
:mod:`repro.campaign.spec` for the contract.

Built-in scenarios:

``failover``
    :func:`repro.scenarios.runner.run_failover_experiment` — single
    stream through a named fault (Table 1 / Demo 2 / Demo 4 / Demo 5).
``baseline``
    :func:`repro.scenarios.runner.run_baseline_failover` — the no-ST-TCP
    hot standby counterfactual.
``workload``
    :func:`repro.workloads.runner.run_workload_failover` — N
    connections over M client hosts through a mid-run fault.
``cc_ident``
    :func:`repro.scenarios.ccident.run_cc_ident` — stream under a chosen
    congestion-control algorithm on a lossy link, then classify the
    algorithm back from the cwnd timeline alone.

Every scenario accepts a ``cc`` parameter (usually a grid dimension:
``--grid cc=tahoe,reno,newreno,cubic``) selecting the congestion-control
algorithm for every TCP endpoint in the trial's testbed.

Custom scenarios register with :func:`register_scenario`; note that
worker processes are forked, so register before ``run_campaign`` is
called (spawn-based contexts only see import-time registrations).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.campaign.spec import TrialSpec
from repro.sim.core import NS_PER_S, millis, seconds

__all__ = ["register_scenario", "get_scenario", "scenario_names",
           "FAULTS", "execute_trial"]

ScenarioFn = Callable[[TrialSpec], dict]

_SCENARIOS: dict[str, ScenarioFn] = {}


def register_scenario(name: str, fn: ScenarioFn,
                      replace: bool = False) -> None:
    """Add (or with ``replace=True`` override) a scenario by name."""
    if name in _SCENARIOS and not replace:
        raise ValueError(f"scenario {name!r} is already registered")
    _SCENARIOS[name] = fn


def get_scenario(name: str) -> ScenarioFn:
    """Resolve a registered scenario; raises on unknown names."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"available: {scenario_names()}") from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


# ------------------------------------------------------------------- faults

def _hw_crash_primary(tb, sp, sb):
    from repro.faults.faults import HwCrash
    return HwCrash(tb.primary)


def _hw_crash_backup(tb, sp, sb):
    from repro.faults.faults import HwCrash
    return HwCrash(tb.backup)


def _app_hang_primary(tb, sp, sb):
    from repro.faults.faults import AppHang
    return AppHang(sp)


def _app_hang_backup(tb, sp, sb):
    from repro.faults.faults import AppHang
    return AppHang(sb)


def _app_crash_fin_primary(tb, sp, sb):
    from repro.faults.faults import AppCrashWithCleanup
    return AppCrashWithCleanup(sp)


def _app_crash_fin_backup(tb, sp, sb):
    from repro.faults.faults import AppCrashWithCleanup
    return AppCrashWithCleanup(sb)


def _nic_failure_primary(tb, sp, sb):
    from repro.faults.faults import NicFailure
    return NicFailure(tb.primary.nics[0])


def _nic_failure_backup(tb, sp, sb):
    from repro.faults.faults import NicFailure
    return NicFailure(tb.backup.nics[0])


#: Fault name → factory ``(testbed, server_primary, server_backup) -> Fault``.
#: The ``workload`` scenario has no per-server app handles, so only the
#: testbed-addressed faults (hw crash, NIC failure) apply there.
FAULTS: dict[str, Callable] = {
    "hw_crash_primary": _hw_crash_primary,
    "hw_crash_backup": _hw_crash_backup,
    "app_hang_primary": _app_hang_primary,
    "app_hang_backup": _app_hang_backup,
    "app_crash_fin_primary": _app_crash_fin_primary,
    "app_crash_fin_backup": _app_crash_fin_backup,
    "nic_failure_primary": _nic_failure_primary,
    "nic_failure_backup": _nic_failure_backup,
}

_TESTBED_ONLY_FAULTS = frozenset(
    {"hw_crash_primary", "hw_crash_backup",
     "nic_failure_primary", "nic_failure_backup"})


def _resolve_fault(name: str, workload: bool = False) -> Callable:
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; "
                         f"available: {sorted(FAULTS)}")
    if workload and name not in _TESTBED_ONLY_FAULTS:
        raise ValueError(
            f"fault {name!r} needs server-app handles and is not available "
            f"for the workload scenario; use one of "
            f"{sorted(_TESTBED_ONLY_FAULTS)}")
    return FAULTS[name]


# --------------------------------------------------------- shared param glue

def _pop_config(params: dict):
    """Build an SttcpConfig from the recognised config params, or None."""
    from repro.sttcp.config import SttcpConfig

    fields = {}
    if "hb_period_ms" in params:
        fields["hb_period_ns"] = millis(params.pop("hb_period_ms"))
    if "hb_miss_threshold" in params:
        fields["hb_miss_threshold"] = int(params.pop("hb_miss_threshold"))
    if "max_delay_fin_s" in params:
        fields["max_delay_fin_ns"] = seconds(params.pop("max_delay_fin_s"))
    if "kick_on_takeover" in params:
        fields["kick_on_takeover"] = bool(params.pop("kick_on_takeover"))
    if "use_serial_hb" in params:
        fields["use_serial_hb"] = bool(params.pop("use_serial_hb"))
    return SttcpConfig(**fields) if fields else None


def _apply_cc(params: dict, opts):
    """Fold an optional ``cc`` trial parameter (grid dimension) into the
    run options; every scenario accepts it."""
    cc = params.pop("cc", None)
    return opts.with_(cc=str(cc)) if cc is not None else opts


def _reject_unknown(params: dict, scenario: str) -> None:
    if params:
        raise ValueError(
            f"unknown {scenario} parameter(s): {sorted(params)}")


def _base_record(trial: TrialSpec) -> dict:
    return {
        "index": trial.index,
        "scenario": trial.scenario,
        "seed": trial.seed,
        "params": dict(trial.params),
        "status": "ok",
        "error": None,
    }


def _timeline_fields(timeline) -> dict:
    return {
        "failover_time_ns": timeline.failover_time_ns,
        "detection_ns": timeline.detection_latency_ns,
        "detection_kind": timeline.detection_kind,
        "backoff_residue_ns": timeline.backoff_residue_ns,
        "takeover_at_ns": timeline.takeover_at,
        "non_ft_at_ns": timeline.non_ft_at,
        "client_resumed_at_ns": timeline.client_resumed_at,
    }


def _goodput(bytes_received: int, run_until_s: float) -> float:
    """Client goodput over the whole run window, bytes/second."""
    return round(bytes_received / run_until_s, 3) if run_until_s else 0.0


# ---------------------------------------------------------------- scenarios

def _warm_testbed(key: tuple, opts, builder):
    """Pristine testbed via the warm snapshot cache, or None (cold path).

    Records never carry wall clock, so warm/cold is invisible in campaign
    output — the golden-trace suite pins the byte-identity.
    """
    from repro.campaign import warm

    if not warm.is_enabled():
        return None
    return warm.get_cache().acquire(key, opts.seed, builder)


def _run_failover(trial: TrialSpec) -> dict:
    from repro.check.oracle import InvariantViolationError
    from repro.scenarios.builder import build_testbed
    from repro.scenarios.runner import run_failover_experiment

    params = dict(trial.params)
    fault = _resolve_fault(params.pop("fault", "hw_crash_primary"))
    config = _pop_config(params)
    total_bytes = int(params.pop("total_bytes", 30_000_000))
    fault_at_s = float(params.pop("fault_at_s", 1.0))
    request_chunk = int(params.pop("request_chunk", 0))
    opts = _apply_cc(params, trial.options.with_(seed=trial.seed))
    _reject_unknown(params, "failover")

    tb = _warm_testbed(
        ("failover", repr(config), opts.cc, opts.trace_categories), opts,
        lambda: build_testbed(seed=opts.seed, config=config, cc=opts.cc,
                              trace_categories=opts.trace_categories))
    record = _base_record(trial)
    record["oracle"] = "clean" if opts.check else "off"
    try:
        result = run_failover_experiment(
            fault, total_bytes=total_bytes, fault_at_s=fault_at_s,
            config=config, request_chunk=request_chunk, options=opts,
            testbed=tb)
    except InvariantViolationError as exc:
        record["status"] = "violation"
        record["oracle"] = f"violated:{len(exc.violations)}"
        return record
    record.update(_timeline_fields(result.timeline))
    record["stream_intact"] = result.stream_intact
    record["bytes_received"] = result.client.received
    record["goodput_bytes_per_s"] = _goodput(result.client.received,
                                             opts.run_until_s)
    return record


def _run_baseline(trial: TrialSpec) -> dict:
    from repro.check.oracle import InvariantViolationError
    from repro.scenarios.builder import build_testbed
    from repro.scenarios.runner import run_baseline_failover

    params = dict(trial.params)
    total_bytes = int(params.pop("total_bytes", 30_000_000))
    fault_at_s = float(params.pop("fault_at_s", 1.0))
    liveness_timeout_s = float(params.pop("liveness_timeout_s", 2.0))
    opts = _apply_cc(params, trial.options.with_(seed=trial.seed))
    _reject_unknown(params, "baseline")

    tb = _warm_testbed(
        ("baseline", opts.cc, opts.trace_categories), opts,
        lambda: build_testbed(seed=opts.seed, mode="baseline", cc=opts.cc,
                              trace_categories=opts.trace_categories))
    record = _base_record(trial)
    record["oracle"] = "clean" if opts.check else "off"
    try:
        result = run_baseline_failover(
            total_bytes=total_bytes, fault_at_s=fault_at_s,
            liveness_timeout_s=liveness_timeout_s, options=opts,
            testbed=tb)
    except InvariantViolationError as exc:
        record["status"] = "violation"
        record["oracle"] = f"violated:{len(exc.violations)}"
        return record
    # The baseline client reconnects, so "failover time" here is the
    # client-visible disruption around the fault.
    record["failover_time_ns"] = result.disruption_ns
    record["reconnects"] = result.client.reconnect_count
    record["resets"] = result.client.reset_count
    record["bytes_received"] = result.client.received
    record["goodput_bytes_per_s"] = _goodput(result.client.received,
                                             opts.run_until_s)
    return record


def _run_workload(trial: TrialSpec) -> dict:
    from repro.check.oracle import InvariantViolationError
    from repro.scenarios.builder import build_testbed
    from repro.workloads import WorkloadSpec, run_workload_failover

    params = dict(trial.params)
    fault_name = params.pop("fault", "hw_crash_primary")
    fault = _resolve_fault(fault_name, workload=True)
    config = _pop_config(params)
    spec = WorkloadSpec(
        kind=params.pop("kind", "stream"),
        connections=int(params.pop("connections", 32)),
        bytes_per_conn=int(params.pop("bytes_per_conn", 100_000)),
        mean_interarrival_s=float(params.pop("churn_ms", 20.0)) / 1000.0)
    num_clients = int(params.pop("num_clients", 8))
    fault_at_s = float(params.pop("fault_at_s", 1.0))
    opts = _apply_cc(params, trial.options.with_(seed=trial.seed))
    _reject_unknown(params, "workload")

    tb = _warm_testbed(
        ("workload", repr(config), num_clients, opts.cc,
         opts.trace_categories), opts,
        lambda: build_testbed(seed=opts.seed, config=config, cc=opts.cc,
                              num_clients=num_clients,
                              trace_categories=opts.trace_categories))
    record = _base_record(trial)
    record["oracle"] = "clean" if opts.check else "off"
    try:
        result = run_workload_failover(
            spec, make_fault=lambda tb: fault(tb, None, None),
            fault_at_s=fault_at_s, num_clients=num_clients,
            config=config, options=opts, testbed=tb)
    except InvariantViolationError as exc:
        record["status"] = "violation"
        record["oracle"] = f"violated:{len(exc.violations)}"
        return record
    engine = result.engine
    received = sum(getattr(r.app, "received", 0) or 0
                   for r in engine.records if r.app is not None)
    record.update(_timeline_fields(result.timeline))
    record["stream_intact"] = result.all_intact
    record["connections"] = len(engine.records)
    record["completed"] = engine.completed_count
    record["intact"] = engine.intact_count
    record["bytes_received"] = received
    record["goodput_bytes_per_s"] = _goodput(received, opts.run_until_s)
    return record


def _run_cc_ident(trial: TrialSpec) -> dict:
    from repro.scenarios.ccident import run_cc_ident

    params = dict(trial.params)
    cc = str(params.pop("cc", "reno"))
    total_bytes = int(params.pop("total_bytes", 4_000_000))
    loss_rate = float(params.pop("loss_rate", 0.01))
    _reject_unknown(params, "cc_ident")

    opts = trial.options.with_(seed=trial.seed, cc=cc)
    record = _base_record(trial)
    record["oracle"] = "off"
    result = run_cc_ident(cc, seed=opts.seed, total_bytes=total_bytes,
                          loss_rate=loss_rate,
                          run_until_s=opts.run_until_s,
                          trace_categories=opts.trace_categories)
    record["cc"] = cc
    record["guess"] = result.guess
    record["correct"] = result.correct
    record["features"] = result.features
    record["bytes_received"] = result.bytes_received
    return record


register_scenario("failover", _run_failover)
register_scenario("baseline", _run_baseline)
register_scenario("workload", _run_workload)
register_scenario("cc_ident", _run_cc_ident)


def execute_trial(trial: TrialSpec) -> dict:
    """Run one trial to a record; a raising trial yields a ``failed``
    record instead of killing the campaign (or its worker)."""
    try:
        fn = get_scenario(trial.scenario)
        record = fn(trial)
    except Exception as exc:  # noqa: BLE001 - a trial is a fault boundary
        record = _base_record(trial)
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record
