"""A simulated machine: NICs, IP/TCP/UDP/ICMP stacks, serial ports, apps,
power state, and an optional CPU cost model.

A host that loses power (HW crash, OS crash, or STONITH) goes silent
everywhere at once: inbound frames are dropped, TCP timers freeze, serial
ports stop, applications stop ticking.  That silence — on every channel
simultaneously — is precisely the symptom ST-TCP's dual-link heartbeat is
designed to recognize (Table 1 row 1).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.net.addresses import IPAddress, MacAddress
from repro.net.frame import EthernetFrame
from repro.net.icmp import IcmpLayer
from repro.net.ip import Interface, IpStack
from repro.net.nic import Nic
from repro.net.packet import IPProtocol
from repro.net.pool import release_frame
from repro.net.serial_link import SerialPort
from repro.net.udp import UdpLayer
from repro.sim.world import World
from repro.tcp.connection import TcpConfig
from repro.tcp.stack import TcpStack

from repro.host.cpu import CpuModel
from repro.host.osmodel import OperatingSystem

__all__ = ["Host"]


class Host:
    """One machine of the testbed."""

    def __init__(self, world: World, name: str,
                 tcp_config: Optional[TcpConfig] = None,
                 frame_processing_cost_ns: int = 0):
        self.world = world
        self.name = name
        self.ip = IpStack(world, f"{name}.ip")
        self.tcp = TcpStack(world, self.ip, f"{name}.tcp", tcp_config)
        self.udp = UdpLayer(world, self.ip, f"{name}.udp")
        self.icmp = IcmpLayer(world, self.ip, f"{name}.icmp")
        self.ip.register_protocol(IPProtocol.UDP, self.udp.handle_packet)
        self.ip.register_protocol(IPProtocol.ICMP, self.icmp.handle_packet)
        self.os = OperatingSystem(self)
        self.nics: list[Nic] = []
        self.interfaces: list[Interface] = []
        self.serial_ports: list[SerialPort] = []
        self.apps: list = []
        self.powered_on = True
        # Per-frame processing cost; >0 activates the FIFO CPU model (used
        # by the backup-overload ablation).
        self.frame_processing_cost_ns = frame_processing_cost_ns
        self.cpu: Optional[CpuModel] = (
            CpuModel(world, f"{name}.cpu") if frame_processing_cost_ns > 0
            else None)
        # Subscribers notified on power-off (ST-TCP engines, monitors).
        self.on_power_off: list[Callable[[], None]] = []
        self.frames_dropped_host_down = 0

    # ------------------------------------------------------------- wiring

    def add_nic(self, mac: "MacAddress | str",
                addresses: "list[IPAddress | str]",
                network: "IPAddress | str", prefix_len: int = 24) -> Nic:
        """Create a NIC with its IP configuration (first address = machine
        address; the rest are aliases, e.g. the shared serviceIP)."""
        nic = Nic(self.world, f"{self.name}.nic{len(self.nics)}",
                  MacAddress(mac))
        nic.host_up = self.is_up
        ips = [IPAddress(a) for a in addresses]
        iface = self.ip.add_interface(nic, ips, IPAddress(network), prefix_len)
        # partial over the bound method, not a lambda: one Python frame
        # less per delivered frame, and it pickles (world snapshots).
        nic.set_upper(partial(self._frame_up, iface))
        self.nics.append(nic)
        self.interfaces.append(iface)
        return nic

    def add_serial_port(self) -> SerialPort:
        """Attach a serial port (for the null-modem HB link)."""
        port = SerialPort(self.world,
                          f"{self.name}.tty{len(self.serial_ports)}")
        self.serial_ports.append(port)
        return port

    def register_app(self, app) -> None:
        """Track an application for lifecycle management."""
        self.apps.append(app)

    def set_default_gateway(self, gateway: "IPAddress | str") -> None:
        """Configure the default route."""
        self.ip.default_gateway = IPAddress(gateway)

    # ------------------------------------------------------------ delivery

    def _frame_up(self, iface: Interface, frame: EthernetFrame) -> None:
        # is_up inlined (keep in sync): one property frame per received
        # frame is measurable on the per-segment hot path.
        if not self.powered_on or self.os.crashed:
            self.frames_dropped_host_down += 1
            return
        if self.cpu is not None:
            # The CPU model defers processing to a later event: claim
            # pooled frames so the wire's release at the end of this
            # delivery cannot recycle them under the closure
            # (pool.retain inlined); _process_frame drops the claim.
            claims = frame._claims
            if claims:
                frame._claims = claims + 1
            self.cpu.submit(
                self.frame_processing_cost_ns,
                lambda: self._process_frame(frame, iface))
        else:
            self.ip.receive_frame(frame, iface)

    def _process_frame(self, frame: EthernetFrame, iface: Interface) -> None:
        if self.is_up:
            self.ip.receive_frame(frame, iface)
        release_frame(frame)  # the CPU-model closure's claim

    # ---------------------------------------------------------- power state

    @property
    def is_up(self) -> bool:
        """True while powered on and the OS has not crashed."""
        return self.powered_on and not self.os.crashed

    def power_off(self, reason: str = "power off") -> None:
        """Instant, total silence — HW crash or STONITH."""
        if not self.powered_on:
            return
        self.powered_on = False
        # Push the power state down to the NICs so the per-frame hot path
        # reads one bool instead of calling back up through a gate.  No
        # scenario ever re-powers a host, so a one-way push is sufficient.
        for nic in self.nics:
            nic.host_up = False
        self.world.trace.record("fault", self.name, "host down",
                                reason=reason)
        self.tcp.freeze()
        for port in self.serial_ports:
            port.set_enabled(False)
        for app in self.apps:
            app.host_went_down()
        for callback in list(self.on_power_off):
            callback()

    def crash_hw(self) -> None:
        """Hardware crash (Table 1 row 1)."""
        self.power_off(reason="HW crash")

    def crash_os(self) -> None:
        """OS crash — same externally visible symptom as a HW crash."""
        self.os.crash()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "DOWN"
        return f"<Host {self.name} {state} nics={len(self.nics)}>"
