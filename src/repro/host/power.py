"""Out-of-band power control (STONITH).

The paper's testbed includes remotely controllable power: "Before taking
over, the backup also powers the primary down to prevent any danger of
dual active servers" (Sec. 2).  :class:`PowerStrip` models that channel —
it works regardless of the network state, with a small actuation delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.core import millis
from repro.sim.world import World

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.host import Host

__all__ = ["PowerStrip"]


class PowerStrip:
    """Shared remote power controller for the testbed's hosts."""

    def __init__(self, world: World, actuation_delay_ns: int = millis(5)):
        self._world = world
        self.actuation_delay_ns = actuation_delay_ns
        self._hosts: dict[str, "Host"] = {}
        self.power_downs: list[tuple[int, str, str]] = []  # (t, target, by)

    def register(self, host: "Host") -> None:
        """Put a host under this power strip's control."""
        self._hosts[host.name] = host

    def power_down(self, target: "Host", initiator: str) -> None:
        """Cut power to ``target`` after the actuation delay.

        Idempotent and safe against already-dead targets — powering down a
        crashed primary is the common case.
        """
        if target.name not in self._hosts:
            raise KeyError(f"host {target.name} not on this power strip")
        self._world.trace.record("power", initiator, "power-down requested",
                                 target=target.name)
        self.power_downs.append((self._world.sim.now, target.name, initiator))
        self._world.sim.schedule(self.actuation_delay_ns,
                                 target.power_off,
                                 label=f"power.{target.name}")

    def was_powered_down(self, host_name: str) -> bool:
        """True if this strip ever cut power to ``host_name``."""
        return any(name == host_name for _, name, _ in self.power_downs)
