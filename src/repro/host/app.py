"""Application base class.

ST-TCP assumes server applications are *deterministic*: given the same
input TCP stream, the primary's application and its replica on the backup
produce byte-identical output (paper Sec. 2).  Subclasses get:

* tracked sockets (so the OS model can clean them up on a crash);
* tracked timers (``after``/``every``) that stop when the app dies;
* the two crash modes of paper Sec. 4.2 via :meth:`crash`:
  ``cleanup=False`` (app hangs, socket stays open, no FIN) and
  ``cleanup=True`` (OS closes the socket, generating a FIN).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.timers import PeriodicTimer, Timer
from repro.tcp.sockets import Socket

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.host import Host

__all__ = ["Application"]


class Application:
    """Base class for simulated applications."""

    def __init__(self, host: "Host", name: str):
        self.host = host
        self.world = host.world
        self.name = name
        self.running = False
        self.crashed = False
        # Cached is_alive: every transition (start/stop/crash/host down)
        # funnels through a method below, so guards read one bool per
        # socket event instead of walking two property chains.
        self.alive = False
        self.crash_had_cleanup: Optional[bool] = None
        self._sockets: list[Socket] = []
        self._timers: list = []
        host.register_app(self)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin operation (listen/connect).  Idempotent."""
        if self.running:
            return
        self.running = True
        self.alive = not self.crashed and self.host.is_up
        self.on_start()

    def on_start(self) -> None:
        """Subclass hook: set up listeners/connections/timers."""

    def crash(self, cleanup: bool) -> None:
        """Application crash (paper Sec. 4.2).

        ``cleanup=False``: the app hangs/dies silently — it stops reading,
        writing and ticking, but its sockets remain open at the TCP layer
        (no FIN is generated).

        ``cleanup=True``: the OS reaps the process and closes its sockets,
        so TCP generates a FIN (e.g. a SEGV-killed process).
        """
        if self.crashed:
            return
        self.crashed = True
        self.running = False
        self.alive = False
        self.crash_had_cleanup = cleanup
        self._stop_timers()
        self.on_crash()
        self.world.trace.record("fault", self.name, "application crashed",
                                cleanup=cleanup)
        if cleanup:
            # OS-side cleanup: close every socket the process owned.  The
            # FIN this generates is exactly what ST-TCP must intercept.
            for sock in list(self._sockets):
                if sock.is_open:
                    sock.close()

    def on_crash(self) -> None:
        """Subclass hook: extra teardown on crash (rarely needed)."""

    def stop(self) -> None:
        """Orderly shutdown: stop timers; sockets are closed by subclasses."""
        self.running = False
        self.alive = False
        self._stop_timers()

    def host_went_down(self) -> None:
        """Called by the host on power-off / OS crash."""
        self.running = False
        self.alive = False
        self._stop_timers()

    @property
    def is_alive(self) -> bool:
        """True while the app runs on a healthy, powered host."""
        return self.running and not self.crashed and self.host.is_up

    # ------------------------------------------------------------- helpers

    def track_socket(self, sock: Socket) -> Socket:
        """Register a socket so crash-with-cleanup can close it."""
        self._sockets.append(sock)
        return sock

    def untrack_socket(self, sock: Socket) -> None:
        """Forget a socket (it will not be closed on cleanup-crash)."""
        if sock in self._sockets:
            self._sockets.remove(sock)

    @property
    def sockets(self) -> list[Socket]:
        """Snapshot of the sockets this application owns."""
        return list(self._sockets)

    def after(self, delay_ns: int, fn: Callable[[], None]) -> Timer:
        """One-shot timer that dies with the application."""
        timer = Timer(self.world.sim, self._guarded(fn),
                      label=f"{self.name}.after")
        timer.start(delay_ns)
        self._timers.append(timer)
        return timer

    def every(self, period_ns: int, fn: Callable[[], None],
              fire_immediately: bool = False) -> PeriodicTimer:
        """Periodic timer that dies with the application."""
        timer = PeriodicTimer(self.world.sim, self._guarded(fn), period_ns,
                              label=f"{self.name}.every")
        timer.start(fire_immediately=fire_immediately)
        self._timers.append(timer)
        return timer

    def _guarded(self, fn: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            """Invoke ``fn`` only while the application is alive."""
            if self.alive:
                fn()
        return run

    def guard_callback(self, fn: Callable) -> Callable:
        """Wrap a socket callback so it is ignored once the app is dead —
        a hung process does not service socket events."""
        def run(*args, **kwargs):
            """Invoke ``fn`` only while the application is alive."""
            if self.alive:
                return fn(*args, **kwargs)
        return run

    def _stop_timers(self) -> None:
        for timer in self._timers:
            timer.stop()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("crashed" if self.crashed
                 else "running" if self.running else "stopped")
        return f"<{type(self).__name__} {self.name} {state}>"
