"""A simple FIFO CPU model.

Used for the old-vs-new-architecture ablation (paper Sec. 3): in the
original ST-TCP prototype the backup also processed all primary→client
traffic, which "leads to an overloaded NIC or/and CPU on the backup" and
makes the backup lag.  Modelling per-frame processing cost reproduces that
overload and the resulting false failure suspicion.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.world import World

__all__ = ["CpuModel"]


class CpuModel:
    """Single-core FIFO work queue with a fixed cost per submitted job.

    ``submit(cost_ns, fn)`` runs ``fn`` once the CPU has worked through
    everything queued before it plus ``cost_ns`` of service time.  The
    growing backlog under overload is what delays the backup's packet
    processing and application progress.
    """

    def __init__(self, world: World, name: str = "cpu"):
        self._world = world
        self.name = name
        self._free_at = 0
        self.jobs_run = 0
        self.busy_ns = 0

    @property
    def backlog_ns(self) -> int:
        """How far the CPU is currently behind (0 when idle)."""
        return max(0, self._free_at - self._world.sim.now)

    def submit(self, cost_ns: int, fn: Callable[[], None]) -> None:
        """Queue a job costing ``cost_ns`` of CPU time."""
        if cost_ns < 0:
            raise ValueError(f"cost must be non-negative, got {cost_ns}")
        now = self._world.sim.now
        start = max(now, self._free_at)
        self._free_at = start + cost_ns
        self.busy_ns += cost_ns
        self.jobs_run += 1
        self._world.sim.schedule(self._free_at - now, fn,
                                 label=f"{self.name}.job")

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` spent busy (for reports)."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)
