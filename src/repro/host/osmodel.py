"""The operating-system model.

Thin by design: the OS is where the paper's failure taxonomy draws its
lines (HW crash vs OS crash vs app crash with/without cleanup), so this
module exists to make scenarios read like Table 1 rows rather than to
simulate scheduling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.app import Application
    from repro.host.host import Host

__all__ = ["OperatingSystem"]


class OperatingSystem:
    """Per-host OS: app lifecycle and crash semantics."""

    def __init__(self, host: "Host"):
        self._host = host
        self.crashed = False

    def crash(self) -> None:
        """Kernel panic: the whole machine stops instantly.

        At the abstraction level of ST-TCP this is indistinguishable from a
        hardware crash (Table 1 row 1 treats HW/OS failure as one symptom):
        no FIN, no HB, silence on every interface.
        """
        self.crashed = True
        self._host.world.trace.record("fault", self._host.name, "OS crashed")
        self._host.power_off(reason="OS crash")

    def kill_app_with_cleanup(self, app: "Application") -> None:
        """SEGV-style kill: the OS reaps the process and closes its sockets,
        generating FIN segments (paper Sec. 4.2.2)."""
        app.crash(cleanup=True)

    def hang_app(self, app: "Application") -> None:
        """The app wedges (infinite loop / lost thread): no cleanup, sockets
        stay open, no FIN (paper Sec. 4.2.1)."""
        app.crash(cleanup=False)
