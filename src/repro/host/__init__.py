"""Machine model: hosts, OS, applications, CPU, power control."""

from repro.host.app import Application
from repro.host.cpu import CpuModel
from repro.host.host import Host
from repro.host.osmodel import OperatingSystem
from repro.host.power import PowerStrip

__all__ = ["Application", "CpuModel", "Host", "OperatingSystem", "PowerStrip"]
