"""Run a many-connection workload through a mid-run primary failover.

This is the workload-scale sibling of
:func:`repro.scenarios.runner.run_failover_experiment`: build an
N-client testbed, start the service on both replicas, offer the
:class:`~repro.workloads.engine.WorkloadSpec` load, crash the primary
mid-run, and account for every connection individually.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.kvstore import KvServer
from repro.apps.streaming import StreamServer
from repro.check.oracle import (CheckTopology, InvariantOracle,
                                InvariantViolationError)
from repro.faults.faults import Fault, HwCrash
from repro.metrics.monitor import ClientStreamMonitor
from repro.metrics.timeline import FailoverTimeline, build_timeline
from repro.obs.export import ObsSession
from repro.scenarios.builder import Testbed, build_testbed
from repro.scenarios.options import RunOptions
from repro.sim import gcctl
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.workloads.engine import WorkloadEngine, WorkloadSpec

__all__ = ["WorkloadResult", "run_workload_failover"]


@dataclass
class WorkloadResult:
    """Everything a workload failover run produces."""

    testbed: Testbed
    engine: WorkloadEngine
    timeline: FailoverTimeline
    fault_description: str
    monitor: Optional[ClientStreamMonitor] = None
    obs: Optional[ObsSession] = None
    oracle: Optional[InvariantOracle] = None

    @property
    def records(self):
        """Per-connection records (see
        :class:`~repro.workloads.engine.ConnectionRecord`)."""
        return self.engine.records

    @property
    def all_intact(self) -> bool:
        """True when every connection completed with its stream intact."""
        return self.engine.all_intact

    def summary(self) -> dict:
        """The engine scorecard plus the failover instants."""
        out = self.engine.summary()
        out["fault"] = self.fault_description
        out["fault_at_ns"] = self.timeline.fault_at
        out["takeover_at_ns"] = self.timeline.takeover_at
        return out


def run_workload_failover(
        spec: Optional[WorkloadSpec] = None,
        make_fault: Optional[Callable[[Testbed], Fault]] = None,
        fault_at_s: float = 1.0,
        num_clients: int = 32,
        config: Optional[SttcpConfig] = None,
        options: Optional[RunOptions] = None,
        testbed: Optional[Testbed] = None,
        **build_kwargs) -> WorkloadResult:
    """Offer ``spec`` over ``num_clients`` hosts, fail the primary mid-run.

    ``make_fault`` (default: HW crash of the primary) receives the built
    testbed and returns the fault to inject at ``fault_at_s``.

    ``options`` is the one knob surface shared with the scenario runners
    (:class:`~repro.scenarios.options.RunOptions`); there are no
    per-keyword shims any more.
    """
    spec = spec or WorkloadSpec()
    opts = options if options is not None else RunOptions()
    if testbed is not None:
        # Warm-trial path: run on the supplied pristine testbed (see
        # repro.campaign.warm); the caller owns the seed/config/cc match.
        tb = testbed
    else:
        build_kwargs.setdefault("trace_categories", opts.trace_categories)
        tb = build_testbed(seed=opts.seed, config=config, cc=opts.cc,
                           num_clients=num_clients, **build_kwargs)
    if opts.gc_freeze:
        gcctl.freeze_baseline()
    obs = ObsSession(tb.world, level=opts.obs_level) if opts.obs_level else None
    oracle = (InvariantOracle(tb.world, CheckTopology.from_testbed(tb))
              .attach() if opts.check else None)

    server_cls = StreamServer if spec.kind == "stream" else KvServer
    port = spec.port if spec.port is not None else (
        tb.pair.config.service_port if tb.pair is not None else 80)
    server_cls(tb.primary, "server-primary", port=port).start()
    server_cls(tb.backup, "server-backup", port=port).start()
    if tb.pair is not None:
        tb.pair.start()

    monitor = ClientStreamMonitor(tb.world) if spec.kind == "stream" else None
    engine = WorkloadEngine(tb, spec, monitor=monitor)
    engine.start()

    fault = make_fault(tb) if make_fault is not None else HwCrash(tb.primary)
    fault_at = seconds(fault_at_s)
    tb.inject.at(fault_at, fault)
    tb.run_until(opts.run_until_s)

    if tb.pair is not None:
        timeline = build_timeline(fault_at, tb.pair.backup.events,
                                  tb.pair.primary.events, monitor)
    else:
        timeline = FailoverTimeline(fault_at=fault_at)
    if obs is not None:
        obs.finalize(timeline=timeline, extra={
            "workload.connections": len(engine.records),
            "workload.clients": len(tb.clients),
            "workload.completed": engine.completed_count,
            "workload.intact": engine.intact_count,
        })
    if oracle is not None:
        oracle.detach()
        if oracle.violations:
            raise InvariantViolationError(oracle.violations)
    return WorkloadResult(tb, engine, timeline, fault.description,
                          monitor=monitor, obs=obs, oracle=oracle)
