"""The workload engine: many concurrent connections with arrival churn.

A :class:`WorkloadSpec` describes the offered load (how many connections,
of which kind, how big, arriving how fast); the :class:`WorkloadEngine`
schedules the arrivals on the testbed's client hosts (round-robin),
tracks one :class:`ConnectionRecord` per connection, and scores each for
*intactness* — did every byte arrive exactly once, in order, with no
reset — which is the per-connection version of the paper's headline
"client doesn't notice the failover" property.

Arrival times are drawn from a named RNG stream
(``workload.arrivals``), so the same seed gives a byte-identical run and
adding other randomness consumers never perturbs the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.kvstore import KvClient
from repro.apps.streaming import StreamClient
from repro.host.host import Host
from repro.sim.core import NS_PER_S, millis, seconds

__all__ = ["WorkloadSpec", "ConnectionRecord", "WorkloadEngine"]

KINDS = ("stream", "kv")


@dataclass(frozen=True)
class WorkloadSpec:
    """The offered load, independent of any particular testbed.

    ``kind``
        ``"stream"`` — each connection is a :class:`StreamClient`
        downloading ``bytes_per_conn`` pattern bytes; ``"kv"`` — each
        connection is a :class:`KvClient` running a scripted, per-
        connection-namespaced SET/GET sequence with computable replies.
    ``connections``
        Total connections opened over the run.
    ``start_s`` / ``mean_interarrival_s``
        First arrival (absolute virtual time) and the mean of the
        exponential interarrival gaps — the churn knob.  Connections
        close as they complete, so the live population rises and falls.
    ``port``
        Service port; ``None`` means the testbed's tapped service port.
    """

    kind: str = "stream"
    connections: int = 64
    bytes_per_conn: int = 100_000
    request_chunk: int = 0
    kv_ops: int = 10
    kv_interval_ns: int = millis(2)
    start_s: float = 0.1
    mean_interarrival_s: float = 0.02
    port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.connections < 1:
            raise ValueError(f"connections must be >= 1, got {self.connections}")


def kv_script(index: int, ops: int) -> tuple[list[bytes], list[bytes]]:
    """The scripted command sequence for kv connection ``index`` and the
    replies a correct (state-intact) server must produce.  Keys are
    namespaced per connection, so concurrent connections never interact
    and the expected replies are computable up front."""
    commands: list[bytes] = []
    expected: list[bytes] = []
    for op in range(ops):
        key = b"wl%d.k%d" % (index, op)
        value = b"v%d.%d" % (index, op)
        commands.append(b"SET %s %s" % (key, value))
        expected.append(b"OK")
    for op in range(ops):
        key = b"wl%d.k%d" % (index, op)
        commands.append(b"GET %s" % key)
        expected.append(b"VALUE v%d.%d" % (index, op))
    return commands, expected


class ConnectionRecord:
    """One workload connection's lifecycle and verdict."""

    __slots__ = ("index", "host_name", "kind", "opened_at_ns",
                 "completed_at_ns", "app", "expected_replies")

    def __init__(self, index: int, host_name: str, kind: str,
                 opened_at_ns: int):
        self.index = index
        self.host_name = host_name
        self.kind = kind
        self.opened_at_ns = opened_at_ns
        self.completed_at_ns: Optional[int] = None
        self.app = None
        self.expected_replies: Optional[list[bytes]] = None

    @property
    def completed(self) -> bool:
        """True once the connection finished its whole script/transfer."""
        return self.completed_at_ns is not None

    @property
    def stream_intact(self) -> bool:
        """The per-connection headline property: the full payload arrived
        exactly once, in order, uncorrupted, with no reset."""
        app = self.app
        if app is None or app.reset_count != 0:
            return False
        if self.kind == "stream":
            return (app.received == app.total_bytes
                    and app.corrupt_at is None)
        return app.done and app.replies == self.expected_replies

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "intact" if self.stream_intact else "NOT-intact"
        return (f"<ConnectionRecord #{self.index} {self.kind} "
                f"on {self.host_name} {verdict}>")


class WorkloadEngine:
    """Opens the spec'd connections against the testbed and keeps score."""

    def __init__(self, testbed, spec: WorkloadSpec, monitor=None):
        self.testbed = testbed
        self.spec = spec
        #: Optional ClientStreamMonitor fed by every stream connection
        #: (aggregate arrival curve — the many-connection "pie chart").
        self.monitor = monitor
        self.records: list[ConnectionRecord] = []
        self._rng = testbed.world.rng.stream("workload.arrivals")
        self._port = spec.port if spec.port is not None else (
            testbed.pair.config.service_port if testbed.pair is not None
            else 80)
        self._started = False

    @property
    def port(self) -> int:
        """The resolved service port connections target."""
        return self._port

    def start(self) -> None:
        """Schedule every arrival (exponential interarrival gaps),
        round-robin over the testbed's client hosts."""
        if self._started:
            raise RuntimeError("WorkloadEngine.start() called twice")
        self._started = True
        sim = self.testbed.world.sim
        clients = self.testbed.clients
        at = max(sim.now, seconds(self.spec.start_s))
        for index in range(self.spec.connections):
            host = clients[index % len(clients)]
            record = ConnectionRecord(index, host.name, self.spec.kind, at)
            self.records.append(record)
            sim.schedule_at(at, self._open, record, host,
                            label="workload.open")
            gap_s = self._rng.expovariate(1.0 / self.spec.mean_interarrival_s)
            at += max(1, round(gap_s * NS_PER_S))

    # ------------------------------------------------------------ internals

    def _open(self, record: ConnectionRecord, host: Host) -> None:
        service_ip = self.testbed.service_ip
        if record.kind == "stream":
            app = StreamClient(
                host, f"wl{record.index}", service_ip, port=self._port,
                total_bytes=self.spec.bytes_per_conn,
                request_chunk=self.spec.request_chunk,
                monitor=self.monitor,
                on_complete=lambda: self._completed(record),
                close_when_complete=True)
        else:
            commands, expected = kv_script(record.index, self.spec.kv_ops)
            record.expected_replies = expected
            app = KvClient(
                host, f"wl{record.index}", service_ip, port=self._port,
                commands=commands, interval_ns=self.spec.kv_interval_ns,
                on_complete=lambda: self._completed(record))
        record.app = app
        app.start()

    def _completed(self, record: ConnectionRecord) -> None:
        record.completed_at_ns = self.testbed.world.sim.now
        app = record.app
        # Kv connections stay open after their script; close to churn.
        if (record.kind == "kv" and app.sock is not None
                and app.sock.is_open):
            app.sock.close()

    # -------------------------------------------------------------- verdict

    @property
    def completed_count(self) -> int:
        """Connections that finished their transfer/script."""
        return sum(1 for r in self.records if r.completed)

    @property
    def intact_count(self) -> int:
        """Connections whose stream survived intact (see
        :attr:`ConnectionRecord.stream_intact`)."""
        return sum(1 for r in self.records if r.stream_intact)

    @property
    def all_intact(self) -> bool:
        """True when *every* connection completed with its stream intact."""
        return all(r.completed and r.stream_intact for r in self.records)

    def summary(self) -> dict:
        """A small, JSON-friendly scorecard."""
        return {
            "kind": self.spec.kind,
            "connections": len(self.records),
            "clients": len(self.testbed.clients),
            "completed": self.completed_count,
            "intact": self.intact_count,
            "all_intact": self.all_intact,
        }
