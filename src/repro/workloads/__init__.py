"""Many-connection workloads over the ST-TCP testbed.

The paper's demos drive one client and one TCP connection; the ROADMAP
north star is a service under production-scale load.  This package is the
bridge: a :class:`~repro.workloads.engine.WorkloadEngine` opens many
concurrent connections (streaming or key-value) from N client hosts with
configurable arrival churn, and
:func:`~repro.workloads.runner.run_workload_failover` runs such a
workload through a mid-run primary failover with per-connection
intactness accounting.
"""

from repro.workloads.engine import (ConnectionRecord, WorkloadEngine,
                                    WorkloadSpec)
from repro.workloads.runner import WorkloadResult, run_workload_failover

__all__ = ["ConnectionRecord", "WorkloadEngine", "WorkloadSpec",
           "WorkloadResult", "run_workload_failover"]
