"""repro.obs — the unified observability layer.

One registry of named probe points (:mod:`repro.obs.registry`), a probe
bus components fire into (:mod:`repro.obs.bus`), a metrics registry
(:mod:`repro.obs.metrics`), and exporters that turn a run into JSONL
artifacts (:mod:`repro.obs.export`).  See ``docs/observability.md``.

The exporters are imported lazily (PEP 562): :mod:`repro.sim.world`
imports the bus, and :mod:`repro.obs.export` imports the net layer, so an
eager import here would close a cycle back through ``World``.
"""

from repro.obs.bus import ProbeBus, ProbeEvent
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               format_snapshot_json, format_snapshot_text)
from repro.obs.registry import (CATEGORIES, PROBES, ProbeSpec,
                                UnknownProbeError, probes_in_category)

__all__ = [
    "ProbeBus", "ProbeEvent",
    "OBS_LEVELS", "ObsSession", "describe_frame",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "format_snapshot_json", "format_snapshot_text",
    "CATEGORIES", "PROBES", "ProbeSpec", "UnknownProbeError",
    "probes_in_category",
]

_LAZY = {"ObsSession", "OBS_LEVELS", "describe_frame", "jsonl_line"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.obs import export
        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
