"""The probe-point registry — every observable event, defined exactly once.

This table is the single source of truth for instrumentation names:

* **probe points** (``tcp.segment_tx``, ``hb.miss``, ``sttcp.takeover``...)
  are stable, documented identifiers that components fire on the
  :class:`~repro.obs.bus.ProbeBus`;
* **trace categories** (``tcp``, ``hb``, ``sttcp``...) are the coarse
  grouping the :class:`~repro.sim.trace.TraceLog` filters on — every
  probe belongs to exactly one category, and every category any component
  passes to ``TraceLog.record`` must be declared here.

``tests/obs/test_registry_sync.py`` statically scans ``src/`` and fails if
any emitted probe or category is missing from this module, and
``docs/observability.md`` renders this table for humans; keep all three in
sync (the test checks that too).

Naming conventions
------------------

* probe names are ``<category>.<event>``, lower-case; the event part uses
  ``_`` for multi-word events fired directly (``tcp.segment_tx``) and
  ``-`` for events mirrored from the ST-TCP engine event log, whose kinds
  are historically dash-separated (``sttcp.takeover``,
  ``sttcp.non-ft-mode``);
* counters derived from probes are named ``<category>.<noun>_total``;
  gauges ``<area>.<quantity>_<unit>``; histograms ``<area>.<quantity>``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProbeSpec", "PROBES", "CATEGORIES", "UnknownProbeError",
           "probes_in_category"]


class UnknownProbeError(KeyError):
    """Raised when a component fires a probe that is not registered."""


@dataclass(frozen=True)
class ProbeSpec:
    """One stable probe point.

    ``traced=True`` means a fire is mirrored into the ``TraceLog`` (subject
    to its category filter) — these are the pre-existing trace records.
    ``traced=False`` marks pure instrumentation taps (high-volume packet /
    counter probes) that only reach bus subscribers, so enabling full
    tracing does not change trace output.
    """

    name: str
    category: str
    description: str
    emitted_by: str
    traced: bool = True


#: Trace-category registry (formerly the "informal registry" in the
#: ``repro.sim.trace`` docstring).  Every category used anywhere in
#: ``src/`` must appear here.
CATEGORIES: dict[str, str] = {
    "sim": "simulation kernel (run markers)",
    "eth": "switch / NIC / cable frame events",
    "arp": "ARP requests/replies and static entries",
    "ip": "IP forwarding and errors",
    "icmp": "echo requests/replies",
    "tcp": "segment send/receive, state transitions, retransmits",
    "hb": "ST-TCP heartbeat send/receive/miss",
    "sttcp": "ST-TCP engine decisions (suppression, takeover...)",
    "detect": "failure-detector verdicts and watchdog suspicions",
    "fault": "fault injector actions and failure symptoms",
    "app": "application-level milestones",
    "power": "power-control (STONITH) actions",
}


def _spec(name: str, description: str, emitted_by: str,
          traced: bool = True, category: str = "") -> ProbeSpec:
    category = category or name.split(".", 1)[0]
    return ProbeSpec(name, category, description, emitted_by, traced)


_ALL_PROBES = [
    # ------------------------------------------------------------- kernel
    _spec("sim.run", "one Simulator.run episode finished",
          "repro.sim.world.World.run", traced=False),
    # ----------------------------------------------------------- ethernet
    _spec("eth.frame", "a frame entered the switch fabric (pcap tap)",
          "repro.net.switch.Switch._forward", traced=False),
    _spec("eth.forward", "switch forwarded a unicast frame to a learned port",
          "repro.net.switch.Switch._forward"),
    _spec("eth.flood", "switch flooded a multicast/broadcast/unknown frame",
          "repro.net.switch.Switch._forward"),
    _spec("eth.frame_lost", "cable dropped a frame (injected loss)",
          "repro.net.cable.Cable"),
    _spec("nic.tx", "a NIC put a frame on its cable",
          "repro.net.nic.Nic.send", traced=False, category="eth"),
    _spec("nic.rx", "a NIC accepted an inbound frame",
          "repro.net.nic.Nic.receive_frame", traced=False, category="eth"),
    # ---------------------------------------------------------------- tcp
    _spec("tcp.segment_tx", "a connection emitted a segment "
          "(fields: off/ack/flags/len/cwnd/flight)",
          "repro.tcp.connection.TcpConnection._emit", traced=False),
    _spec("tcp.segment_rx", "a connection received a segment",
          "repro.tcp.connection.TcpConnection.segment_arrived", traced=False),
    _spec("tcp.retransmit", "a segment was retransmitted "
          "(kind: rto/fast/head/fin)",
          "repro.tcp.connection.TcpConnection", traced=False),
    _spec("tcp.deliver", "in-order bytes became readable "
          "(fields: off/len — the exactly-once delivery tap)",
          "repro.tcp.connection.TcpConnection", traced=False),
    _spec("tcp.accept", "a listener accepted a new connection",
          "repro.tcp.stack.TcpStack._accept", traced=False),
    _spec("tcp.rst", "an RST was emitted for a segment matching no endpoint",
          "repro.tcp.stack.TcpStack._send_rst_for"),
    # ------------------------------------------------------------- ST-TCP
    _spec("hb.send", "a heartbeat was transmitted (UDP and/or serial)",
          "repro.sttcp.heartbeat.HeartbeatService._tick"),
    _spec("hb.recv", "a heartbeat arrived on one link",
          "repro.sttcp.heartbeat.HeartbeatService._receive"),
    _spec("hb.state", "full heartbeat payload tap (fields: hb — the "
          "Heartbeat object with its per-connection progress counters)",
          "repro.sttcp.heartbeat.HeartbeatService._tick", traced=False),
    _spec("hb.miss", "a heartbeat link went stale (freshness transition)",
          "repro.sttcp.engine.SttcpEngine.check_links", traced=False),
    _spec("sttcp.suppress", "the backup generated-and-dropped one segment",
          "repro.sttcp.backup.BackupEngine._suppressor", traced=False),
    _spec("sttcp.retain", "the primary copied in-order client bytes into "
          "its retain buffer",
          "repro.sttcp.primary.PrimaryEngine._on_accepted", traced=False),
    _spec("detect.verdict", "a lag tracker's failure criterion fired",
          "repro.sttcp.detector.LagTracker.verdict", traced=False),
    _spec("detect.watchdog", "the application watchdog missed a deadline",
          "repro.apps.watchdog.ApplicationWatchdog"),
    # -------------------------------------------------------------- faults
    _spec("fault.inject", "the injector fired a scheduled fault",
          "repro.faults.injector.FaultInjector._fire"),
    _spec("fault.nic", "a NIC failure was injected or repaired",
          "repro.net.nic.Nic.fail/repair"),
]

# One probe per ST-TCP engine event kind (repro.sttcp.events.EventKind);
# SttcpEngine.emit fires ``sttcp.<kind>`` and mirrors it into the trace,
# so the engine event vocabulary and the probe registry cannot drift
# (tests/obs/test_registry_sync.py asserts the mapping is exhaustive).
_ENGINE_EVENT_PROBES = {
    "hb-ip-link-down": "the IP heartbeat link was declared stale",
    "hb-serial-link-down": "the serial heartbeat link was declared stale",
    "hb-link-recovered": "a stale heartbeat link became fresh again",
    "peer-crash-detected": "both HB links silent: peer machine crashed "
                           "(Table 1 row 1)",
    "app-failure-detected": "application lag criteria met (Table 1 rows 2-3)",
    "nic-failure-detected": "NIC failure attributed to the peer "
                            "(Table 1 row 4)",
    "takeover": "the backup took the connections over",
    "non-ft-mode": "the primary carries on alone (backup declared failed)",
    "stonith": "the peer was powered down out-of-band",
    "conn-replicated": "a new service connection was announced to the backup",
    "fin-held": "a locally generated FIN/RST is being delayed (Sec. 4.2.2)",
    "fin-released": "a held FIN/RST was let out to the client",
    "fin-suppressed": "the backup suppressed a replica FIN",
    "fetch-requested": "the backup asked the primary for missed bytes",
    "fetch-recovered": "a missed-byte fetch completed",
    "unrecoverable": "a post-takeover gap could not be filled",
    "retain-overflow": "the primary's retain buffer filled up",
    "ping-probing": "gateway-ping disambiguation started (Sec. 4.3)",
}
for _kind, _desc in _ENGINE_EVENT_PROBES.items():
    _ALL_PROBES.append(_spec(f"sttcp.{_kind}", _desc,
                             "repro.sttcp.engine.SttcpEngine.emit"))

#: name -> spec; the authoritative probe-point table.
PROBES: dict[str, ProbeSpec] = {spec.name: spec for spec in _ALL_PROBES}

if len(PROBES) != len(_ALL_PROBES):  # pragma: no cover - registry bug guard
    raise AssertionError("duplicate probe name in registry")
for _probe_spec in PROBES.values():  # registry self-consistency
    if _probe_spec.category not in CATEGORIES:  # pragma: no cover
        raise AssertionError(
            f"probe {_probe_spec.name} has unregistered category "
            f"{_probe_spec.category}")


def probes_in_category(category: str) -> list[ProbeSpec]:
    """All registered probes of one trace category, in table order."""
    return [spec for spec in PROBES.values() if spec.category == category]
