"""The probe bus — components fire named probe points, observers attach.

The bus is layered on the :class:`~repro.sim.trace.TraceLog`: a fire of a
``traced`` probe produces exactly the trace record the component used to
emit directly (same category, source, message and fields), so existing
trace-based tests see identical output.  Non-traced probes (the
high-volume packet taps) reach only bus subscribers.

The design goal is zero overhead when nobody is listening: with no
subscriber for a probe and no wildcard subscriber, :meth:`ProbeBus.fire`
builds no event object — the only cost is two dict lookups (and, for
traced probes, the ``TraceLog.record`` call that was already there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.registry import PROBES, ProbeSpec, UnknownProbeError

__all__ = ["ProbeEvent", "ProbeBus"]


@dataclass(frozen=True)
class ProbeEvent:
    """One probe firing, as delivered to subscribers."""

    time: int                    # virtual time, ns
    probe: str                   # registered probe name, e.g. "tcp.retransmit"
    category: str                # the probe's trace category
    source: str                  # component name, e.g. "primary.tcp"
    message: str                 # human-readable summary
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Event time in (float) seconds."""
        return self.time / 1_000_000_000


Subscriber = Callable[[ProbeEvent], None]


class ProbeBus:
    """Named probe points with per-probe and wildcard subscribers."""

    def __init__(self, clock: Callable[[], int], trace=None):
        self._clock = clock
        self._trace = trace
        self._subs: dict[str, list[Subscriber]] = {}
        self._all: list[Subscriber] = []
        self.fired = 0  # probes that actually built an event for a subscriber

    # ---------------------------------------------------------- subscribing

    def subscribe(self, probe: str, callback: Subscriber) -> Subscriber:
        """Attach ``callback`` to one probe point; returns the callback."""
        self._spec(probe)  # validate the name early
        self._subs.setdefault(probe, []).append(callback)
        return callback

    def subscribe_all(self, callback: Subscriber) -> Subscriber:
        """Attach ``callback`` to every probe point."""
        self._all.append(callback)
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        """Detach a callback wherever it is attached (idempotent)."""
        for subs in self._subs.values():
            while callback in subs:
                subs.remove(callback)
        while callback in self._all:
            self._all.remove(callback)

    def enabled(self, probe: str) -> bool:
        """True when a fire of ``probe`` would reach at least one
        subscriber — hot paths may use this to skip building expensive
        field values."""
        return bool(self._subs.get(probe)) or bool(self._all)

    # --------------------------------------------------------------- firing

    def fire(self, probe: str, source: str, message: Optional[str] = None,
             **fields: Any) -> None:
        """Fire one probe point.

        ``message`` defaults to the probe's event name (the part after the
        category).  Unregistered probe names raise
        :class:`~repro.obs.registry.UnknownProbeError` — the registry is
        the single source of truth, so drift fails fast.
        """
        spec = self._spec(probe)
        subs = self._subs.get(probe)
        if subs or self._all:
            self.fired += 1
            event = ProbeEvent(self._clock(), probe, spec.category, source,
                               message if message is not None
                               else probe.split(".", 1)[1], fields)
            for callback in subs or ():
                callback(event)
            for callback in self._all:
                callback(event)
        if spec.traced and self._trace is not None:
            self._trace.record(spec.category, source,
                               message if message is not None
                               else probe.split(".", 1)[1], **fields)

    # ----------------------------------------------------------------- misc

    @staticmethod
    def _spec(probe: str) -> ProbeSpec:
        spec = PROBES.get(probe)
        if spec is None:
            raise UnknownProbeError(
                f"probe {probe!r} is not in the registry "
                f"(repro.obs.registry.PROBES; see docs/observability.md)")
        return spec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_subs = sum(len(s) for s in self._subs.values())
        return f"<ProbeBus subs={n_subs} wildcard={len(self._all)}>"
