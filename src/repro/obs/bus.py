"""The probe bus — components fire named probe points, observers attach.

The bus is layered on the :class:`~repro.sim.trace.TraceLog`: a fire of a
``traced`` probe produces exactly the trace record the component used to
emit directly (same category, source, message and fields), so existing
trace-based tests see identical output.  Non-traced probes (the
high-volume packet taps) reach only bus subscribers.

The design goal is zero overhead when nobody is listening.  Hot emitters
ask :meth:`ProbeBus.wants` first — a single cached dict lookup — and skip
building their field values entirely when a fire would reach no
subscriber, no wildcard, and (for traced probes) no enabled trace
category.  The cache is invalidated on every subscription change and
whenever the trace log's category filter changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.registry import PROBES, ProbeSpec, UnknownProbeError

__all__ = ["ProbeEvent", "ProbeBus"]


@dataclass(frozen=True)
class ProbeEvent:
    """One probe firing, as delivered to subscribers."""

    time: int                    # virtual time, ns
    probe: str                   # registered probe name, e.g. "tcp.retransmit"
    category: str                # the probe's trace category
    source: str                  # component name, e.g. "primary.tcp"
    message: str                 # human-readable summary
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Event time in (float) seconds."""
        return self.time / 1_000_000_000


Subscriber = Callable[[ProbeEvent], None]

# (spec, default message) per probe name, shared by every bus instance —
# the registry is immutable, so this is computed once at import.
_PROBE_INFO: dict[str, tuple[ProbeSpec, str]] = {
    name: (spec, name.split(".", 1)[1] if "." in name else name)
    for name, spec in PROBES.items()}


class ProbeBus:
    """Named probe points with per-probe and wildcard subscribers."""

    __slots__ = ("_clock", "_trace", "_subs", "_all", "wants_map", "fired")

    def __init__(self, clock: Callable[[], int], trace=None):
        self._clock = clock
        self._trace = trace
        self._subs: dict[str, list[Subscriber]] = {}
        self._all: list[Subscriber] = []
        # probe -> "would a fire do any work", eagerly recomputed for every
        # registered probe on any subscription or trace-filter change.
        # Hot emitters index this dict directly (``probes.wants_map[...]``)
        # — subscription changes are rare, per-frame fires are not.
        self.wants_map: dict[str, bool] = {}
        self.fired = 0  # probes that actually built an event for a subscriber
        self._invalidate()
        if trace is not None:
            trace.on_filter_change(self._invalidate)

    # ---------------------------------------------------------- subscribing

    def subscribe(self, probe: str, callback: Subscriber) -> Subscriber:
        """Attach ``callback`` to one probe point; returns the callback."""
        self._spec(probe)  # validate the name early
        self._subs.setdefault(probe, []).append(callback)
        self._invalidate()
        return callback

    def subscribe_all(self, callback: Subscriber) -> Subscriber:
        """Attach ``callback`` to every probe point."""
        self._all.append(callback)
        self._invalidate()
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        """Detach a callback wherever it is attached (idempotent)."""
        for subs in self._subs.values():
            while callback in subs:
                subs.remove(callback)
        while callback in self._all:
            self._all.remove(callback)
        self._invalidate()

    def enabled(self, probe: str) -> bool:
        """True when a fire of ``probe`` would reach at least one
        subscriber — hot paths may use this to skip building expensive
        field values."""
        return bool(self._subs.get(probe)) or bool(self._all)

    def wants(self, probe: str) -> bool:
        """True when a fire of ``probe`` would do *any* work — reach a
        subscriber, a wildcard, or (for traced probes) an enabled trace
        category.  One dict lookup: hot emitters guard with this (or index
        :attr:`wants_map` directly) and skip building field values."""
        try:
            return self.wants_map[probe]
        except KeyError:
            self._spec(probe)  # raises UnknownProbeError with the hint
            raise

    def _invalidate(self) -> None:
        """Recompute the whole wants map (subscription/filter change)."""
        subs = self._subs
        any_all = bool(self._all)
        trace = self._trace
        m = self.wants_map
        for name, (spec, _msg) in _PROBE_INFO.items():
            value = bool(subs.get(name)) or any_all
            if not value and spec.traced and trace is not None:
                value = trace.wants(spec.category)
            m[name] = value

    # --------------------------------------------------------------- firing

    def fire(self, probe: str, source: str, message: Optional[str] = None,
             **fields: Any) -> None:
        """Fire one probe point.

        ``message`` defaults to the probe's event name (the part after the
        category).  Unregistered probe names raise
        :class:`~repro.obs.registry.UnknownProbeError` — the registry is
        the single source of truth, so drift fails fast.
        """
        info = _PROBE_INFO.get(probe)
        if info is None:
            self._spec(probe)  # raises UnknownProbeError with the hint
            raise AssertionError("unreachable")  # pragma: no cover
        spec, default_message = info
        subs = self._subs.get(probe)
        if subs or self._all:
            self.fired += 1
            event = ProbeEvent(self._clock(), probe, spec.category, source,
                               message if message is not None
                               else default_message, fields)
            for callback in subs or ():
                callback(event)
            for callback in self._all:
                callback(event)
        if spec.traced and self._trace is not None:
            self._trace.record(spec.category, source,
                               message if message is not None
                               else default_message, **fields)

    # ----------------------------------------------------------------- misc

    @staticmethod
    def _spec(probe: str) -> ProbeSpec:
        spec = PROBES.get(probe)
        if spec is None:
            raise UnknownProbeError(
                f"probe {probe!r} is not in the registry "
                f"(repro.obs.registry.PROBES; see docs/observability.md)")
        return spec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_subs = sum(len(s) for s in self._subs.values())
        return f"<ProbeBus subs={n_subs} wildcard={len(self._all)}>"
