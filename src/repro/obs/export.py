"""Observation sessions and exporters.

:class:`ObsSession` attaches to a :class:`~repro.sim.world.World`'s probe
bus and accumulates three artifacts:

* a **counter/gauge/histogram snapshot** (always),
* a **per-connection TCP timeline** — seq/ack/cwnd over virtual time,
  one JSONL row per transmitted or retransmitted segment
  (``level="timeline"`` and up),
* a **pcap-style frame export** — one JSONL row per frame crossing the
  switch, with decoded IP/TCP/UDP/ICMP/ARP summaries
  (``level="frames"``).

Every export is deterministic: rows carry only virtual time and
seed-derived values, JSON keys are sorted, and row order is fire order —
so two runs with the same seed produce byte-identical files (the
determinism guard in ``tests/obs/test_export_determinism.py`` relies on
this).  Formats are documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.net.frame import EthernetFrame
from repro.net.packet import IPPacket
from repro.obs.bus import ProbeEvent
from repro.obs.metrics import (MetricsRegistry, format_snapshot_json,
                               format_snapshot_text)
from repro.tcp.segment import TcpFlags, TcpSegment

__all__ = ["ObsSession", "OBS_LEVELS", "describe_frame", "jsonl_line"]

#: Cumulative observation levels, cheapest first.
OBS_LEVELS = ("counters", "timeline", "frames")

#: Probes worth echoing into the scenario summary's event list.
_SUMMARY_PROBES = frozenset(
    ["fault.inject", "fault.nic", "detect.verdict", "detect.watchdog",
     "hb.miss"]
    + [f"sttcp.{kind}" for kind in
       ("peer-crash-detected", "app-failure-detected",
        "nic-failure-detected", "takeover", "non-ft-mode", "stonith",
        "fin-held", "fin-released", "retain-overflow", "unrecoverable",
        "ping-probing")])


def jsonl_line(row: dict) -> str:
    """One canonical JSONL row: sorted keys, compact, newline-terminated."""
    return json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"


def describe_frame(frame: EthernetFrame) -> dict:
    """Decode a frame into a JSON-ready dict (the pcap-row body)."""
    row: dict[str, Any] = {"src": str(frame.src), "dst": str(frame.dst),
                           "type": frame.ethertype,
                           "bytes": frame.size_bytes}
    payload = frame.payload
    if isinstance(payload, IPPacket):
        row["ip"] = {"src": str(payload.src), "dst": str(payload.dst),
                     "proto": payload.protocol, "ttl": payload.ttl}
        inner = payload.payload
        if isinstance(inner, TcpSegment):
            row["tcp"] = {"sport": inner.src_port, "dport": inner.dst_port,
                          "seq": inner.seq, "ack": inner.ack,
                          "flags": TcpFlags.describe(inner.flags),
                          "win": inner.window, "len": len(inner.payload)}
        elif payload.protocol == "udp":
            row["udp"] = {"sport": getattr(inner, "src_port", None),
                          "dport": getattr(inner, "dst_port", None),
                          "payload": type(getattr(inner, "payload",
                                                  None)).__name__,
                          "len": getattr(inner, "size_bytes", 0)}
        elif payload.protocol == "icmp":
            row["icmp"] = {"kind": type(inner).__name__,
                           "len": getattr(inner, "size_bytes", 0)}
    else:  # ARP and friends: duck-typed summary
        row["arp"] = {"op": getattr(payload, "op", type(payload).__name__),
                      "target": str(getattr(payload, "target_ip", ""))}
    return row


class ObsSession:
    """One scenario's worth of observation, attached to a world's bus.

    Levels are cumulative: ``counters`` < ``timeline`` < ``frames``.  The
    session subscribes a single wildcard callback, so detaching it
    (:meth:`detach`) restores the zero-overhead idle path.
    """

    def __init__(self, world, level: str = "frames"):
        if level not in OBS_LEVELS:
            raise ValueError(f"obs level {level!r} not in {OBS_LEVELS}")
        self.world = world
        self.level = level
        self.metrics = MetricsRegistry()
        self.frames: list[dict] = []
        self.tcp_rows: list[dict] = []
        self.events: list[dict] = []
        self._last_hb_rx: Optional[int] = None
        self._sub = world.probes.subscribe_all(self._on_probe)

    def detach(self) -> None:
        """Stop observing (the collected data stays queryable)."""
        self.world.probes.unsubscribe(self._sub)

    # -------------------------------------------------------- accumulation

    def _on_probe(self, event: ProbeEvent) -> None:
        self.metrics.counter(event.probe).inc()
        probe = event.probe
        fields = event.fields
        if probe == "eth.frame":
            frame = fields["frame"]
            self.metrics.counter("eth.frames_total").inc()
            self.metrics.counter("eth.bytes_total").inc(frame.size_bytes)
            if self.level == "frames":
                row = describe_frame(frame)
                row["t"] = event.time
                row["ingress"] = fields.get("ingress")
                self.frames.append(row)
        elif probe == "tcp.segment_tx":
            self.metrics.counter("tcp.segments_sent_total").inc()
            self.metrics.counter("tcp.bytes_sent_total").inc(
                fields.get("len", 0))
            if "cwnd" in fields:
                self.metrics.histogram("tcp.cwnd_bytes").observe(
                    fields["cwnd"])
            if self.level != "counters":
                self.tcp_rows.append(self._tcp_row(event, "tx"))
        elif probe == "tcp.retransmit":
            self.metrics.counter("tcp.retransmissions_total").inc()
            if self.level != "counters":
                self.tcp_rows.append(self._tcp_row(event, "rtx"))
        elif probe == "tcp.segment_rx":
            self.metrics.counter("tcp.segments_received_total").inc()
        elif probe == "hb.send":
            self.metrics.counter("hb.sent_total").inc()
        elif probe == "hb.recv":
            self.metrics.counter("hb.received_total").inc()
            now = event.time
            if self._last_hb_rx is not None:
                self.metrics.histogram("hb.interarrival_ns").observe(
                    now - self._last_hb_rx)
            self._last_hb_rx = now
        elif probe == "sttcp.suppress":
            self.metrics.counter("sttcp.suppressed_segments_total").inc()
        elif probe == "sttcp.retain":
            self.metrics.counter("sttcp.retained_bytes_total").inc(
                fields.get("len", 0))
        elif probe == "sttcp.takeover":
            self.metrics.gauge("sttcp.takeover_at_ns").set(event.time)
        if probe in _SUMMARY_PROBES:
            self.events.append({
                "t": event.time, "probe": probe, "source": event.source,
                "message": event.message,
                "fields": {k: _jsonable(v) for k, v in fields.items()}})

    @staticmethod
    def _tcp_row(event: ProbeEvent, kind: str) -> dict:
        row = {"t": event.time, "conn": event.source, "ev": kind}
        row.update({k: _jsonable(v) for k, v in event.fields.items()})
        return row

    # ----------------------------------------------------------- finishing

    def finalize(self, timeline=None, extra: Optional[dict] = None) -> None:
        """Fold end-of-run results in: the failover timeline's latencies
        become gauges (``sttcp.failover_latency_ns`` is the paper's
        headline number) and the kernel totals are stamped."""
        sim = self.world.sim
        self.metrics.gauge("sim.virtual_time_ns").set(sim.now)
        self.metrics.gauge("sim.events_processed_total").set(
            sim.events_processed)
        if timeline is not None:
            gauges = {
                "sttcp.fault_at_ns": timeline.fault_at,
                "sttcp.detected_at_ns": timeline.detected_at,
                "sttcp.detection_latency_ns": timeline.detection_latency_ns,
                "sttcp.failover_latency_ns": timeline.failover_time_ns,
                "sttcp.backoff_residue_ns": timeline.backoff_residue_ns,
            }
            for name, value in gauges.items():
                if value is not None:
                    self.metrics.gauge(name).set(value)
        if extra:
            for name, value in extra.items():
                self.metrics.gauge(name).set(value)

    def summary(self) -> dict:
        """The scenario-level summary: snapshot + notable events."""
        return {"level": self.level,
                "snapshot": self.metrics.snapshot(),
                "events": self.events}

    @staticmethod
    def gc_report() -> dict:
        """Interpreter-GC and recycle-pool counters
        (:func:`repro.sim.gcctl.stats`).  Process-local wall-clock-ish
        state — **never** part of the exported artifacts, which must stay
        byte-identical across runs; callers that want the churn picture
        (the allocation benchmark, capacity dashboards) fetch it
        explicitly."""
        from repro.sim import gcctl
        return gcctl.stats()

    # -------------------------------------------------------------- export

    def write(self, out_dir: str) -> dict[str, str]:
        """Write every artifact the level calls for; returns name->path.

        Always: ``counters.json`` and ``summary.txt``.  ``timeline`` adds
        ``tcp_timeline.jsonl``; ``frames`` adds ``frames.jsonl``.
        """
        os.makedirs(out_dir, exist_ok=True)
        paths: dict[str, str] = {}

        def _write(name: str, content: str) -> None:
            path = os.path.join(out_dir, name)
            with open(path, "w", encoding="utf-8", newline="\n") as fh:
                fh.write(content)
            paths[name] = path

        snapshot = self.metrics.snapshot()
        _write("counters.json", format_snapshot_json(snapshot))
        _write("summary.txt", self._summary_text(snapshot))
        _write("summary.json", jsonl_line(self.summary()))
        if self.level in ("timeline", "frames"):
            _write("tcp_timeline.jsonl",
                   "".join(jsonl_line(row) for row in self.tcp_rows))
        if self.level == "frames":
            _write("frames.jsonl",
                   "".join(jsonl_line(row) for row in self.frames))
        return paths

    def _summary_text(self, snapshot: dict) -> str:
        lines = [f"observability summary (level={self.level})", ""]
        lines.append(format_snapshot_text(snapshot).rstrip("\n"))
        if self.events:
            lines.append("")
            lines.append("events:")
            for ev in self.events:
                detail = " ".join(f"{k}={v}" for k, v in ev["fields"].items())
                lines.append(f"  [{ev['t'] / 1e9:12.6f}s] {ev['probe']:28s} "
                             f"{ev['source']:24s} {ev['message']}"
                             + (f" | {detail}" if detail else ""))
        return "\n".join(lines) + "\n"


def _jsonable(value: Any) -> Any:
    """Coerce a probe field into something JSON-serializable, stably."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
