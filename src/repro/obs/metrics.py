"""Counters, gauges and histograms with deterministic snapshots.

A :class:`MetricsRegistry` is the numeric half of the observability layer:
probe subscribers (see :class:`~repro.obs.export.ObsSession`) fold probe
firings into it, and ``snapshot()`` renders everything as one sorted,
JSON-serializable dict — byte-identical across runs with the same seed,
because the only inputs are virtual time and deterministic event order.

Naming conventions (documented in ``docs/observability.md``):

* counters ``<category>.<noun>_total`` — monotonic event counts;
* gauges ``<area>.<quantity>_<unit>`` — last-written values;
* histograms ``<area>.<quantity>`` — count/sum/min/max plus powers-of-two
  bucket counts (``le_<bound>`` upper bounds, Prometheus-flavoured).
"""

from __future__ import annotations

import json
from typing import Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "format_snapshot_text", "format_snapshot_json"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        """Record the latest value."""
        self.value = value


class Histogram:
    """Streaming distribution summary with powers-of-two buckets.

    Stores no samples: count, sum, min, max and fixed log2 bucket counts,
    so memory stays flat over 100 MB transfers while percentile-ish shape
    survives into the snapshot.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    #: Bucket upper bounds: 1, 2, 4, ... 2**62, +inf (covers ns durations).
    BOUNDS = tuple(1 << i for i in range(0, 63, 2))

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: Number) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self._buckets[i] += 1
                return
        self._buckets[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all samples (None when empty)."""
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        """JSON-ready summary; only non-empty buckets are listed."""
        buckets = {}
        for i, bound in enumerate(self.BOUNDS):
            if self._buckets[i]:
                buckets[f"le_{bound}"] = self._buckets[i]
        if self._buckets[-1]:
            buckets["le_inf"] = self._buckets[-1]
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "buckets": buckets}


class MetricsRegistry:
    """All metrics of one observation session, by name."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------------- access

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the named histogram."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Deterministic dict of everything: keys sorted, values plain."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self._histograms.items())},
        }


def format_snapshot_json(snapshot: dict) -> str:
    """Canonical JSON rendering (sorted keys, compact separators)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def format_snapshot_text(snapshot: dict) -> str:
    """Aligned plain-text rendering for terminals and summary files."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    width = max((len(n) for group in (counters, gauges, histograms)
                 for n in group), default=0)
    if counters:
        lines.append("counters:")
        lines.extend(f"  {name.ljust(width)} {value}"
                     for name, value in counters.items())
    if gauges:
        lines.append("gauges:")
        lines.extend(f"  {name.ljust(width)} {value}"
                     for name, value in gauges.items())
    if histograms:
        lines.append("histograms:")
        for name, h in histograms.items():
            mean = f"{h['mean']:.1f}" if h["mean"] is not None else "-"
            lines.append(f"  {name.ljust(width)} count={h['count']} "
                         f"min={h['min']} mean={mean} max={h['max']}")
    return "\n".join(lines) + "\n"
