"""Application-facing socket objects.

A :class:`Socket` wraps one :class:`~repro.tcp.connection.TcpConnection`
with callback-style I/O.  The ST-TCP engine inserts itself at exactly one
point here: :attr:`Socket.close_interceptor`, which lets the primary delay
an application- or OS-generated FIN per the MaxDelayFIN rules of paper
Sec. 4.2.2 without the application being aware.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tcp.connection import TcpConnection
from repro.tcp.states import TcpState

__all__ = ["Socket", "Listener"]


class Socket:
    """One endpoint of a TCP connection, as seen by an application.

    All callbacks receive the socket itself, so one application object can
    serve many sockets.
    """

    def __init__(self, conn: TcpConnection,
                 on_cleanup: Optional[Callable[["Socket"], None]] = None):
        self._conn = conn
        self._on_cleanup = on_cleanup
        # Application callbacks (assign directly).
        self.on_connected: Callable[[Socket], None] = lambda sock: None
        self.on_data: Callable[[Socket], None] = lambda sock: None
        self.on_peer_closed: Callable[[Socket], None] = lambda sock: None
        self.on_closed: Callable[[Socket], None] = lambda sock: None
        self.on_reset: Callable[[Socket, str], None] = lambda sock, reason: None
        self.on_writable: Callable[[Socket], None] = lambda sock: None
        # ST-TCP hook: returns True when it consumed the close request.
        self.close_interceptor: Optional[Callable[[Socket], bool]] = None
        self.abort_interceptor: Optional[Callable[[Socket], bool]] = None

        conn.on_established = lambda: self.on_connected(self)
        conn.on_data_available = lambda: self.on_data(self)
        conn.on_peer_fin = lambda: self.on_peer_closed(self)
        conn.on_closed = self._handle_closed
        conn.on_reset = lambda reason: self.on_reset(self, reason)
        conn.on_writable = lambda: self.on_writable(self)

    # ------------------------------------------------------------- queries

    @property
    def connection(self) -> TcpConnection:
        """The underlying connection (ST-TCP and tests reach through)."""
        return self._conn

    @property
    def state(self) -> TcpState:
        """Current TCP state of the underlying connection."""
        return self._conn.state

    @property
    def is_open(self) -> bool:
        """True until the connection fully closes."""
        return self._conn.state not in (TcpState.CLOSED, TcpState.TIME_WAIT)

    @property
    def readable_bytes(self) -> int:
        """In-order bytes available to read now."""
        return self._conn.readable_bytes

    @property
    def writable_bytes(self) -> int:
        """Send-buffer space available now."""
        return self._conn.writable_bytes

    @property
    def local_address(self) -> tuple:
        """(local_ip, local_port)."""
        return (self._conn.local_ip, self._conn.local_port)

    @property
    def remote_address(self) -> tuple:
        """(remote_ip, remote_port)."""
        return (self._conn.remote_ip, self._conn.remote_port)

    # ----------------------------------------------------------------- I/O

    def send(self, data: bytes) -> int:
        """Queue bytes for transmission; returns how many were accepted."""
        return self._conn.write(data)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Consume received in-order bytes (may return ``b""``)."""
        return self._conn.read(max_bytes)

    def close(self) -> None:
        """Graceful close (FIN).  The ST-TCP primary may delay the FIN."""
        if self.close_interceptor is not None and self.close_interceptor(self):
            return
        self._conn.close()

    def abort(self) -> None:
        """Hard close (RST).  The ST-TCP primary may delay the RST."""
        if self.abort_interceptor is not None and self.abort_interceptor(self):
            return
        self._conn.abort()

    def _handle_closed(self) -> None:
        if self._on_cleanup is not None:
            self._on_cleanup(self)
        self.on_closed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Socket {self._conn.name} {self.state.value}>"


class Listener:
    """A passive open on (ip, port); accepted sockets flow to ``on_accept``."""

    def __init__(self, stack, ip, port: int,
                 on_accept: Callable[[Socket], None], config=None):
        self._stack = stack
        self.ip = ip                    # None = any local address
        self.port = port
        self.on_accept = on_accept
        self.config = config
        self.accepted_count = 0

    def close(self) -> None:
        """Unbind this listener from its port."""
        self._stack._remove_listener(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Listener {self.ip}:{self.port}>"
