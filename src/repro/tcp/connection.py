"""The TCP connection state machine.

This is a faithful (though simplified) user-space TCP: 3-way handshake,
cumulative acks, flow control, Reno congestion control, RTO with
exponential backoff, fast retransmit, persist probes, FIN/RST teardown and
TIME_WAIT.  It is the substrate every ST-TCP mechanism acts on.

ST-TCP integration points (used by :mod:`repro.sttcp`):

* :attr:`TcpConnection.transmit` is a replaceable output hook — the backup
  engine swaps in a suppressor so the replica's segments are generated,
  counted, and *dropped* (paper Sec. 2).
* :meth:`open_passive` accepts an ISN override so the backup's replica
  connection uses the primary's ISN (paper Sec. 2).
* Progress counters :attr:`last_byte_received`, :attr:`last_ack_received`,
  :attr:`last_app_byte_written`, :attr:`last_app_byte_read` are exactly
  the four quantities the ST-TCP heartbeat carries (paper Sec. 3).
* :attr:`inorder_tap` lets the primary copy in-order client bytes into its
  retain buffer; :meth:`inject_stream_bytes` lets the backup insert bytes
  fetched from the primary (Table 1 row 5).
* ``stt_tolerate_future_acks`` lets the backup accept client acks for
  bytes its (slightly lagging) replica application has not produced yet.

Internally all data positions are *stream offsets* (plain ints, byte 0 =
first data byte); translation to 32-bit wire sequence numbers happens only
at segment build/parse time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConnectionClosedError
from repro.sim.core import millis, seconds
from repro.sim.timers import DeadlineTimer, Timer
from repro.sim.world import World
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import (CC_ALGORITHMS, DEFAULT_CC,
                                  make_congestion_control)
from repro.tcp.rtt import RttEstimator
from repro.tcp.segment import (SEGMENT_POOL, TcpFlags, TcpSegment,
                               release_segment)
from repro.tcp.seq import SEQ_MASK, SEQ_MOD, seq_add, seq_sub

SEQ_HALF = 1 << 31
from repro.tcp.states import TcpState

__all__ = ["TcpConfig", "TcpConnection"]


@dataclass
class TcpConfig:
    """Tunables for one TCP endpoint (Linux-flavoured defaults)."""

    mss: int = 1460
    send_buffer_bytes: int = 65536
    recv_buffer_bytes: int = 65536
    initial_rto_ns: int = seconds(1)
    min_rto_ns: int = millis(200)
    max_rto_ns: int = seconds(60)
    max_retransmits: int = 15
    max_syn_retransmits: int = 6
    delayed_ack: bool = False
    delayed_ack_timeout_ns: int = millis(40)
    msl_ns: int = seconds(10)
    initial_window_segments: int = 10
    persist_min_ns: int = millis(500)
    persist_max_ns: int = seconds(60)
    cc: str = DEFAULT_CC

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.mss <= 0:
            raise ValueError(f"mss must be positive: {self.mss}")
        if self.send_buffer_bytes < self.mss or self.recv_buffer_bytes < self.mss:
            raise ValueError("buffers must hold at least one MSS")
        if self.cc not in CC_ALGORITHMS:
            raise ValueError(f"unknown congestion control {self.cc!r}; "
                             f"registered: {', '.join(sorted(CC_ALGORITHMS))}")


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(self, world: World, name: str,
                 local_ip, local_port: int, remote_ip, remote_port: int,
                 config: Optional[TcpConfig] = None,
                 transmit: Optional[Callable[[TcpSegment], None]] = None):
        self.world = world
        self.name = name
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.config = config or TcpConfig()
        self.config.validate()
        # Output hook; the ST-TCP backup replaces this with a suppressor.
        self.transmit: Callable[[TcpSegment], None] = transmit or (lambda seg: None)

        self.state = TcpState.CLOSED
        self.iss: Optional[int] = None
        self.irs: Optional[int] = None

        self.send_buffer = SendBuffer(self.config.send_buffer_bytes)
        self.recv_buffer = ReceiveBuffer(self.config.recv_buffer_bytes)
        self.snd_una_off = 0
        self.snd_nxt_off = 0
        self.peer_window = self.config.mss  # until first real window arrives

        self.fin_queued = False
        self.fin_off: Optional[int] = None
        self.fin_sent = False
        self.fin_acked = False
        self.peer_fin_off: Optional[int] = None
        self.peer_fin_consumed = False
        self.rst_sent = False

        self.cc = make_congestion_control(self.config.cc, self.config.mss,
                                          self.config.initial_window_segments,
                                          clock=world.sim)
        # Timeline rows carry the algorithm name only when it is not the
        # default — absence means "reno", which keeps the committed golden
        # traces byte-identical for default runs.
        self._cc_extra = ({} if self.cc.name == DEFAULT_CC
                          else {"cc": self.cc.name})
        self.rtt = RttEstimator(self.config.initial_rto_ns,
                                self.config.min_rto_ns, self.config.max_rto_ns)
        # The RTO timer is restarted on every new ack; DeadlineTimer makes
        # that restart a field write instead of a cancel + schedule pair
        # (see repro.sim.timers — the firing instant is unchanged).
        self._rtx_timer = DeadlineTimer(world.sim, self._on_rtx_timeout,
                                        label=f"{name}.rtx")
        self._persist_timer = Timer(world.sim, self._on_persist_timeout,
                                    label=f"{name}.persist")
        self._delack_timer = Timer(world.sim, self._send_pure_ack,
                                   label=f"{name}.delack")
        self._timewait_timer = Timer(world.sim, self._on_timewait_expired,
                                     label=f"{name}.timewait")
        self._persist_interval = self.config.persist_min_ns
        self._last_sent_window = self.config.recv_buffer_bytes
        self._rtx_count = 0
        self._syn_rtx_count = 0
        # RTT timing (Karn's rule: invalidated on any retransmission).
        self._timed_end: Optional[int] = None
        self._timed_at = 0
        self._syn_sent_at = 0

        # --- application callbacks (installed by the socket layer) ---
        self.on_established: Callable[[], None] = lambda: None
        self.on_data_available: Callable[[], None] = lambda: None
        self.on_peer_fin: Callable[[], None] = lambda: None
        self.on_closed: Callable[[], None] = lambda: None
        self.on_reset: Callable[[str], None] = lambda reason: None
        self.on_writable: Callable[[], None] = lambda: None

        # --- per-tick segment batching (fed by TcpStack._on_packet) ---
        # Segments that arrived at the current instant and wait for the
        # tick-end flush; see segment_batch_arrived.
        self._rx_pending: list[TcpSegment] = []
        self._in_batch = False
        self._batch_ack_pending = False
        self._batch_writable = False

        # --- ST-TCP hooks ---
        self.inorder_tap: Optional[Callable[[int, bytes], None]] = None
        self.stt_tolerate_future_acks = False
        self._future_ack_off = 0
        # Highest stream offset the peer has *attempted* to send us, even
        # if the data was trimmed at the window edge.  The ST-TCP backup
        # uses this to recognize an unfillable hole after takeover (data
        # beyond a gap wider than the receive window never enters the
        # buffer, so has_gap alone cannot see it).
        self.peer_data_high = 0

        # --- statistics ---
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0            # payload bytes, incl. retransmits
        self.retransmissions = 0
        self.dupacks_received = 0
        self.acks_sent = 0
        self.established_at: Optional[int] = None
        self.closed_at: Optional[int] = None

    # ------------------------------------------------------------ open/close

    def open_active(self, isn: int) -> None:
        """Client-side open: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise ConnectionClosedError(f"{self.name}: open on {self.state}")
        self.iss = isn & 0xFFFFFFFF
        self.state = TcpState.SYN_SENT
        self._syn_sent_at = self.world.sim.now
        self._trace("state", state="SYN_SENT")
        self._send_syn()

    def open_passive(self, isn: int) -> None:
        """Server-side open: wait for SYN from the (fixed) peer.

        ``isn`` is our ISN to use in the SYN-ACK; the ST-TCP backup passes
        the primary's ISN here to keep the replica byte-aligned.
        """
        if self.state is not TcpState.CLOSED:
            raise ConnectionClosedError(f"{self.name}: open on {self.state}")
        self.iss = isn & 0xFFFFFFFF
        self.state = TcpState.LISTEN
        self._trace("state", state="LISTEN")

    def close(self) -> None:
        """Graceful close: queue a FIN after all pending data."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT,
                          TcpState.LAST_ACK, TcpState.CLOSING,
                          TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
            return
        if self.state in (TcpState.LISTEN, TcpState.SYN_SENT):
            self._enter_closed("local close")
            return
        if self.fin_queued:
            return
        self.fin_queued = True
        self.fin_off = self.send_buffer.end_offset
        if self.state is TcpState.ESTABLISHED or self.state is TcpState.SYN_RCVD:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        self._trace("state", state=self.state.value, fin_off=self.fin_off)
        self._try_send()

    def abort(self) -> None:
        """Hard close: emit RST and drop all state."""
        if self.state.is_synchronized or self.state is TcpState.SYN_RCVD:
            self._emit(self._make_segment(
                flags=TcpFlags.RST | TcpFlags.ACK,
                seq=self._seq_of(self.snd_nxt_off)))
            self.rst_sent = True
        self._enter_closed("local abort")

    # --------------------------------------------------------------- app I/O

    def write(self, data: bytes) -> int:
        """Queue application bytes for transmission; returns count accepted.

        Writes during connection setup (SYN_SENT / SYN_RCVD) are queued
        and flushed once the handshake completes, like a real socket."""
        if self.fin_queued:
            raise ConnectionClosedError(f"{self.name}: write after close")
        writable = (self.state.can_send_data
                    or self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD,
                                      TcpState.LISTEN))
        if not writable:
            raise ConnectionClosedError(
                f"{self.name}: write in state {self.state}")
        accepted = self.send_buffer.write(data)
        if self.stt_tolerate_future_acks and self._future_ack_off > self.snd_una_off:
            self._apply_future_ack()
        self._try_send()
        return accepted

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Consume in-order received bytes (may be empty)."""
        data = self.recv_buffer.read(max_bytes)
        if data and self.state.is_synchronized:
            # Window-update ack, but only when the peer may be stalled: the
            # last window we advertised was under one MSS and reading has
            # reopened at least one MSS of space.
            if (self._last_sent_window < self.config.mss
                    and self.recv_buffer.window >= self.config.mss):
                self._send_pure_ack()
        return data

    @property
    def readable_bytes(self) -> int:
        """In-order bytes the application can read now."""
        return self.recv_buffer.readable

    @property
    def writable_bytes(self) -> int:
        """Send-buffer space available to the application."""
        return 0 if self.fin_queued else self.send_buffer.free_space

    # ------------------------------------------------- ST-TCP progress view

    @property
    def last_byte_received(self) -> int:
        """In-order bytes received from the peer (HB field A / item 1)."""
        return self.recv_buffer.rcv_next

    @property
    def last_ack_received(self) -> int:
        """Bytes of ours the peer has acked (HB item 2)."""
        return self.snd_una_off

    @property
    def last_app_byte_written(self) -> int:
        """Bytes the application wrote to the send buffer (HB item 3)."""
        return self.send_buffer.end_offset

    @property
    def last_app_byte_read(self) -> int:
        """Bytes the application read from the receive buffer (HB item 4)."""
        return self.recv_buffer.bytes_read

    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet acknowledged."""
        return self.snd_nxt_off - self.snd_una_off

    def inject_stream_bytes(self, offset: int, data: bytes) -> None:
        """ST-TCP: insert client bytes fetched from the primary, as if they
        had arrived on the wire (no ack is generated — the backup's output
        is suppressed anyway)."""
        before = self.recv_buffer.rcv_next
        newly = self.recv_buffer.receive(offset, data)
        if newly:
            probes = self.world.probes
            if probes.wants_map["tcp.deliver"]:
                probes.fire("tcp.deliver", self.name, off=before, len=newly)
            if self.inorder_tap is not None:
                self.inorder_tap(before, self.recv_buffer.peek_tail(newly))
        self._maybe_consume_peer_fin()
        if self.recv_buffer.readable:
            self.on_data_available()

    def kick_output(self) -> None:
        """Force an immediate retransmission + ack (used by the optional
        ``kick_on_takeover`` failover acceleration, an ablation knob —
        the paper's system waits for the next backed-off retransmission)."""
        if not self.state.is_synchronized:
            return
        self._send_pure_ack()
        if self.flight_size > 0 or (self.fin_sent and not self.fin_acked):
            self._retransmit_head()
            self._restart_rtx()

    # ---------------------------------------------------------- segment input

    def segment_arrived(self, segment: TcpSegment) -> None:
        """Demultiplexed entry point for one inbound segment."""
        self.segments_received += 1
        probes = self.world.probes
        if probes.wants_map["tcp.segment_rx"]:
            probes.fire("tcp.segment_rx", self.name,
                        len=len(segment.payload), flags=segment.flags)
        state = self.state
        flags = segment.flags
        if state is TcpState.CLOSED:
            return
        if flags & TcpFlags.RST:
            self._handle_rst(segment)
            return
        if state is TcpState.LISTEN:
            self._handle_listen(segment)
            return
        if state is TcpState.SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if flags & TcpFlags.SYN:
            # Retransmitted SYN on a SYN_RCVD connection: re-send SYN-ACK.
            if self.state is TcpState.SYN_RCVD:
                self._send_syn_ack()
            elif self.state.is_synchronized:
                # Challenge-ack a stray SYN (RFC 5961 flavour).  Covers the
                # lost-final-ACK handshake case: the peer retransmits its
                # SYN-ACK and our ack re-completes its handshake even if
                # we have no data to send.
                self._send_pure_ack()
            return
        if self.state is TcpState.TIME_WAIT:
            if flags & TcpFlags.FIN:
                self._send_pure_ack()
            return
        if flags & TcpFlags.ACK:
            self._process_ack(segment)
            if self.state is TcpState.CLOSED:
                return
        if segment.payload:
            self._process_payload(segment)
        if flags & TcpFlags.FIN:
            self._note_peer_fin(segment)
        self._maybe_consume_peer_fin()

    def _flush_rx_batch(self) -> None:
        """Tick-end flush of the segments queued by the stack's demux.

        The singleton case (every current workload: cable serialization
        spreads same-connection arrivals across distinct nanoseconds) is
        a straight ``segment_arrived`` call, so batching costs nothing
        when there is nothing to batch.
        """
        pending = self._rx_pending
        if len(pending) == 1:
            segment = pending[0]
            pending.clear()
            self.segment_arrived(segment)
            # Drop the demux queue's claim.  release_segment inlined
            # (keep in sync): the wire's claim cascaded away when the
            # frame recycled, so this is usually the final release.
            claims = segment._claims
            if claims == 1:
                segment._claims = 0
                segment.payload = b""
                if len(SEGMENT_POOL) < 256:  # == SEGMENT_POOL_MAX
                    SEGMENT_POOL.append(segment)
            elif claims:
                segment._claims = claims - 1
        elif pending:
            batch = pending[:]
            pending.clear()
            self.segment_batch_arrived(batch)
            for segment in batch:
                release_segment(segment)

    def segment_batch_arrived(self, batch: "list[TcpSegment]") -> None:
        """Process every same-instant segment for this connection in one
        coalesced pass.

        Cumulative protocol state (acks, cwnd, loss signals, reassembly)
        still advances segment by segment — loss detection must see each
        duplicate ack — but the output and application side runs once per
        batch instead of once per segment: one pure-ack emission covering
        everything received, one send-window pump (:meth:`_try_send`),
        one ``on_writable`` and one ``on_data_available`` callback, one
        observability flush.  For the single-segment case this is exactly
        :meth:`segment_arrived`.
        """
        if len(batch) == 1:
            self.segment_arrived(batch[0])
            return
        self._in_batch = True
        self._batch_ack_pending = False
        self._batch_writable = False
        try:
            for segment in batch:
                self.segment_arrived(segment)
        finally:
            self._in_batch = False
        if self._batch_writable:
            self._batch_writable = False
            self.on_writable()
        if self._batch_ack_pending:
            self._batch_ack_pending = False
            self._send_pure_ack()
        self._try_send()
        if self.recv_buffer.readable:
            self.on_data_available()

    # -------------------------------------------------------- handshake paths

    def _handle_listen(self, segment: TcpSegment) -> None:
        if not segment.syn or segment.ack_flag:
            return
        self.irs = segment.seq
        self.peer_window = segment.window
        self.state = TcpState.SYN_RCVD
        self._syn_sent_at = self.world.sim.now
        self._trace("state", state="SYN_RCVD", irs=self.irs)
        self._send_syn_ack()

    def _handle_syn_sent(self, segment: TcpSegment) -> None:
        if not segment.syn:
            return
        if segment.ack_flag:
            if seq_sub(segment.ack, seq_add(self.iss, 1)) != 0:
                # Bogus ack of our SYN: reset per RFC 793.
                self._emit(TcpSegment(self.local_port, self.remote_port,
                                      seq=segment.ack, ack=0,
                                      flags=TcpFlags.RST, window=0))
                return
            self.irs = segment.seq
            self.peer_window = segment.window
            self.snd_una_off = 0
            # RFC 6298: the SYN/SYN-ACK exchange provides the first RTT
            # sample (Karn: only if the SYN was not retransmitted).
            if self._syn_rtx_count == 0:
                self.rtt.on_sample(self.world.sim.now - self._syn_sent_at)
            self._establish()
            self._send_pure_ack()
        # (simultaneous open is not modelled)

    def _establish(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.established_at = self.world.sim.now
        self._rtx_count = 0
        self._syn_rtx_count = 0
        self._rtx_timer.stop()
        self._trace("state", state="ESTABLISHED")
        self.on_established()
        self._try_send()

    # ------------------------------------------------------------ ack handling

    def _process_ack(self, segment: TcpSegment) -> None:
        if self.state is TcpState.SYN_RCVD:
            if seq_sub(segment.ack, seq_add(self.iss, 1)) >= 0:
                self.peer_window = segment.window
                if self._syn_rtx_count == 0:
                    self.rtt.on_sample(self.world.sim.now - self._syn_sent_at)
                self._establish()
            else:
                return
        # seq_sub(segment.ack, seq_add(self.iss, 1)) inlined (keep in
        # sync): two helper calls per inbound ack are measurable.
        diff = (segment.ack - self.iss - 1) & SEQ_MASK
        ack_off = diff - SEQ_MOD if diff >= SEQ_HALF else diff
        if ack_off < 0:
            return  # old ack from before our ISN; ignore
        fin_ack_off = (self.fin_off + 1) if self.fin_off is not None else None
        ack_covers_fin = (fin_ack_off is not None and ack_off >= fin_ack_off
                          and self.fin_sent)
        data_ack_off = min(ack_off, self.fin_off) if self.fin_off is not None \
            else ack_off
        stream_end = self.send_buffer.end_offset
        if data_ack_off > stream_end:
            if self.stt_tolerate_future_acks:
                # Backup replica: the client acked bytes our (lagging) app
                # has not written yet.  Remember and apply on write.
                self._future_ack_off = max(self._future_ack_off, data_ack_off)
                data_ack_off = stream_end
            else:
                # Ack for data we never sent: protocol violation; ignore.
                return
        elif self.stt_tolerate_future_acks:
            self._future_ack_off = max(self._future_ack_off, data_ack_off)

        newly_acked = data_ack_off - self.snd_una_off
        if newly_acked > 0:
            self.send_buffer.ack_to(data_ack_off)
            self.snd_una_off = data_ack_off
            self.snd_nxt_off = max(self.snd_nxt_off, self.snd_una_off)
            self._rtx_count = 0
            # _sample_rtt guard inlined (keep in sync): the timed range
            # resolves at most once per flight, but the check runs per ack.
            timed_end = self._timed_end
            if timed_end is not None and data_ack_off >= timed_end:
                self.rtt.on_sample(self.world.sim._now - self._timed_at)
                self._timed_end = None
            partial_rtx = self.cc.on_new_ack(newly_acked, self.snd_una_off)
            # reset_backoff's no-backoff early-exit inlined (keep in
            # sync): the dirty flag is false on virtually every ack.
            rtt = self.rtt
            if rtt._backoff_dirty:
                rtt.reset_backoff()
            if self._all_acked():
                self._rtx_timer.stop()
            else:
                self._rtx_timer.start(rtt._rto)
            self.peer_window = segment.window
            if partial_rtx and not self._all_acked():
                # NewReno partial ack: the hole just past snd_una is
                # presumed lost; retransmit it without leaving recovery
                # (RFC 6582 Sec. 3.2) and re-arm the RTO from it.
                self._trace("partial-ack-retransmit", at=self.snd_una_off)
                self._retransmit_head()
                self._restart_rtx()
            if self._in_batch:
                self._batch_writable = True
            else:
                self.on_writable()
        else:
            prev_window = self.peer_window
            self.peer_window = segment.window
            # RFC 5681: a duplicate ack must also leave the advertised
            # window unchanged — an equal ack with a new window is a
            # window update, not evidence of loss.
            if (ack_off == self.snd_una_off and not segment.payload
                    and not segment.flags & (TcpFlags.SYN | TcpFlags.FIN)
                    and segment.window == prev_window
                    and self.flight_size > 0):
                self.dupacks_received += 1
                if self.cc.on_dupack(self.flight_size, self.snd_nxt_off):
                    self._trace("fast-retransmit", at=self.snd_una_off)
                    self._retransmit_head()
                    # RFC 6298 (S5.3 discipline): the retransmission opens
                    # a new loss-recovery epoch, so the RTO clock measures
                    # from it.  Without this restart the timer armed at
                    # the *last new ack* fires while the fast-retransmitted
                    # head is still in flight, spuriously collapsing cwnd.
                    self._restart_rtx()
        if ack_covers_fin and not self.fin_acked:
            self.fin_acked = True
            self._rtx_timer.stop()
            self._on_fin_acked()
        # The ack may have opened send-window room for queued data.
        self._try_send()

    def _all_acked(self) -> bool:
        if self.snd_una_off < self.snd_nxt_off:
            return False
        if self.fin_sent and not self.fin_acked:
            return False
        return True

    def _sample_rtt(self, ack_off: int) -> None:
        if self._timed_end is not None and ack_off >= self._timed_end:
            self.rtt.on_sample(self.world.sim.now - self._timed_at)
            self._timed_end = None

    def _apply_future_ack(self) -> None:
        """Backup replica: treat already-client-acked bytes as sent+acked."""
        target = min(self._future_ack_off, self.send_buffer.end_offset)
        if target > self.snd_una_off:
            self.send_buffer.ack_to(target)
            self.snd_una_off = target
            self.snd_nxt_off = max(self.snd_nxt_off, target)
            if self._all_acked():
                self._rtx_timer.stop()

    def _on_fin_acked(self) -> None:
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
            self._trace("state", state="FIN_WAIT_2")
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._enter_closed("closed cleanly")

    # ------------------------------------------------------------ data input

    def _process_payload(self, segment: TcpSegment) -> None:
        irs = self.irs
        if irs is None:
            return
        payload = segment.payload
        recv_buffer = self.recv_buffer
        off = seq_sub(segment.seq, (irs + 1) & SEQ_MASK)
        end = off + len(payload)
        if end > self.peer_data_high:
            self.peer_data_high = end
        if end <= recv_buffer.rcv_next:
            # Entirely old data: pure duplicate, re-ack it.
            self._send_pure_ack()
            return
        before = recv_buffer.rcv_next
        newly = recv_buffer.receive(off, payload)
        if newly:
            probes = self.world.probes
            if probes.wants_map["tcp.deliver"]:
                probes.fire("tcp.deliver", self.name, off=before, len=newly)
            if self.inorder_tap is not None:
                self.inorder_tap(before, recv_buffer.peek_tail(newly))
        if newly == 0 and off > recv_buffer.rcv_next:
            # Out of order: immediate duplicate ack (triggers peer's
            # fast retransmit).
            self._send_pure_ack()
        elif not self.config.delayed_ack:
            # _ack_received_data's immediate-ack arm inlined (keep in
            # sync): delayed acks are off by default and this runs once
            # per in-order data segment.
            self._send_pure_ack()
        else:
            self._ack_received_data()
        if self.recv_buffer.readable and not self._in_batch:
            self.on_data_available()

    def _ack_received_data(self) -> None:
        if self.config.delayed_ack:
            if not self._delack_timer.armed:
                self._delack_timer.start(self.config.delayed_ack_timeout_ns)
            else:
                # Second segment: ack immediately (RFC 1122 every-other).
                self._delack_timer.stop()
                self._send_pure_ack()
        else:
            self._send_pure_ack()

    def _note_peer_fin(self, segment: TcpSegment) -> None:
        if self.irs is None:
            return
        off = seq_sub(segment.seq, seq_add(self.irs, 1)) + len(segment.payload)
        if self.peer_fin_off is None:
            self.peer_fin_off = off
            self._trace("peer-fin", off=off)
            if not segment.payload and self.recv_buffer.rcv_next < off:
                # Bare FIN beyond missing data: ack what we have now so
                # the peer can fast-retransmit the gap (a bare FIN takes
                # no _process_payload path, so nothing else acks it).
                self._send_pure_ack()
        elif self.peer_fin_consumed or not segment.payload:
            # Retransmitted FIN: our ack was lost (consumed case), or a
            # bare FIN above a still-open gap took no payload path that
            # would ack it (RFC 1122 4.2.2.21: duplicates must be acked).
            # Flush any pending delack and re-ack immediately, or the
            # peer camps in LAST_ACK / FIN_WAIT_1 retransmitting its FIN
            # until the give-up limit resets the connection.  (A data-
            # bearing retransmitted FIN is already acked by the payload
            # path.)
            self._send_pure_ack()

    def _maybe_consume_peer_fin(self) -> None:
        if (self.peer_fin_off is None or self.peer_fin_consumed
                or self.recv_buffer.rcv_next < self.peer_fin_off):
            return
        self.peer_fin_consumed = True
        self._delack_timer.stop()
        self._send_pure_ack()
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT_1:
            if self.fin_acked:
                self._enter_time_wait()
                self.on_peer_fin()
                return
            # Our FIN not yet acked: simultaneous close.
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
            self.on_peer_fin()
            return
        self._trace("state", state=self.state.value)
        self.on_peer_fin()

    # -------------------------------------------------------------- RST paths

    def _handle_rst(self, segment: TcpSegment) -> None:
        if self.state is TcpState.SYN_SENT:
            if not segment.ack_flag or seq_sub(segment.ack,
                                               seq_add(self.iss, 1)) != 0:
                return
        elif self.state.is_synchronized and self.irs is not None:
            off = seq_sub(segment.seq, seq_add(self.irs, 1))
            window = max(self.recv_buffer.window, 1)
            if not (self.recv_buffer.rcv_next - 1 <= off
                    < self.recv_buffer.rcv_next + window):
                return  # outside window: blind-reset protection
        self._trace("rst-received")
        reason = "connection reset by peer"
        self._enter_closed(reason, reset=True)

    # ----------------------------------------------------------------- output

    def _seq_of(self, offset: int) -> int:
        return (self.iss + 1 + offset) & SEQ_MASK  # seq_add inlined

    def _current_ack(self) -> tuple[int, int]:
        """(flags_ack_bit, ack_field) for outgoing segments."""
        if self.irs is None:
            return 0, 0
        ack = seq_add(self.irs, 1 + self.recv_buffer.rcv_next
                      + (1 if self.peer_fin_consumed else 0))
        return TcpFlags.ACK, ack

    def _make_segment(self, flags: int, seq: int, payload: bytes = b"") -> TcpSegment:
        # _current_ack() inlined (keep in sync): one call per outgoing
        # segment makes the helper frame and seq_add call measurable.
        recv_buffer = self.recv_buffer
        irs = self.irs
        if irs is None:
            ack_bit = ack = 0
        else:
            ack_bit = TcpFlags.ACK
            ack = (irs + 1 + recv_buffer.rcv_next
                   + (1 if self.peer_fin_consumed else 0)) & SEQ_MASK
        window = recv_buffer.advertise_window()
        self._last_sent_window = window
        # pool.acquire_segment inlined (keep in sync): every data segment
        # and pure ack is built here, so it comes from the recycle pool
        # with one creator claim, released when its wire wrappers die (or
        # by the backup's suppressor); see repro.net.pool.
        if SEGMENT_POOL:
            segment = SEGMENT_POOL.pop()
            segment.src_port = self.local_port
            segment.dst_port = self.remote_port
            segment.seq = seq
            segment.ack = ack if (flags & TcpFlags.ACK or ack_bit) else 0
            segment.flags = flags | ack_bit
            segment.window = window
            segment.payload = payload
            segment.size_bytes = 20 + len(payload)  # == TCP_HEADER_BYTES
        else:
            segment = TcpSegment(
                self.local_port, self.remote_port, seq=seq,
                ack=ack if (flags & TcpFlags.ACK or ack_bit) else 0,
                flags=flags | ack_bit, window=window, payload=payload)
        segment._claims = 1
        return segment

    def _emit(self, segment: TcpSegment) -> None:
        payload = segment.payload
        if type(payload) is not bytes:
            # The send buffer hands out zero-copy ring views; the wire is
            # where they must become real bytes — once the event loop runs
            # again, acked ring positions can be recycled under the view,
            # and a lagging ST-TCP backup tap would read corrupt data.
            segment.payload = bytes(payload)
        self.segments_sent += 1
        self.bytes_sent += len(segment.payload)
        # The extra sender-state fields (off/una/nxt/rcv_nxt/mss/ssthresh)
        # feed the repro.check invariant oracle; see docs/invariants.md.
        # Building them (flag rendering included) costs more than the
        # fire itself, so skip the whole block when nobody listens.
        probes = self.world.probes
        if probes.wants_map["tcp.segment_tx"]:
            probes.fire("tcp.segment_tx", self.name,
                        seq=segment.seq, ack=segment.ack,
                        flags=TcpFlags.describe(segment.flags),
                        len=len(segment.payload),
                        win=segment.window, cwnd=self.cc.cwnd,
                        flight=self.flight_size,
                        off=(seq_sub(segment.seq,
                                     seq_add(self.iss, 1))
                             if self.iss is not None else None),
                        una=self.snd_una_off, nxt=self.snd_nxt_off,
                        rcv_nxt=self.recv_buffer.rcv_next,
                        mss=self.config.mss,
                        ssthresh=self.cc.ssthresh,
                        **self._cc_extra)
        self.transmit(segment)

    def _send_syn(self) -> None:
        self._emit(TcpSegment(self.local_port, self.remote_port, seq=self.iss,
                              ack=0, flags=TcpFlags.SYN,
                              window=self.recv_buffer.window))
        self._rtx_timer.start(self.rtt.rto_ns)

    def _send_syn_ack(self) -> None:
        ack = seq_add(self.irs, 1)
        self._emit(TcpSegment(self.local_port, self.remote_port, seq=self.iss,
                              ack=ack, flags=TcpFlags.SYN | TcpFlags.ACK,
                              window=self.recv_buffer.window))
        self._rtx_timer.start(self.rtt.rto_ns)

    def _send_pure_ack(self) -> None:
        if self._in_batch:
            # Batched pass: emit one coalesced ack at the end of the batch
            # instead of one per segment.
            self._batch_ack_pending = True
            return
        if not self.state.is_synchronized or self.irs is None:
            return
        delack = self._delack_timer
        if delack._handle is not None:  # armed-check inlined; see stop()
            delack.stop()
        self.acks_sent += 1
        # _seq_of inlined (keep in sync): one pure ack per received data
        # segment makes the helper call measurable.
        self._emit(self._make_segment(
            TcpFlags.ACK, seq=(self.iss + 1 + self.snd_nxt_off) & SEQ_MASK))

    def _try_send(self) -> None:
        """Transmit as much queued data as the windows permit, plus FIN."""
        if self._in_batch:
            return  # deferred to the single pump at the end of the batch
        if not self.state.is_synchronized or self.irs is None:
            return
        # Receiver-side fast exit: most calls on an ack-only flow have no
        # queued data and no FIN pending, so skip the window math.
        # _send_limit() and _pump_or_persist() are inlined here (keep in
        # sync) — this branch runs once per inbound ack.
        fin_off = self.fin_off
        end = self.send_buffer.end_offset
        limit = end if (fin_off is None or end < fin_off) else fin_off
        if (limit <= self.snd_nxt_off
                and (not self.fin_queued or self.fin_sent)):
            # Nothing sendable is pending, so the persist question is
            # moot: disarm and reset (the else-arm of _pump_or_persist).
            timer = self._persist_timer
            if timer._handle is not None:
                timer.stop()
            self._persist_interval = self.config.persist_min_ns
            return
        # Loop invariants (cwnd, peer window, writable limit, MSS) can't
        # change while we emit — hoist them; only snd_nxt advances.
        # send_window() inlined (keep in sync); ``limit`` was already
        # computed by the fast-exit check above.
        cwnd = self.cc.cwnd
        peer_window = self.peer_window
        window = cwnd if cwnd < peer_window else peer_window
        mss = self.config.mss
        send_buffer = self.send_buffer
        stream_end = send_buffer.end_offset
        while True:
            snd_nxt = self.snd_nxt_off
            pending = limit - snd_nxt
            room = window - (snd_nxt - self.snd_una_off)
            chunk = mss if mss < pending else pending
            if chunk > room:
                chunk = room
            if chunk > 0:
                payload = send_buffer.get_range(snd_nxt, chunk)
                sent_end = snd_nxt + len(payload)
                flags = TcpFlags.ACK
                if sent_end == stream_end:
                    flags |= TcpFlags.PSH
                fin_now = (self.fin_queued and not self.fin_sent
                           and sent_end == self.fin_off)
                if fin_now:
                    flags |= TcpFlags.FIN
                seg = self._make_segment(
                    flags, (self.iss + 1 + snd_nxt) & SEQ_MASK, payload)
                if self._timed_end is None:
                    self._timed_end = sent_end
                    self._timed_at = self.world.sim.now
                self._emit(seg)
                self.snd_nxt_off = sent_end
                if fin_now:
                    self.fin_sent = True
                if not self._rtx_timer.armed:
                    self._rtx_timer.start(self.rtt.rto_ns)
                continue
            # Bare FIN (no data left to carry it on).
            if (self.fin_queued and not self.fin_sent
                    and snd_nxt == self.fin_off
                    and self.snd_una_off == snd_nxt):
                self._emit(self._make_segment(TcpFlags.FIN | TcpFlags.ACK,
                                              self._seq_of(self.fin_off)))
                self.fin_sent = True
                if not self._rtx_timer.armed:
                    self._rtx_timer.start(self.rtt.rto_ns)
            break
        # _pump_or_persist() inlined (keep in sync): this tail runs once
        # per data-emitting call, and the common case — peer window open —
        # is just the disarm/reset arm.
        if (self.peer_window == 0 and self.flight_size == 0
                and self._send_limit() > self.snd_nxt_off
                and self.state.is_synchronized):
            if not self._persist_timer.armed:
                self._persist_timer.start(self._persist_interval)
            return
        timer = self._persist_timer
        if timer._handle is not None:
            timer.stop()
        self._persist_interval = self.config.persist_min_ns

    def _send_limit(self) -> int:
        """Highest stream offset we are allowed to transmit up to."""
        end = self.send_buffer.end_offset
        return min(end, self.fin_off) if self.fin_off is not None else end

    def _pump_or_persist(self) -> None:
        """Arm the persist timer when data waits on a zero window."""
        if (self.peer_window == 0 and self.flight_size == 0
                and self._send_limit() > self.snd_nxt_off
                and self.state.is_synchronized):
            if not self._persist_timer.armed:
                self._persist_timer.start(self._persist_interval)
            return
        timer = self._persist_timer
        if timer._handle is not None:
            timer.stop()
        self._persist_interval = self.config.persist_min_ns

    def _on_persist_timeout(self) -> None:
        """Send a 1-byte window probe into a zero window."""
        if self.peer_window > 0 or self._send_limit() <= self.snd_nxt_off:
            self._persist_interval = self.config.persist_min_ns
            self._try_send()
            return
        payload = self.send_buffer.get_range(self.snd_nxt_off, 1)
        if payload:
            self._emit(self._make_segment(TcpFlags.ACK,
                                          self._seq_of(self.snd_nxt_off),
                                          payload))
            self._trace("window-probe", off=self.snd_nxt_off)
        self._persist_interval = min(self._persist_interval * 2,
                                     self.config.persist_max_ns)
        self._persist_timer.start(self._persist_interval)

    # ---------------------------------------------------------- retransmission

    def _on_rtx_timeout(self) -> None:
        if self.state is TcpState.SYN_SENT:
            self._syn_rtx_count += 1
            if self._syn_rtx_count > self.config.max_syn_retransmits:
                self._enter_closed("connect timeout", reset=True)
                return
            self.rtt.on_backoff()
            self.retransmissions += 1
            self._emit(TcpSegment(self.local_port, self.remote_port,
                                  seq=self.iss, ack=0, flags=TcpFlags.SYN,
                                  window=self.recv_buffer.window))
            self._rtx_timer.start(self.rtt.rto_ns)
            return
        if self.state is TcpState.SYN_RCVD:
            self._syn_rtx_count += 1
            if self._syn_rtx_count > self.config.max_syn_retransmits:
                self._enter_closed("handshake timeout", reset=True)
                return
            self.rtt.on_backoff()
            self.retransmissions += 1
            self._send_syn_ack()
            self._rtx_timer.start(self.rtt.rto_ns)
            return
        if self._all_acked():
            return
        self._rtx_count += 1
        if self._rtx_count > self.config.max_retransmits:
            self._trace("give-up", retries=self._rtx_count)
            self._enter_closed("retransmission limit exceeded", reset=True)
            return
        self.cc.on_timeout(max(self.flight_size, self.config.mss))
        self.cc.on_retransmit(self.snd_una_off, "rto")
        self.rtt.on_backoff()
        self.world.probes.fire("tcp.retransmit", self.name, kind="rto",
                               off=self.snd_una_off, rto=self.rtt.rto_ns)
        self._timed_end = None  # Karn: never time a retransmitted range
        # Go-back-N (RFC 6298 §5.4 behaviour): everything beyond snd_una is
        # presumed lost; rewind and let slow start re-send it.  Essential
        # for the ST-TCP backup, whose pre-takeover "transmissions" were
        # suppressed and never reached the client at all.
        self.retransmissions += 1
        self.snd_nxt_off = self.snd_una_off
        if self.fin_sent and not self.fin_acked:
            self.fin_sent = False
        self._try_send()
        self._rtx_timer.start(self.rtt.rto_ns)

    def _retransmit_head(self) -> None:
        """Retransmit the earliest unacknowledged segment."""
        self.retransmissions += 1
        self.cc.on_retransmit(self.snd_una_off, "head")
        self.world.probes.fire("tcp.retransmit", self.name, kind="head",
                               off=self.snd_una_off)
        if self.snd_una_off < self.snd_nxt_off:
            length = min(self.config.mss, self.snd_nxt_off - self.snd_una_off)
            payload = self.send_buffer.get_range(self.snd_una_off, length)
            if (self._timed_end is not None
                    and self._timed_end <= self.snd_una_off + len(payload)):
                self._timed_end = None  # Karn: the timed range was resent
            flags = TcpFlags.ACK
            if (self.fin_sent and self.snd_una_off + len(payload) == self.fin_off):
                flags |= TcpFlags.FIN
            self._emit(self._make_segment(flags, self._seq_of(self.snd_una_off),
                                          payload))
            self._trace("retransmit", off=self.snd_una_off, len=len(payload))
        elif self.fin_sent and not self.fin_acked:
            self._emit(self._make_segment(TcpFlags.FIN | TcpFlags.ACK,
                                          self._seq_of(self.fin_off)))
            self._trace("retransmit-fin", off=self.fin_off)

    def _restart_rtx(self) -> None:
        self._rtx_timer.start(self.rtt.rto_ns)

    # ------------------------------------------------------------- tear-down

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._trace("state", state="TIME_WAIT")
        self._rtx_timer.stop()
        self._persist_timer.stop()
        self._timewait_timer.start(2 * self.config.msl_ns)

    def _on_timewait_expired(self) -> None:
        self._enter_closed("TIME_WAIT expired")

    def _enter_closed(self, reason: str, reset: bool = False) -> None:
        already_closed = self.state is TcpState.CLOSED
        self.state = TcpState.CLOSED
        self.closed_at = self.world.sim.now
        for timer in (self._rtx_timer, self._persist_timer,
                      self._delack_timer, self._timewait_timer):
            timer.stop()
        if already_closed:
            return
        self._trace("closed", reason=reason)
        if reset:
            self.on_reset(reason)
        self.on_closed()

    # ----------------------------------------------------------------- misc

    def _trace(self, message: str, **fields) -> None:
        self.world.trace.record("tcp", self.name, message, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpConnection {self.name} {self.state.value} "
                f"una={self.snd_una_off} nxt={self.snd_nxt_off} "
                f"rcv={self.recv_buffer.rcv_next}>")
