"""A complete user-space TCP implementation for the simulator.

Implements handshake, sliding-window data transfer, flow control,
pluggable congestion control (Tahoe / Reno / NewReno / CUBIC, see
docs/congestion.md), RTO with exponential backoff, fast retransmit,
persist probes, and FIN/RST teardown — the substrate every ST-TCP
mechanism acts on (see DESIGN.md substitution table).
"""

from repro.tcp.buffers import ReceiveBuffer, RetainBuffer, SendBuffer
from repro.tcp.congestion import (
    CC_ALGORITHMS,
    CongestionControl,
    CubicCongestionControl,
    NewRenoCongestionControl,
    RenoCongestionControl,
    TahoeCongestionControl,
    cc_names,
    make_congestion_control,
    register_congestion_control,
)
from repro.tcp.connection import TcpConfig, TcpConnection
from repro.tcp.rtt import RttEstimator
from repro.tcp.segment import TCP_HEADER_BYTES, TcpFlags, TcpSegment
from repro.tcp.seq import (
    SEQ_MASK,
    SEQ_MOD,
    seq_add,
    seq_between,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
    seq_sub,
)
from repro.tcp.sockets import Listener, Socket
from repro.tcp.stack import TcpStack
from repro.tcp.states import TcpState

__all__ = [
    "CC_ALGORITHMS",
    "CongestionControl",
    "CubicCongestionControl",
    "NewRenoCongestionControl",
    "SEQ_MASK",
    "SEQ_MOD",
    "TCP_HEADER_BYTES",
    "Listener",
    "ReceiveBuffer",
    "RenoCongestionControl",
    "TahoeCongestionControl",
    "cc_names",
    "make_congestion_control",
    "register_congestion_control",
    "RetainBuffer",
    "RttEstimator",
    "SendBuffer",
    "Socket",
    "TcpConfig",
    "TcpConnection",
    "TcpFlags",
    "TcpSegment",
    "TcpStack",
    "TcpState",
    "seq_add",
    "seq_between",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
    "seq_max",
    "seq_min",
    "seq_sub",
]
