"""32-bit TCP sequence-number arithmetic (RFC 793 comparison semantics).

Sequence numbers live on a mod-2**32 circle; "less than" means "within the
forward half-circle".  All comparisons here are safe as long as the two
numbers are within 2**31 of each other, which TCP's window rules guarantee.
"""

from __future__ import annotations

__all__ = [
    "SEQ_MOD",
    "SEQ_MASK",
    "seq_add",
    "seq_sub",
    "seq_lt",
    "seq_le",
    "seq_gt",
    "seq_ge",
    "seq_between",
    "seq_max",
    "seq_min",
]

SEQ_MOD = 1 << 32
SEQ_MASK = SEQ_MOD - 1
_HALF = 1 << 31


def seq_add(seq: int, delta: int) -> int:
    """``seq + delta`` on the sequence circle."""
    return (seq + delta) & SEQ_MASK


def seq_sub(a: int, b: int) -> int:
    """Signed circular distance ``a - b`` in ``[-2**31, 2**31)``."""
    diff = (a - b) & SEQ_MASK
    return diff - SEQ_MOD if diff >= _HALF else diff


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` on the circle."""
    return seq_sub(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    """True if ``a`` precedes or equals ``b`` on the circle."""
    return seq_sub(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    """True if ``a`` follows ``b`` on the circle."""
    return seq_sub(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    """True if ``a`` follows or equals ``b`` on the circle."""
    return seq_sub(a, b) >= 0


def seq_between(low: int, x: int, high: int) -> bool:
    """True if ``low <= x <= high`` walking forward from ``low``."""
    return seq_le(low, x) and seq_le(x, high)


def seq_max(a: int, b: int) -> int:
    """The later of two sequence numbers."""
    return a if seq_ge(a, b) else b


def seq_min(a: int, b: int) -> int:
    """The earlier of two sequence numbers."""
    return a if seq_le(a, b) else b
