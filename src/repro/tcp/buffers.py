"""Send, receive (reassembly) and retain buffers.

All three buffers index data by *stream offset*: byte 0 is the first data
byte of the connection (sequence number ISN+1).  Offsets are plain Python
ints, so they never wrap; the connection layer translates to and from
32-bit wire sequence numbers.  Primary and backup share identical offsets
because ST-TCP forces identical ISNs — which is what makes the heartbeat's
progress counters (`LastByteReceived` etc.) directly comparable.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SendBuffer", "ReceiveBuffer", "RetainBuffer"]


class SendBuffer:
    """Outgoing byte stream: unacknowledged + not-yet-sent data.

    The application appends at the tail (bounded by ``capacity``); the
    connection acknowledges prefixes away as the peer acks.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data = bytearray()
        self._base = 0          # stream offset of _data[0] (== acked prefix)
        self._written = 0       # total bytes ever accepted (stream length)

    @property
    def base_offset(self) -> int:
        """Offset of the first unacknowledged byte."""
        return self._base

    @property
    def end_offset(self) -> int:
        """Offset one past the last byte written."""
        return self._written

    @property
    def buffered(self) -> int:
        """Bytes currently held (unacked or unsent)."""
        return len(self._data)

    @property
    def free_space(self) -> int:
        """Remaining writable capacity."""
        return self.capacity - len(self._data)

    def write(self, data: bytes) -> int:
        """Append up to ``free_space`` bytes; returns the count accepted."""
        accepted = min(len(data), self.free_space)
        if accepted > 0:
            self._data.extend(data[:accepted])
            self._written += accepted
        return accepted

    def ack_to(self, offset: int) -> int:
        """Discard bytes below ``offset`` (cumulative ack); returns freed count."""
        if offset <= self._base:
            return 0
        if offset > self._written:
            raise ValueError(
                f"ack beyond written data: {offset} > {self._written}")
        freed = offset - self._base
        del self._data[:freed]
        self._base = offset
        return freed

    def get_range(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes starting at stream ``offset`` (clamped to
        available data).  Used for both transmission and retransmission."""
        if offset < self._base:
            raise ValueError(
                f"range below acked prefix: {offset} < {self._base}")
        start = offset - self._base
        return bytes(self._data[start:start + length])


class ReceiveBuffer:
    """Incoming reassembly buffer with out-of-order segment storage.

    ``receive`` accepts data at any offset at or beyond ``rcv_next``;
    contiguous data becomes readable by the application.  The advertised
    window shrinks with everything buffered (read-queue + out-of-order),
    exactly like a real receive window.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._readable = bytearray()
        self._rcv_next = 0                       # next in-order offset
        self._read = 0                           # total bytes app consumed
        self._ooo: dict[int, bytes] = {}         # offset -> chunk (disjoint)

    @property
    def rcv_next(self) -> int:
        """Offset of the next in-order byte expected (== LastByteReceived)."""
        return self._rcv_next

    @property
    def bytes_read(self) -> int:
        """Total bytes the application has consumed (== LastAppByteRead)."""
        return self._read

    @property
    def readable(self) -> int:
        """Bytes available for the application to read right now."""
        return len(self._readable)

    @property
    def ooo_bytes(self) -> int:
        """Bytes held out-of-order (above a gap)."""
        return sum(len(c) for c in self._ooo.values())

    @property
    def window(self) -> int:
        """Advertised receive window."""
        return max(0, self.capacity - len(self._readable) - self.ooo_bytes)

    @property
    def has_gap(self) -> bool:
        """True while out-of-order data awaits a hole fill."""
        return bool(self._ooo)

    @property
    def highest_received(self) -> int:
        """One past the highest byte buffered anywhere (in-order or OOO)."""
        if not self._ooo:
            return self._rcv_next
        return max(self._rcv_next,
                   max(off + len(chunk) for off, chunk in self._ooo.items()))

    def missing_ranges(self) -> list[tuple[int, int]]:
        """Gaps ``(start, end)`` between rcv_next and buffered OOO data —
        what the ST-TCP backup asks the primary to re-supply."""
        if not self._ooo:
            return []
        gaps = []
        cursor = self._rcv_next
        for off in sorted(self._ooo):
            if off > cursor:
                gaps.append((cursor, off))
            cursor = max(cursor, off + len(self._ooo[off]))
        return gaps

    def receive(self, offset: int, data: bytes) -> int:
        """Insert received data; returns how many *new in-order* bytes
        became available (0 for pure out-of-order or duplicate data).

        Data beyond the window is trimmed (a correct sender never sends it,
        but a retransmission racing a window update can).
        """
        if not data:
            return 0
        # Trim the already-received prefix.
        if offset < self._rcv_next:
            skip = self._rcv_next - offset
            if skip >= len(data):
                return 0
            data = data[skip:]
            offset = self._rcv_next
        # Trim anything beyond the buffer's acceptance edge.  Note this is
        # NOT ``rcv_next + window``: the advertised window conservatively
        # subtracts out-of-order bytes, but those bytes occupy positions
        # *inside* the edge — shrinking the acceptance edge because of them
        # would drop data we previously advertised room for (TCP forbids
        # window shrinking).  Capacity minus the readable queue bounds what
        # we can physically hold.
        right_edge = self._rcv_next + (self.capacity - len(self._readable))
        if offset >= right_edge:
            return 0
        if offset + len(data) > right_edge:
            data = data[:right_edge - offset]
        if not data:
            return 0
        if offset == self._rcv_next:
            before = self._rcv_next
            self._readable.extend(data)
            self._rcv_next += len(data)
            self._drain_ooo()
            return self._rcv_next - before
        self._store_ooo(offset, data)
        return 0

    def _store_ooo(self, offset: int, data: bytes) -> None:
        """Insert an out-of-order chunk, merging overlaps conservatively."""
        for exist_off in sorted(self._ooo):
            chunk = self._ooo[exist_off]
            exist_end = exist_off + len(chunk)
            end = offset + len(data)
            if offset >= exist_off and end <= exist_end:
                return  # fully contained duplicate
            if not (end <= exist_off or offset >= exist_end):
                # Overlap: merge the two into one contiguous chunk.
                new_off = min(offset, exist_off)
                new_end = max(end, exist_end)
                merged = bytearray(new_end - new_off)
                merged[exist_off - new_off:exist_off - new_off + len(chunk)] = chunk
                merged[offset - new_off:offset - new_off + len(data)] = data
                del self._ooo[exist_off]
                self._store_ooo(new_off, bytes(merged))
                return
        self._ooo[offset] = bytes(data)

    def _drain_ooo(self) -> None:
        # Purge chunks made obsolete by the in-order advance (duplicates
        # of data we already consumed) so has_gap stays truthful.
        stale = [off for off, chunk in self._ooo.items()
                 if off + len(chunk) <= self._rcv_next]
        for off in stale:
            del self._ooo[off]
        while True:
            chunk = self._ooo.pop(self._rcv_next, None)
            if chunk is None:
                # A chunk may *overlap* rcv_next after in-order fill.
                overlapping = None
                for off in sorted(self._ooo):
                    if off < self._rcv_next < off + len(self._ooo[off]):
                        overlapping = off
                        break
                    if off >= self._rcv_next:
                        break
                if overlapping is None:
                    return
                chunk = self._ooo.pop(overlapping)[self._rcv_next - overlapping:]
            self._readable.extend(chunk)
            self._rcv_next += len(chunk)

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Consume up to ``max_bytes`` in-order bytes (all, if None)."""
        n = len(self._readable) if max_bytes is None else min(
            max_bytes, len(self._readable))
        if n <= 0:
            return b""
        out = bytes(self._readable[:n])
        del self._readable[:n]
        self._read += n
        return out

    def peek_tail(self, n: int) -> bytes:
        """Copy the last ``n`` readable bytes without consuming them.

        Used by the connection layer to hand freshly in-order bytes to the
        ST-TCP retain-buffer tap immediately after a ``receive`` call."""
        if n <= 0:
            return b""
        return bytes(self._readable[-n:])


class RetainBuffer:
    """The ST-TCP primary's *extra receive buffer* (paper Sec. 2).

    The primary keeps a copy of every in-order client byte until the backup
    confirms receipt through the heartbeat, so the backup can fetch bytes
    it missed (Table 1 row 5).  If the buffer fills — the backup cannot
    keep up — the primary declares the backup failed (paper Sec. 4.3).
    """

    def __init__(self, capacity: int = 262144):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data = bytearray()
        self._base = 0
        self.overflowed = False

    @property
    def base_offset(self) -> int:
        """Offset of the first retained byte."""
        return self._base

    @property
    def end_offset(self) -> int:
        """One past the last retained byte."""
        return self._base + len(self._data)

    @property
    def buffered(self) -> int:
        """Bytes currently held."""
        return len(self._data)

    def append(self, offset: int, data: bytes) -> None:
        """Store in-order client bytes (``offset`` must extend the buffer).

        Sets :attr:`overflowed` instead of raising when capacity would be
        exceeded — the caller (the primary engine) converts that condition
        into a "backup failed" verdict per the paper.
        """
        end = self.end_offset
        if offset < end:
            skip = end - offset
            if skip >= len(data):
                return
            data = data[skip:]
            offset = end
        if offset != end:
            if self.overflowed:
                # Bytes were already dropped at the full mark; the buffer
                # can no longer represent the stream contiguously.  The
                # primary engine reads ``overflowed`` and declares the
                # backup failed (paper Sec. 4.3).
                return
            raise ValueError(
                f"retain buffer gap: expected offset {end}, got {offset}")
        if len(self._data) + len(data) > self.capacity:
            self.overflowed = True
            room = self.capacity - len(self._data)
            data = data[:room]
        self._data.extend(data)

    def release_to(self, offset: int) -> int:
        """Drop bytes the backup has confirmed; returns freed count."""
        if offset <= self._base:
            return 0
        offset = min(offset, self.end_offset)
        freed = offset - self._base
        del self._data[:freed]
        self._base = offset
        return freed

    def get_range(self, offset: int, length: int) -> Optional[bytes]:
        """Bytes at ``offset`` (None if already released — the
        unrecoverable-output-commit case of paper Sec. 4.3)."""
        if offset < self._base:
            return None
        start = offset - self._base
        if start >= len(self._data):
            return b""
        return bytes(self._data[start:start + length])
