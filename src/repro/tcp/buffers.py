"""Send, receive (reassembly) and retain buffers.

All three buffers index data by *stream offset*: byte 0 is the first data
byte of the connection (sequence number ISN+1).  Offsets are plain Python
ints, so they never wrap; the connection layer translates to and from
32-bit wire sequence numbers.  Primary and backup share identical offsets
because ST-TCP forces identical ISNs — which is what makes the heartbeat's
progress counters (`LastByteReceived` etc.) directly comparable.

Storage is a fixed ring (``bytearray(capacity)`` indexed by
``offset % capacity``) rather than a growing/shrinking bytearray:
acknowledging or releasing a prefix is O(1) pointer arithmetic instead of
an O(n) ``del data[:freed]`` memmove, and :meth:`SendBuffer.get_range`
can hand out a zero-copy :class:`memoryview` for the common
non-wrapping case.  Views stay internal to the TCP layer — the connection
materializes real ``bytes`` exactly once, when a payload crosses the NIC
boundary — because ring positions below the acked/released base are
recycled and a view held across that point would alias new data.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = ["SendBuffer", "ReceiveBuffer", "RetainBuffer"]

# Rings start at this backing size and double on demand up to capacity.
# ST-TCP sizes some buffers in megabytes as *headroom* (retain allowance,
# backup-lag slack) that is rarely occupied — eagerly zero-filling full
# capacity for every connection would cost hundreds of megabytes.
_INITIAL_RING_BYTES = 65536


def _regrow(old: bytearray, new_size: int, start: int, end: int) -> bytearray:
    """Copy the live span ``[start, end)`` (stream offsets) from ``old``
    into a fresh ring of ``new_size``, preserving ``offset % size``
    addressing.  Growth is geometric, so the copy amortizes to O(1) per
    byte ever stored."""
    old_size = len(old)
    new = bytearray(new_size)
    off = start
    while off < end:
        o = off % old_size
        n = off % new_size
        run = min(old_size - o, new_size - n, end - off)
        new[n:n + run] = old[o:o + run]
        off += run
    return new


class SendBuffer:
    """Outgoing byte stream: unacknowledged + not-yet-sent data.

    The application appends at the tail (bounded by ``capacity``); the
    connection acknowledges prefixes away as the peer acks.

    Ring invariant: live bytes span ``[_base, _written)`` with
    ``_written - _base <= capacity``, stored at ``offset % capacity``.
    Positions below ``_base`` are dead and reused by ``write`` — safe
    because a cumulative ack covers every byte below it, so no
    retransmission ever needs them again.
    """

    __slots__ = ("capacity", "_buf", "_alloc", "_base", "_written")

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._alloc = capacity if capacity < _INITIAL_RING_BYTES \
            else _INITIAL_RING_BYTES
        self._buf = bytearray(self._alloc)
        self._base = 0          # stream offset of first unacked byte
        self._written = 0       # total bytes ever accepted (stream length)

    @property
    def base_offset(self) -> int:
        """Offset of the first unacknowledged byte."""
        return self._base

    @property
    def end_offset(self) -> int:
        """Offset one past the last byte written."""
        return self._written

    @property
    def buffered(self) -> int:
        """Bytes currently held (unacked or unsent)."""
        return self._written - self._base

    @property
    def free_space(self) -> int:
        """Remaining writable capacity."""
        return self.capacity - (self._written - self._base)

    def write(self, data: bytes) -> int:
        """Append up to ``free_space`` bytes; returns the count accepted."""
        accepted = self.capacity - (self._written - self._base)
        if accepted > len(data):
            accepted = len(data)
        if accepted <= 0:
            return 0
        span = self._written + accepted - self._base
        if span > self._alloc:
            alloc = self._alloc
            while alloc < span:
                alloc *= 2
            if alloc > self.capacity:
                alloc = self.capacity
            self._buf = _regrow(self._buf, alloc, self._base, self._written)
            self._alloc = alloc
        cap = self._alloc
        start = self._written % cap
        end = start + accepted
        if end <= cap:
            self._buf[start:end] = data[:accepted]
        else:
            head = cap - start
            self._buf[start:] = data[:head]
            self._buf[:accepted - head] = data[head:accepted]
        self._written += accepted
        return accepted

    def ack_to(self, offset: int) -> int:
        """Discard bytes below ``offset`` (cumulative ack); returns freed count."""
        if offset <= self._base:
            return 0
        if offset > self._written:
            raise ValueError(
                f"ack beyond written data: {offset} > {self._written}")
        freed = offset - self._base
        self._base = offset
        return freed

    def get_range(self, offset: int, length: int) -> Union[bytes, memoryview]:
        """``length`` bytes starting at stream ``offset`` (clamped to
        available data).  Used for both transmission and retransmission.

        Returns a zero-copy view into the ring when the range doesn't
        wrap (the overwhelmingly common case); the caller must copy it
        to ``bytes`` before yielding control back to the event loop.
        """
        if offset < self._base:
            raise ValueError(
                f"range below acked prefix: {offset} < {self._base}")
        avail = self._written - offset
        if length > avail:
            length = avail
        if length <= 0:
            return b""
        cap = self._alloc
        start = offset % cap
        end = start + length
        if end <= cap:
            return memoryview(self._buf)[start:end]
        head = cap - start
        out = bytearray(length)
        out[:head] = self._buf[start:]
        out[head:] = self._buf[:length - head]
        return bytes(out)


class ReceiveBuffer:
    """Incoming reassembly buffer with out-of-order segment storage.

    ``receive`` accepts data at any offset at or beyond ``rcv_next``;
    contiguous data becomes readable by the application.  The advertised
    window shrinks with everything buffered (read-queue + out-of-order),
    exactly like a real receive window.

    One ring holds every byte in the acceptance window
    ``[bytes_read, bytes_read + capacity)``: readable bytes occupy
    ``[bytes_read, rcv_next)`` and out-of-order bytes land directly at
    their final ring positions, tracked as disjoint sorted ``(start, end)``
    intervals.  Filling a gap therefore *drains* by pure interval
    arithmetic — no bytes move.
    """

    __slots__ = ("capacity", "_buf", "_alloc", "_rcv_next", "_read", "_ooo",
                 "_ooo_total", "_adv_edge")

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._alloc = capacity if capacity < _INITIAL_RING_BYTES \
            else _INITIAL_RING_BYTES
        self._buf = bytearray(self._alloc)
        self._rcv_next = 0                 # next in-order offset
        self._read = 0                     # total bytes app consumed
        self._ooo: list[tuple[int, int]] = []  # disjoint sorted [start, end)
        self._ooo_total = 0                # sum of interval lengths
        self._adv_edge = 0                 # highest edge ever advertised

    @property
    def rcv_next(self) -> int:
        """Offset of the next in-order byte expected (== LastByteReceived)."""
        return self._rcv_next

    @property
    def bytes_read(self) -> int:
        """Total bytes the application has consumed (== LastAppByteRead)."""
        return self._read

    @property
    def readable(self) -> int:
        """Bytes available for the application to read right now."""
        return self._rcv_next - self._read

    @property
    def ooo_bytes(self) -> int:
        """Bytes held out-of-order (above a gap)."""
        return self._ooo_total

    @property
    def window(self) -> int:
        """Advertised receive window.

        Conservatively subtracts out-of-order bytes, but never retracts
        an edge a previous advertisement promised (RFC 793 forbids
        shrinking the window): OOO bytes live *inside* the promised edge,
        so honouring it cannot over-commit — the physical acceptance edge
        ``bytes_read + capacity`` is monotonic and always at or beyond
        any edge ever advertised.
        """
        naive = (self.capacity - (self._rcv_next - self._read)
                 - self._ooo_total)
        promised = self._adv_edge - self._rcv_next
        w = naive if naive >= promised else promised
        return w if w > 0 else 0

    def note_advertised(self, window: int) -> None:
        """Record a window advertisement actually sent to the peer (the
        connection layer calls this per outgoing segment); ratchets the
        promised right edge the :attr:`window` property must honour."""
        edge = self._rcv_next + window
        if edge > self._adv_edge:
            self._adv_edge = edge

    def advertise_window(self) -> int:
        """:attr:`window` and :meth:`note_advertised` fused — the
        per-outgoing-segment hot path pays one call instead of two."""
        rcv_next = self._rcv_next
        naive = self.capacity - (rcv_next - self._read) - self._ooo_total
        promised = self._adv_edge - rcv_next
        w = naive if naive >= promised else promised
        if w <= 0:
            return 0
        edge = rcv_next + w
        if edge > self._adv_edge:
            self._adv_edge = edge
        return w

    @property
    def has_gap(self) -> bool:
        """True while out-of-order data awaits a hole fill."""
        return bool(self._ooo)

    @property
    def highest_received(self) -> int:
        """One past the highest byte buffered anywhere (in-order or OOO)."""
        if not self._ooo:
            return self._rcv_next
        end = self._ooo[-1][1]
        return end if end > self._rcv_next else self._rcv_next

    def missing_ranges(self) -> list[tuple[int, int]]:
        """Gaps ``(start, end)`` between rcv_next and buffered OOO data —
        what the ST-TCP backup asks the primary to re-supply."""
        if not self._ooo:
            return []
        gaps = []
        cursor = self._rcv_next
        for start, end in self._ooo:
            if start > cursor:
                gaps.append((cursor, start))
            if end > cursor:
                cursor = end
        return gaps

    def _write_ring(self, offset: int, data: bytes) -> None:
        span = offset + len(data) - self._read
        if span > self._alloc:
            alloc = self._alloc
            while alloc < span:
                alloc *= 2
            if alloc > self.capacity:
                alloc = self.capacity
            self._buf = _regrow(self._buf, alloc, self._read,
                                self.highest_received)
            self._alloc = alloc
        cap = self._alloc
        start = offset % cap
        end = start + len(data)
        if end <= cap:
            self._buf[start:end] = data
        else:
            head = cap - start
            self._buf[start:] = data[:head]
            self._buf[:len(data) - head] = data[head:]

    def receive(self, offset: int, data: bytes) -> int:
        """Insert received data; returns how many *new in-order* bytes
        became available (0 for pure out-of-order or duplicate data).

        Data beyond the window is trimmed (a correct sender never sends it,
        but a retransmission racing a window update can).
        """
        if not data:
            return 0
        rcv_next = self._rcv_next
        # Trim the already-received prefix.
        if offset < rcv_next:
            skip = rcv_next - offset
            if skip >= len(data):
                return 0
            data = data[skip:]
            offset = rcv_next
        # Trim anything beyond the buffer's acceptance edge.  Note this is
        # NOT ``rcv_next + window``: the advertised window conservatively
        # subtracts out-of-order bytes, but those bytes occupy positions
        # *inside* the edge — shrinking the acceptance edge because of them
        # would drop data we previously advertised room for (TCP forbids
        # window shrinking).  ``bytes_read + capacity`` bounds what the
        # ring can physically hold.
        right_edge = self._read + self.capacity
        if offset >= right_edge:
            return 0
        if offset + len(data) > right_edge:
            data = data[:right_edge - offset]
        if not data:
            return 0
        self._write_ring(offset, data)
        if offset == rcv_next:
            self._rcv_next = rcv_next + len(data)
            if self._ooo:
                self._drain_ooo()
            return self._rcv_next - rcv_next
        self._store_ooo(offset, offset + len(data))
        return 0

    def _store_ooo(self, start: int, end: int) -> None:
        """Merge the interval ``[start, end)`` into the disjoint sorted
        out-of-order set (bytes are already at their ring positions;
        overlaps were overwritten in place, newest data winning, exactly
        like the chunk-merge this replaces)."""
        intervals = self._ooo
        keep = []
        for a, b in intervals:
            if b < start or a > end:
                keep.append((a, b))
            else:
                if a < start:
                    start = a
                if b > end:
                    end = b
        keep.append((start, end))
        keep.sort()
        self._ooo = keep
        self._ooo_total = sum(b - a for a, b in keep)

    def _drain_ooo(self) -> None:
        """Advance ``rcv_next`` through intervals the in-order fill just
        connected to (and discard ones it made stale) — pure bookkeeping,
        the bytes are already in place."""
        intervals = self._ooo
        rcv_next = self._rcv_next
        i = 0
        for start, end in intervals:
            if start > rcv_next:
                break
            i += 1
            if end > rcv_next:
                rcv_next = end
        if i:
            del intervals[:i]
            self._ooo_total = sum(b - a for a, b in intervals)
            self._rcv_next = rcv_next

    def read(self, max_bytes: Optional[int] = None) -> bytes:
        """Consume up to ``max_bytes`` in-order bytes (all, if None)."""
        avail = self._rcv_next - self._read
        n = avail if max_bytes is None else min(max_bytes, avail)
        if n <= 0:
            return b""
        cap = self._alloc
        start = self._read % cap
        end = start + n
        if end <= cap:
            out = bytes(self._buf[start:end])
        else:
            head = cap - start
            out = bytes(self._buf[start:]) + bytes(self._buf[:n - head])
        self._read += n
        return out

    def peek_tail(self, n: int) -> bytes:
        """Copy the last ``n`` readable bytes without consuming them.

        Used by the connection layer to hand freshly in-order bytes to the
        ST-TCP retain-buffer tap immediately after a ``receive`` call."""
        avail = self._rcv_next - self._read
        if n > avail:
            n = avail
        if n <= 0:
            return b""
        cap = self._alloc
        start = (self._rcv_next - n) % cap
        end = start + n
        if end <= cap:
            return bytes(self._buf[start:end])
        head = cap - start
        return bytes(self._buf[start:]) + bytes(self._buf[:n - head])


class RetainBuffer:
    """The ST-TCP primary's *extra receive buffer* (paper Sec. 2).

    The primary keeps a copy of every in-order client byte until the backup
    confirms receipt through the heartbeat, so the backup can fetch bytes
    it missed (Table 1 row 5).  If the buffer fills — the backup cannot
    keep up — the primary declares the backup failed (paper Sec. 4.3).

    Same ring layout as :class:`SendBuffer`; :meth:`release_to` is O(1).
    ``get_range`` copies to ``bytes`` (not a view) because fetch replies
    travel the control channel with delivery delay, during which a
    heartbeat may release — and new appends recycle — the ring positions.
    """

    __slots__ = ("capacity", "_buf", "_alloc", "_base", "_end", "overflowed")

    def __init__(self, capacity: int = 262144):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._alloc = capacity if capacity < _INITIAL_RING_BYTES \
            else _INITIAL_RING_BYTES
        self._buf = bytearray(self._alloc)
        self._base = 0
        self._end = 0
        self.overflowed = False

    @property
    def base_offset(self) -> int:
        """Offset of the first retained byte."""
        return self._base

    @property
    def end_offset(self) -> int:
        """One past the last retained byte."""
        return self._end

    @property
    def buffered(self) -> int:
        """Bytes currently held."""
        return self._end - self._base

    def append(self, offset: int, data: bytes) -> None:
        """Store in-order client bytes (``offset`` must extend the buffer).

        Sets :attr:`overflowed` instead of raising when capacity would be
        exceeded — the caller (the primary engine) converts that condition
        into a "backup failed" verdict per the paper.
        """
        end = self._end
        if offset < end:
            skip = end - offset
            if skip >= len(data):
                return
            data = data[skip:]
            offset = end
        if offset != end:
            if self.overflowed:
                # Bytes were already dropped at the full mark; the buffer
                # can no longer represent the stream contiguously.  The
                # primary engine reads ``overflowed`` and declares the
                # backup failed (paper Sec. 4.3).
                return
            raise ValueError(
                f"retain buffer gap: expected offset {end}, got {offset}")
        room = self.capacity - (end - self._base)
        if len(data) > room:
            self.overflowed = True
            data = data[:room]
            if not data:
                return
        span = end + len(data) - self._base
        if span > self._alloc:
            alloc = self._alloc
            while alloc < span:
                alloc *= 2
            if alloc > self.capacity:
                alloc = self.capacity
            self._buf = _regrow(self._buf, alloc, self._base, end)
            self._alloc = alloc
        cap = self._alloc
        start = end % cap
        stop = start + len(data)
        if stop <= cap:
            self._buf[start:stop] = data
        else:
            head = cap - start
            self._buf[start:] = data[:head]
            self._buf[:len(data) - head] = data[head:]
        self._end = end + len(data)

    def release_to(self, offset: int) -> int:
        """Drop bytes the backup has confirmed; returns freed count."""
        if offset <= self._base:
            return 0
        if offset > self._end:
            offset = self._end
        freed = offset - self._base
        self._base = offset
        return freed

    def get_range(self, offset: int, length: int) -> Optional[bytes]:
        """Bytes at ``offset`` (None if already released — the
        unrecoverable-output-commit case of paper Sec. 4.3)."""
        if offset < self._base:
            return None
        avail = self._end - offset
        if avail <= 0:
            return b""
        if length > avail:
            length = avail
        cap = self._alloc
        start = offset % cap
        end = start + length
        if end <= cap:
            return bytes(self._buf[start:end])
        head = cap - start
        return bytes(self._buf[start:]) + bytes(self._buf[:length - head])
