"""RTT estimation and retransmission timeout (RFC 6298 / Jacobson-Karels).

The RTO and its exponential backoff matter a lot here: the paper's Demo 2
observes that failover time = failure-detection time + *the residual wait
until the next (backed-off) retransmission* — so the backoff schedule
directly shapes the headline figure.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import millis, seconds

__all__ = ["RttEstimator"]


class RttEstimator:
    """Smoothed RTT, RTT variance, and the retransmission timeout."""

    ALPHA = 1 / 8   # gain for SRTT
    BETA = 1 / 4    # gain for RTTVAR
    K = 4           # variance multiplier

    def __init__(self,
                 initial_rto_ns: int = seconds(1),
                 min_rto_ns: int = millis(200),
                 max_rto_ns: int = seconds(60),
                 clock_granularity_ns: int = millis(1)):
        if not min_rto_ns <= initial_rto_ns <= max_rto_ns:
            raise ValueError("initial RTO outside [min, max] bounds")
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.granularity_ns = clock_granularity_ns
        self._srtt: Optional[int] = None
        self._rttvar: Optional[int] = None
        self._rto = initial_rto_ns
        self.samples = 0
        self.backoffs = 0
        # True while the RTO carries doubling from on_backoff that a fresh
        # ack has not yet cleared; lets reset_backoff (called once per new
        # ack) skip the recompute in the common no-backoff case.
        self._backoff_dirty = False

    @property
    def rto_ns(self) -> int:
        """Current retransmission timeout."""
        return self._rto

    @property
    def srtt_ns(self) -> Optional[int]:
        """Smoothed RTT (None before the first sample)."""
        return self._srtt

    @property
    def rttvar_ns(self) -> Optional[int]:
        """RTT variance (None before the first sample)."""
        return self._rttvar

    def on_sample(self, rtt_ns: int) -> None:
        """Fold in one RTT measurement (never from a retransmitted segment —
        Karn's algorithm is enforced by the caller)."""
        if rtt_ns < 0:
            raise ValueError(f"negative RTT sample: {rtt_ns}")
        self.samples += 1
        if self._srtt is None:
            self._srtt = rtt_ns
            self._rttvar = rtt_ns // 2
        else:
            err = abs(self._srtt - rtt_ns)
            self._rttvar = round((1 - self.BETA) * self._rttvar
                                 + self.BETA * err)
            self._srtt = round((1 - self.ALPHA) * self._srtt
                               + self.ALPHA * rtt_ns)
        rto = self._srtt + max(self.granularity_ns, self.K * self._rttvar)
        self._rto = max(self.min_rto_ns, min(self.max_rto_ns, rto))
        self._backoff_dirty = False

    def on_backoff(self) -> int:
        """Double the RTO after a retransmission timeout; returns new RTO."""
        self.backoffs += 1
        self._rto = min(self.max_rto_ns, self._rto * 2)
        self._backoff_dirty = True
        return self._rto

    def reset_backoff(self) -> None:
        """Recompute RTO from the smoothed estimate after a fresh ack.

        Without intervening backoffs the RTO already equals the formula
        value (on_sample keeps it current), so the recompute is skipped.
        """
        if self._backoff_dirty and self._srtt is not None:
            rto = self._srtt + max(self.granularity_ns, self.K * self._rttvar)
            self._rto = max(self.min_rto_ns, min(self.max_rto_ns, rto))
            self._backoff_dirty = False
