"""Pluggable TCP congestion control: Tahoe, Reno, NewReno, CUBIC.

Every algorithm implements the :class:`CongestionControl` interface; the
connection machinery in :mod:`repro.tcp.connection` calls only the hook
surface (``on_new_ack`` / ``on_dupack`` / ``on_timeout`` /
``on_retransmit`` / ``on_exit_recovery`` / ``send_window``) and reads
``cwnd`` / ``ssthresh`` for the observability probes, so selecting an
algorithm is purely a matter of :data:`TcpConfig.cc <repro.tcp.connection.TcpConfig>`.

The backup's suppressed connection runs the *same* congestion machinery as
the primary — its cwnd evolves from the shared client acks — so at takeover
the backup's send rate is already warmed up, one of the reasons ST-TCP
failover looks like a glitch rather than a fresh slow-start.  That warm-up
property holds for every algorithm here, because the backup replica is
built from the same :class:`TcpConfig` (including ``cc``) as the primary's
connection.

Determinism: the only clock an algorithm may read is the ``clock`` object
handed to it (anything with a ``now`` attribute in integer nanoseconds —
the simulator itself in production, a trivial stub in tests).  No
wall-clock, no RNG: equal event sequences against equal virtual clocks
give equal window trajectories, which is what makes the CC-identification
scenario (:mod:`repro.scenarios.ccident`) possible.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CongestionControl",
    "TahoeCongestionControl",
    "RenoCongestionControl",
    "NewRenoCongestionControl",
    "CubicCongestionControl",
    "CC_ALGORITHMS",
    "register_congestion_control",
    "make_congestion_control",
    "cc_names",
    "DEFAULT_CC",
]

DEFAULT_CC = "reno"


class CongestionControl:
    """Abstract per-connection congestion-control state machine.

    Common state (all integers, picklable — world snapshots carry live
    connections):

    ``cwnd`` / ``ssthresh``
        Congestion window and slow-start threshold in bytes.
    ``dupacks``
        Consecutive duplicate acks seen since the last new ack.
    ``in_fast_recovery``
        True between a fast retransmit and the ack that covers
        ``_recovery_point``.
    ``fast_retransmits`` / ``timeouts``
        Event counters, exported via :meth:`export_state`.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    DUPACK_THRESHOLD = 3

    def __init__(self, mss: int, initial_window_segments: int = 10,
                 clock=None):
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 1 << 30  # "infinite" until the first loss event
        self.dupacks = 0
        self.in_fast_recovery = False
        self._recovery_point = 0   # stream offset that ends fast recovery
        self.fast_retransmits = 0
        self.timeouts = 0
        self._acked_accum = 0      # fractional cwnd growth in CA
        self._clock = clock

    # ------------------------------------------------------------------ hooks

    def on_new_ack(self, newly_acked: int, snd_una: int) -> bool:
        """A cumulative ack advanced ``snd_una`` by ``newly_acked`` bytes.

        Returns True when the caller should immediately retransmit the
        segment now at the head of the send queue (NewReno partial-ack
        retransmit); False otherwise.
        """
        raise NotImplementedError

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        """Register a duplicate ack; returns True when the caller should
        fast-retransmit the segment at snd_una."""
        raise NotImplementedError

    def on_timeout(self, flight_size: int) -> None:
        """RTO fired: collapse to one segment and restart slow start."""
        self.timeouts += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_fast_recovery = False
        self._acked_accum = 0

    def on_retransmit(self, offset: int, kind: str) -> None:
        """A segment at stream ``offset`` was retransmitted (``kind`` is
        ``"head"`` for fast/partial-ack retransmits, ``"rto"`` for timeout
        go-back-N).  Default: bookkeeping-free no-op."""

    def on_exit_recovery(self) -> None:
        """Fast recovery completed (the ack covered ``_recovery_point``).

        Resets ``dupacks`` so a dupack burst straddling the exit cannot
        re-trigger fast retransmit one dupack early.
        """
        self.in_fast_recovery = False
        self.dupacks = 0

    # ----------------------------------------------------------------- query

    def send_window(self, peer_window: int) -> int:
        """Usable window = min(cwnd, receiver's advertised window)."""
        return min(self.cwnd, peer_window)

    def export_state(self) -> dict:
        """Stable observability surface: algorithm name plus the window
        state every implementation shares."""
        return {
            "cc": self.name,
            "cwnd": self.cwnd,
            "ssthresh": self.ssthresh,
            "in_fast_recovery": self.in_fast_recovery,
            "fast_retransmits": self.fast_retransmits,
            "timeouts": self.timeouts,
        }

    # -------------------------------------------------------------- internal

    @property
    def now_ns(self) -> int:
        """Virtual time in ns (0 when no clock was provided)."""
        return self._clock.now if self._clock is not None else 0

    def _grow_slow_start_or_ca(self, newly_acked: int) -> None:
        """Shared Reno-style additive growth outside recovery."""
        if self.cwnd < self.ssthresh:
            # Slow start: one MSS per acked MSS (capped by bytes acked).
            self.cwnd += min(newly_acked, self.mss)
        else:
            # Congestion avoidance: ~one MSS per RTT, byte-counted.
            self._acked_accum += newly_acked
            if self._acked_accum >= self.cwnd:
                self._acked_accum -= self.cwnd
                self.cwnd += self.mss


class RenoCongestionControl(CongestionControl):
    """RFC 5681 Reno with the historical "NewReno-lite" partial-ack
    deflation this simulator has always shipped: a partial ack deflates
    cwnd but does *not* retransmit the next hole (that waits for three
    more dupacks or the RTO)."""

    name = "reno"

    def on_new_ack(self, newly_acked: int, snd_una: int) -> bool:
        self.dupacks = 0
        if self.in_fast_recovery:
            if snd_una >= self._recovery_point:
                # Full recovery: deflate to ssthresh.  CA credit from
                # before the loss event is stale against the new, smaller
                # cwnd — discard it (RFC 5681: growth restarts from the
                # post-recovery window).
                self.on_exit_recovery()
                self.cwnd = self.ssthresh
                self._acked_accum = 0
            else:
                # Partial ack: stay in recovery (NewReno-lite).
                self.cwnd = max(self.ssthresh,
                                self.cwnd - newly_acked + self.mss)
            return False
        self._grow_slow_start_or_ca(newly_acked)
        return False

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        if self.in_fast_recovery:
            # Each further dupack inflates cwnd by one MSS.
            self.cwnd += self.mss
            return False
        self.dupacks += 1
        if self.dupacks == self.DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + self.DUPACK_THRESHOLD * self.mss
            self.in_fast_recovery = True
            self._recovery_point = snd_nxt
            self.fast_retransmits += 1
            return True
        return False


class TahoeCongestionControl(CongestionControl):
    """Original Tahoe: loss (three dupacks or RTO) always collapses cwnd
    to one MSS and restarts slow start.  There is no fast-recovery
    inflation — after the fast retransmit, further dupacks are ignored
    until a new ack arrives."""

    name = "tahoe"

    def __init__(self, mss: int, initial_window_segments: int = 10,
                 clock=None):
        super().__init__(mss, initial_window_segments, clock)
        # After a fast retransmit Tahoe waits for the retransmission to be
        # acked; dupacks in that window carry no information (they predate
        # the retransmit) and must not re-trigger loss handling.
        self._await_new_ack = False

    def on_new_ack(self, newly_acked: int, snd_una: int) -> bool:
        self.dupacks = 0
        self._await_new_ack = False
        self._grow_slow_start_or_ca(newly_acked)
        return False

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        if self._await_new_ack:
            return False
        self.dupacks += 1
        if self.dupacks == self.DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.mss
            self._acked_accum = 0
            self.fast_retransmits += 1
            self._await_new_ack = True
            return True
        return False

    def on_timeout(self, flight_size: int) -> None:
        super().on_timeout(flight_size)
        self._await_new_ack = False


class NewRenoCongestionControl(CongestionControl):
    """RFC 6582 NewReno: a partial ack during fast recovery immediately
    retransmits the next hole (return True from :meth:`on_new_ack`) and
    stays in recovery until the ack covers the recovery point."""

    name = "newreno"

    def __init__(self, mss: int, initial_window_segments: int = 10,
                 clock=None):
        super().__init__(mss, initial_window_segments, clock)
        self.partial_retransmits = 0

    def on_new_ack(self, newly_acked: int, snd_una: int) -> bool:
        self.dupacks = 0
        if self.in_fast_recovery:
            if snd_una >= self._recovery_point:
                self.on_exit_recovery()
                self.cwnd = self.ssthresh
                self._acked_accum = 0
                return False
            # Partial ack: deflate by the amount acked, add back one MSS,
            # and retransmit the next hole right now (RFC 6582 Sec. 3.2).
            self.cwnd = max(self.ssthresh,
                            self.cwnd - newly_acked + self.mss)
            self.partial_retransmits += 1
            return True
        self._grow_slow_start_or_ca(newly_acked)
        return False

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        if self.in_fast_recovery:
            self.cwnd += self.mss
            return False
        self.dupacks += 1
        if self.dupacks == self.DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + self.DUPACK_THRESHOLD * self.mss
            self.in_fast_recovery = True
            self._recovery_point = snd_nxt
            self.fast_retransmits += 1
            return True
        return False

    def export_state(self) -> dict:
        state = super().export_state()
        state["partial_retransmits"] = self.partial_retransmits
        return state


class CubicCongestionControl(CongestionControl):
    """RFC 8312-style CUBIC on the simulator's virtual clock.

    Above ``ssthresh`` the window tracks the cubic
    ``W(t) = C * (t - K)^3 + W_max`` (t in seconds since the current
    congestion-avoidance epoch began, W in segments), with
    ``K = cbrt(W_max * (1 - beta) / C)`` so the curve plateaus exactly at
    the pre-loss window.  Loss multiplies the window by ``beta = 0.7``
    (versus Reno's 0.5) — the deflation ratio and the convex late-epoch
    growth are the fingerprints the CC-identification scenario keys on.

    Simplifications, deliberate and documented in docs/congestion.md:
    slow start and the fast-retransmit / recovery mechanics are
    Reno-style (no HyStart, no TCP-friendly region), growth is capped at
    one MSS per ack, and the epoch clock is the deterministic simulator
    clock — never wall time.
    """

    name = "cubic"

    BETA = 0.7          # multiplicative decrease factor
    SCALING_C = 0.4     # cubic scaling constant (segments / s^3)

    def __init__(self, mss: int, initial_window_segments: int = 10,
                 clock=None):
        super().__init__(mss, initial_window_segments, clock)
        self._w_max = 0.0          # window (in segments) at the last loss
        self._epoch_start_ns = -1  # CA epoch origin; -1 = not in an epoch
        self._k = 0.0              # seconds from epoch start to the plateau

    # ------------------------------------------------------------ epoch math

    def _begin_epoch(self) -> None:
        self._epoch_start_ns = self.now_ns
        if self._w_max > 0.0:
            self._k = (self._w_max * (1.0 - self.BETA)
                       / self.SCALING_C) ** (1.0 / 3.0)
        else:
            self._k = 0.0

    def _cubic_target(self) -> int:
        t = (self.now_ns - self._epoch_start_ns) / 1e9
        w = self.SCALING_C * (t - self._k) ** 3 + self._w_max
        return int(w * self.mss)

    def _on_loss(self) -> None:
        self._w_max = self.cwnd / self.mss
        self.ssthresh = max(int(self.cwnd * self.BETA), 2 * self.mss)
        self._epoch_start_ns = -1

    # ------------------------------------------------------------------ hooks

    def on_new_ack(self, newly_acked: int, snd_una: int) -> bool:
        self.dupacks = 0
        if self.in_fast_recovery:
            if snd_una >= self._recovery_point:
                self.on_exit_recovery()
                self.cwnd = self.ssthresh
                self._acked_accum = 0
            else:
                self.cwnd = max(self.ssthresh,
                                self.cwnd - newly_acked + self.mss)
            return False
        if self.cwnd < self.ssthresh:
            # Reno-style slow start below ssthresh.
            self.cwnd += min(newly_acked, self.mss)
            return False
        if self._epoch_start_ns < 0:
            # First CA ack of this epoch: anchor the cubic curve.  When
            # the window somehow grew past the last W_max (e.g. slow
            # start overshoot after an RTO), re-anchor on the current
            # window so the curve never pulls cwnd backwards.
            if self.cwnd / self.mss > self._w_max:
                self._w_max = self.cwnd / self.mss
            self._begin_epoch()
        target = self._cubic_target()
        if target > self.cwnd:
            # Track the cubic curve, at most one MSS per ack.
            self.cwnd = min(target, self.cwnd + self.mss)
        return False

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        if self.in_fast_recovery:
            self.cwnd += self.mss
            return False
        self.dupacks += 1
        if self.dupacks == self.DUPACK_THRESHOLD:
            self._on_loss()
            self.cwnd = self.ssthresh + self.DUPACK_THRESHOLD * self.mss
            self.in_fast_recovery = True
            self._recovery_point = snd_nxt
            self.fast_retransmits += 1
            return True
        return False

    def on_timeout(self, flight_size: int) -> None:
        self._on_loss()
        self.timeouts += 1
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_fast_recovery = False
        self._acked_accum = 0

    def on_exit_recovery(self) -> None:
        super().on_exit_recovery()
        # Congestion avoidance resumes on a fresh cubic epoch.
        self._begin_epoch()


# -------------------------------------------------------------------- registry

CC_ALGORITHMS: dict[str, type] = {}


def register_congestion_control(name: str, cls: type,
                                replace: bool = False) -> None:
    """Register a :class:`CongestionControl` subclass under ``name`` so
    ``TcpConfig(cc=name)`` (and everything plumbed above it — RunOptions,
    the CLI, campaign grids) can select it."""
    if not name or not isinstance(name, str):
        raise ValueError(f"invalid congestion-control name: {name!r}")
    if name in CC_ALGORITHMS and not replace:
        raise ValueError(f"congestion control {name!r} already registered")
    if not (isinstance(cls, type) and issubclass(cls, CongestionControl)):
        raise TypeError(f"{cls!r} is not a CongestionControl subclass")
    CC_ALGORITHMS[name] = cls


def cc_names() -> tuple:
    """Registered algorithm names, sorted (stable CLI/choices order)."""
    return tuple(sorted(CC_ALGORITHMS))


def make_congestion_control(name: str, mss: int,
                            initial_window_segments: int = 10,
                            clock=None) -> CongestionControl:
    """Instantiate the registered algorithm ``name``."""
    try:
        cls = CC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown congestion control {name!r}; "
                         f"registered: {', '.join(cc_names())}") from None
    return cls(mss, initial_window_segments, clock=clock)


register_congestion_control("tahoe", TahoeCongestionControl)
register_congestion_control("reno", RenoCongestionControl)
register_congestion_control("newreno", NewRenoCongestionControl)
register_congestion_control("cubic", CubicCongestionControl)
