"""TCP Reno congestion control: slow start, congestion avoidance, fast
retransmit / fast recovery (RFC 5681).

The backup's suppressed connection runs the *same* congestion machinery as
the primary — its cwnd evolves from the shared client acks — so at takeover
the backup's send rate is already warmed up, one of the reasons ST-TCP
failover looks like a glitch rather than a fresh slow-start.
"""

from __future__ import annotations

__all__ = ["RenoCongestionControl"]


class RenoCongestionControl:
    """Per-connection Reno state machine."""

    DUPACK_THRESHOLD = 3

    def __init__(self, mss: int, initial_window_segments: int = 10):
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 1 << 30  # "infinite" until the first loss event
        self.dupacks = 0
        self.in_fast_recovery = False
        self._recovery_point = 0   # stream offset that ends fast recovery
        self.fast_retransmits = 0
        self.timeouts = 0
        self._acked_accum = 0      # fractional cwnd growth in CA

    # ------------------------------------------------------------------ acks

    def on_new_ack(self, newly_acked: int, snd_una: int) -> None:
        """A cumulative ack advanced ``snd_una`` by ``newly_acked`` bytes."""
        self.dupacks = 0
        if self.in_fast_recovery:
            if snd_una >= self._recovery_point:
                # Full recovery: deflate to ssthresh.  CA credit from
                # before the loss event is stale against the new, smaller
                # cwnd — discard it (RFC 5681: growth restarts from the
                # post-recovery window).
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
                self._acked_accum = 0
            else:
                # Partial ack: stay in recovery (NewReno-lite).
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + self.mss)
            return
        if self.cwnd < self.ssthresh:
            # Slow start: one MSS per acked MSS (capped by bytes acked).
            self.cwnd += min(newly_acked, self.mss)
        else:
            # Congestion avoidance: ~one MSS per RTT, byte-counted.
            self._acked_accum += newly_acked
            if self._acked_accum >= self.cwnd:
                self._acked_accum -= self.cwnd
                self.cwnd += self.mss

    def on_dupack(self, flight_size: int, snd_nxt: int) -> bool:
        """Register a duplicate ack; returns True when the caller should
        fast-retransmit the segment at snd_una."""
        if self.in_fast_recovery:
            # Each further dupack inflates cwnd by one MSS.
            self.cwnd += self.mss
            return False
        self.dupacks += 1
        if self.dupacks == self.DUPACK_THRESHOLD:
            self.ssthresh = max(flight_size // 2, 2 * self.mss)
            self.cwnd = self.ssthresh + self.DUPACK_THRESHOLD * self.mss
            self.in_fast_recovery = True
            self._recovery_point = snd_nxt
            self.fast_retransmits += 1
            return True
        return False

    # --------------------------------------------------------------- timeout

    def on_timeout(self, flight_size: int) -> None:
        """RTO fired: collapse to one segment and restart slow start."""
        self.timeouts += 1
        self.ssthresh = max(flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dupacks = 0
        self.in_fast_recovery = False
        self._acked_accum = 0

    # ----------------------------------------------------------------- query

    def send_window(self, peer_window: int) -> int:
        """Usable window = min(cwnd, receiver's advertised window)."""
        return min(self.cwnd, peer_window)
