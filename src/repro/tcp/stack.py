"""Per-host TCP stack: demultiplexing, listeners, ISN generation.

ST-TCP integration points:

* :attr:`TcpStack.segment_filter` — the backup engine intercepts segments
  for tapped service ports that have no connection yet (buffering the SYN
  and early data until the primary's CONN_INIT arrives);
* :attr:`TcpStack.on_connection_accepted` — the primary engine learns about
  every accepted connection (and its ISN) so it can replicate it;
* :meth:`TcpStack.create_tap_connection` — the backup engine materializes
  the replica connection with the *primary's* ISN.
"""

from __future__ import annotations

import copy
from functools import partial
from typing import Callable, Optional

from repro.errors import PortInUseError, TcpError
from repro.net.addresses import IPAddress
from repro.net.ip import IpStack
from repro.net.packet import IPPacket, IPProtocol
from repro.sim.world import World
from repro.tcp.connection import TcpConfig, TcpConnection
from repro.tcp.segment import TcpFlags, TcpSegment, release_segment
from repro.tcp.seq import seq_add
from repro.tcp.sockets import Listener, Socket

__all__ = ["TcpStack"]

ConnKey = tuple  # (local_ip, local_port, remote_ip, remote_port)


class TcpStack:
    """All TCP endpoints of one host."""

    # Slots for the attributes the per-segment demux path reads, plus
    # ``__dict__`` so tests can still attach instrumentation.
    __slots__ = ("_world", "_ip", "name", "config", "_connections",
                 "_conn_by_value", "_listeners", "_next_ephemeral",
                 "_isn_rng", "_frozen", "segment_filter",
                 "on_connection_accepted", "segments_demuxed", "rsts_sent",
                 "__dict__", "__weakref__")

    EPHEMERAL_BASE = 49152

    def __init__(self, world: World, ip_stack: IpStack, name: str,
                 config: Optional[TcpConfig] = None):
        self._world = world
        self._ip = ip_stack
        self.name = name
        self.config = config or TcpConfig()
        self._connections: dict[ConnKey, TcpConnection] = {}
        # Demux fast path: the same connections keyed by raw int 4-tuples
        # (dst_value, dst_port, src_value, src_port).  Hashing four ints
        # beats hashing two IPAddress objects on every inbound segment.
        self._conn_by_value: dict[tuple, TcpConnection] = {}
        self._listeners: list[Listener] = []
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._isn_rng = world.rng.stream(f"tcp.isn.{name}")
        self._frozen = False
        ip_stack.register_protocol(IPProtocol.TCP, self._on_packet)

        # --- ST-TCP hooks ---
        # Return True to consume the segment before normal demux.
        self.segment_filter: Optional[
            Callable[[TcpSegment, IPAddress, IPAddress], bool]] = None
        # Called with (conn, socket, listener) for each accepted connection.
        self.on_connection_accepted: list[
            Callable[[TcpConnection, Socket, Listener], None]] = []

        self.segments_demuxed = 0
        self.rsts_sent = 0

    # ------------------------------------------------------------- queries

    def get_connection(self, local_ip: IPAddress, local_port: int,
                       remote_ip: IPAddress, remote_port: int
                       ) -> Optional[TcpConnection]:
        """Look a connection up by its 4-tuple (or None)."""
        return self._connections.get(
            (local_ip, local_port, remote_ip, remote_port))

    def has_connection(self, local_ip: IPAddress, local_port: int,
                       remote_ip: IPAddress, remote_port: int) -> bool:
        """True if the 4-tuple maps to a live connection."""
        return self.get_connection(local_ip, local_port,
                                   remote_ip, remote_port) is not None

    @property
    def connections(self) -> list[TcpConnection]:
        """Snapshot of all live connections."""
        return list(self._connections.values())

    def find_listener(self, ip: IPAddress, port: int) -> Optional[Listener]:
        """The listener covering (ip, port), honouring wildcards."""
        for listener in self._listeners:
            if listener.port == port and (listener.ip is None
                                          or listener.ip == ip):
                return listener
        return None

    # ------------------------------------------------------------ open APIs

    def listen(self, port: int, on_accept: Callable[[Socket], None],
               ip: Optional[IPAddress] = None,
               config: Optional[TcpConfig] = None) -> Listener:
        """Passive open; ``on_accept`` receives a Socket per new connection."""
        for existing in self._listeners:
            if existing.port == port and existing.ip == ip:
                raise PortInUseError(f"{self.name}: port {port} already listening")
        listener = Listener(self, ip, port, on_accept, config)
        self._listeners.append(listener)
        return listener

    def connect(self, remote_ip: IPAddress, remote_port: int,
                local_ip: Optional[IPAddress] = None,
                local_port: Optional[int] = None,
                config: Optional[TcpConfig] = None) -> Socket:
        """Active open; returns the socket immediately (SYN in flight)."""
        if local_ip is None:
            addrs = sorted(self._ip.local_addresses())
            if not addrs:
                raise TcpError(f"{self.name}: no local IP address")
            local_ip = addrs[0]
        if local_port is None:
            local_port = self._alloc_ephemeral_port(local_ip, remote_ip,
                                                    remote_port)
        conn = self._new_connection(local_ip, local_port, remote_ip,
                                    remote_port, config)
        socket = Socket(conn, on_cleanup=self._cleanup_socket)
        conn.open_active(self.generate_isn())
        return socket

    def create_tap_connection(self, local_ip: IPAddress, local_port: int,
                              remote_ip: IPAddress, remote_port: int,
                              isn: int,
                              config: Optional[TcpConfig] = None
                              ) -> tuple[TcpConnection, Socket]:
        """ST-TCP backup: build a passive connection that will accept a SYN
        from exactly one peer, answering with the *given* ISN (the
        primary's), so replica sequence numbers match the live connection."""
        conn = self._new_connection(local_ip, local_port, remote_ip,
                                    remote_port, config)
        socket = Socket(conn, on_cleanup=self._cleanup_socket)
        conn.open_passive(isn)
        return conn, socket

    def generate_isn(self) -> int:
        """Draw a random 32-bit initial sequence number."""
        return self._isn_rng.randrange(1 << 32)

    def freeze(self) -> None:
        """Host crash: stop every connection's timers, drop all processing."""
        self._frozen = True
        for conn in self._connections.values():
            for timer in (conn._rtx_timer, conn._persist_timer,
                          conn._delack_timer, conn._timewait_timer):
                timer.stop()
            # Segments queued this instant but not yet flushed die with
            # the host: a frozen stack processes nothing.  Drop the demux
            # queue's claims so pooled segments recycle instead of leaking.
            for segment in conn._rx_pending:
                release_segment(segment)
            conn._rx_pending.clear()

    # --------------------------------------------------------------- wiring

    def _alloc_ephemeral_port(self, local_ip, remote_ip, remote_port) -> int:
        for _ in range(16384):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if (local_ip, port, remote_ip, remote_port) not in self._connections:
                return port
        raise TcpError(f"{self.name}: ephemeral ports exhausted")

    def _new_connection(self, local_ip, local_port, remote_ip, remote_port,
                        config: Optional[TcpConfig]) -> TcpConnection:
        key = (local_ip, local_port, remote_ip, remote_port)
        if key in self._connections:
            raise TcpError(f"{self.name}: connection {key} already exists")
        # Shallow copy is enough: TcpConfig is a flat record of ints and
        # bools, and deepcopy dominated connection-setup cost at fleet scale.
        conn_config = copy.copy(config or self.config)
        conn = TcpConnection(
            self._world,
            name=f"{self.name}.{local_ip}:{local_port}-{remote_ip}:{remote_port}",
            local_ip=local_ip, local_port=local_port,
            remote_ip=remote_ip, remote_port=remote_port,
            config=conn_config,
            transmit=self._transmitter(local_ip, remote_ip))
        self._connections[key] = conn
        self._conn_by_value[(local_ip._value, local_port,
                             remote_ip._value, remote_port)] = conn
        return conn

    def _transmitter(self, local_ip, remote_ip):
        # partial over a bound method, not a lambda: no Python frame on
        # the per-segment transmit path, and it pickles (world snapshots).
        return partial(self._ip.send, remote_ip, IPProtocol.TCP,
                       src=local_ip)

    def _cleanup_socket(self, socket: Socket) -> None:
        conn = socket.connection
        key = (conn.local_ip, conn.local_port, conn.remote_ip, conn.remote_port)
        existing = self._connections.get(key)
        if existing is conn:
            del self._connections[key]
            del self._conn_by_value[(conn.local_ip._value, conn.local_port,
                                     conn.remote_ip._value, conn.remote_port)]

    def _remove_listener(self, listener: Listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ---------------------------------------------------------------- demux

    def _on_packet(self, packet: IPPacket) -> None:
        segment = packet.payload
        if ((type(segment) is not TcpSegment
             and not isinstance(segment, TcpSegment)) or self._frozen):
            return
        if (self.segment_filter is not None
                and self.segment_filter(segment, packet.src, packet.dst)):
            return
        self.segments_demuxed += 1
        conn = self._conn_by_value.get(
            (packet.dst._value, segment.dst_port,
             packet.src._value, segment.src_port))
        if conn is not None:
            # Per-connection per-tick batching: queue the segment and
            # flush once every event of this instant has run, so all
            # same-instant segments for one connection are processed in a
            # single coalesced pass (TcpConnection.segment_batch_arrived).
            pending = conn._rx_pending
            # The demux queue keeps the segment past this delivery event:
            # take a claim on pooled segments, dropped by the tick-end
            # flush after processing (pool.retain inlined).
            claims = segment._claims
            if claims:
                segment._claims = claims + 1
            pending.append(segment)
            if len(pending) == 1:
                # at_tick_end inlined (keep in sync): registration is a
                # bare list append, and this runs once per data segment.
                self._world.sim._tick_end.append(conn._flush_rx_batch)
            return
        listener = self.find_listener(packet.dst, segment.dst_port)
        if listener is not None and segment.syn and not segment.ack_flag:
            self._accept(listener, packet, segment)
            return
        if not segment.rst:
            self._send_rst_for(packet, segment)

    def _accept(self, listener: Listener, packet: IPPacket,
                segment: TcpSegment) -> None:
        conn = self._new_connection(packet.dst, segment.dst_port,
                                    packet.src, segment.src_port,
                                    listener.config)
        socket = Socket(conn, on_cleanup=self._cleanup_socket)
        conn.open_passive(self.generate_isn())
        listener.accepted_count += 1
        self._world.probes.fire("tcp.accept", self.name,
                                port=segment.dst_port, peer=str(packet.src))
        # Let the application install its callbacks, then notify the ST-TCP
        # primary engine, then feed the SYN (sends the SYN-ACK).
        listener.on_accept(socket)
        for callback in self.on_connection_accepted:
            callback(conn, socket, listener)
        conn.segment_arrived(segment)

    def _send_rst_for(self, packet: IPPacket, segment: TcpSegment) -> None:
        """RFC 793 reset for a segment that matches no endpoint."""
        self.rsts_sent += 1
        if segment.ack_flag:
            rst = TcpSegment(segment.dst_port, segment.src_port,
                             seq=segment.ack, ack=0, flags=TcpFlags.RST,
                             window=0)
        else:
            ack = seq_add(segment.seq, segment.seq_space)
            rst = TcpSegment(segment.dst_port, segment.src_port, seq=0,
                             ack=ack, flags=TcpFlags.RST | TcpFlags.ACK,
                             window=0)
        self._world.probes.fire("tcp.rst", self.name, "RST for unknown flow",
                                dst_port=segment.dst_port)
        self._ip.send(packet.src, IPProtocol.TCP, rst, src=packet.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TcpStack {self.name} conns={len(self._connections)} "
                f"listeners={len(self._listeners)}>")
