"""TCP segments, plus their recycle pool (see repro.net.pool for the
ownership protocol — the pool lives here rather than in repro.net.pool
because that module must not import repro.tcp)."""

from __future__ import annotations

__all__ = ["TcpFlags", "TcpSegment", "TCP_HEADER_BYTES",
           "SEGMENT_POOL", "SEGMENT_POOL_MAX",
           "acquire_segment", "release_segment"]

TCP_HEADER_BYTES = 20


class TcpFlags:
    """Flag bit masks (subset of the real header we model)."""

    SYN = 0x01
    ACK = 0x02
    FIN = 0x04
    RST = 0x08
    PSH = 0x10

    @staticmethod
    def describe(flags: int) -> str:
        """Render flag bits as e.g. 'SYN|ACK'."""
        names = []
        for bit, name in ((TcpFlags.SYN, "SYN"), (TcpFlags.ACK, "ACK"),
                          (TcpFlags.FIN, "FIN"), (TcpFlags.RST, "RST"),
                          (TcpFlags.PSH, "PSH")):
            if flags & bit:
                names.append(name)
        return "|".join(names) if names else "-"


class TcpSegment:
    """One TCP segment.

    ``seq``/``ack`` are 32-bit wire sequence numbers.  ``payload`` is real
    bytes — the simulator transfers actual data so end-to-end integrity
    (exactly-once, in-order delivery across failover) can be asserted
    byte-for-byte in tests.

    A plain slotted class rather than a dataclass: tens of thousands of
    segments are built per benchmark run and the generated dataclass
    ``__init__``/``__post_init__`` pair costs ~3x a hand-written one.
    ``size_bytes`` (header + payload) is computed once because the link
    layer reads it several times per hop.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "payload", "size_bytes", "_claims")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, window: int, payload: bytes = b""):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = payload
        self.size_bytes = TCP_HEADER_BYTES + len(payload)
        self._claims = 0  # 0 = GC-owned; >0 = pooled (see repro.net.pool)

    @property
    def syn(self) -> bool:
        """SYN flag set."""
        return bool(self.flags & TcpFlags.SYN)

    @property
    def ack_flag(self) -> bool:
        """ACK flag set."""
        return bool(self.flags & TcpFlags.ACK)

    @property
    def fin(self) -> bool:
        """FIN flag set."""
        return bool(self.flags & TcpFlags.FIN)

    @property
    def rst(self) -> bool:
        """RST flag set."""
        return bool(self.flags & TcpFlags.RST)

    @property
    def psh(self) -> bool:
        """PSH flag set."""
        return bool(self.flags & TcpFlags.PSH)

    @property
    def seq_space(self) -> int:
        """Sequence-space the segment occupies (SYN and FIN count as one)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def __str__(self) -> str:
        return (f"TCP[{self.src_port}->{self.dst_port} "
                f"{TcpFlags.describe(self.flags)} seq={self.seq} ack={self.ack} "
                f"win={self.window} len={len(self.payload)}]")


# ------------------------------------------------------------ recycle pool
#
# Same ownership protocol as repro.net.pool: _claims == 0 means GC-owned
# (plain constructor — tests, handshake paths), _claims >= 1 means pooled
# with one creator claim; holders that keep a segment past the current
# event retain, and the last release scrubs + recycles.

#: Cap on the free list (see repro.net.pool for sizing rationale).
SEGMENT_POOL_MAX = 256

#: Public: TcpConnection._make_segment inlines the pop + field writes.
SEGMENT_POOL: list[TcpSegment] = []


def acquire_segment(src_port: int, dst_port: int, seq: int, ack: int,
                    flags: int, window: int,
                    payload: bytes = b"") -> TcpSegment:
    """A managed segment (one creator claim), recycled when possible."""
    if SEGMENT_POOL:
        segment = SEGMENT_POOL.pop()
        segment.src_port = src_port
        segment.dst_port = dst_port
        segment.seq = seq
        segment.ack = ack
        segment.flags = flags
        segment.window = window
        segment.payload = payload
        segment.size_bytes = TCP_HEADER_BYTES + len(payload)
    else:
        segment = TcpSegment(src_port, dst_port, seq, ack, flags, window,
                             payload)
    segment._claims = 1
    return segment


def release_segment(segment: TcpSegment) -> None:
    """Drop one claim; at zero, scrub the payload ref and recycle."""
    claims = segment._claims
    if claims == 0:          # unmanaged: the GC owns it
        return
    if claims > 1:
        segment._claims = claims - 1
        return
    segment._claims = 0
    segment.payload = b""    # drop the (possibly large) bytes reference
    if len(SEGMENT_POOL) < SEGMENT_POOL_MAX:
        SEGMENT_POOL.append(segment)


# Register with the frame/packet pool so release_packet can cascade the
# creator claim down to the segment without importing repro.tcp there.
from repro.net.pool import _register_segment_cascade  # noqa: E402

_register_segment_cascade(TcpSegment, release_segment, SEGMENT_POOL)
