"""TCP segments."""

from __future__ import annotations

__all__ = ["TcpFlags", "TcpSegment", "TCP_HEADER_BYTES"]

TCP_HEADER_BYTES = 20


class TcpFlags:
    """Flag bit masks (subset of the real header we model)."""

    SYN = 0x01
    ACK = 0x02
    FIN = 0x04
    RST = 0x08
    PSH = 0x10

    @staticmethod
    def describe(flags: int) -> str:
        """Render flag bits as e.g. 'SYN|ACK'."""
        names = []
        for bit, name in ((TcpFlags.SYN, "SYN"), (TcpFlags.ACK, "ACK"),
                          (TcpFlags.FIN, "FIN"), (TcpFlags.RST, "RST"),
                          (TcpFlags.PSH, "PSH")):
            if flags & bit:
                names.append(name)
        return "|".join(names) if names else "-"


class TcpSegment:
    """One TCP segment.

    ``seq``/``ack`` are 32-bit wire sequence numbers.  ``payload`` is real
    bytes — the simulator transfers actual data so end-to-end integrity
    (exactly-once, in-order delivery across failover) can be asserted
    byte-for-byte in tests.

    A plain slotted class rather than a dataclass: tens of thousands of
    segments are built per benchmark run and the generated dataclass
    ``__init__``/``__post_init__`` pair costs ~3x a hand-written one.
    ``size_bytes`` (header + payload) is computed once because the link
    layer reads it several times per hop.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "payload", "size_bytes")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, window: int, payload: bytes = b""):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = payload
        self.size_bytes = TCP_HEADER_BYTES + len(payload)

    @property
    def syn(self) -> bool:
        """SYN flag set."""
        return bool(self.flags & TcpFlags.SYN)

    @property
    def ack_flag(self) -> bool:
        """ACK flag set."""
        return bool(self.flags & TcpFlags.ACK)

    @property
    def fin(self) -> bool:
        """FIN flag set."""
        return bool(self.flags & TcpFlags.FIN)

    @property
    def rst(self) -> bool:
        """RST flag set."""
        return bool(self.flags & TcpFlags.RST)

    @property
    def psh(self) -> bool:
        """PSH flag set."""
        return bool(self.flags & TcpFlags.PSH)

    @property
    def seq_space(self) -> int:
        """Sequence-space the segment occupies (SYN and FIN count as one)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def __str__(self) -> str:
        return (f"TCP[{self.src_port}->{self.dst_port} "
                f"{TcpFlags.describe(self.flags)} seq={self.seq} ack={self.ack} "
                f"win={self.window} len={len(self.payload)}]")
