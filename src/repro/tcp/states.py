"""TCP connection states (RFC 793 names)."""

from __future__ import annotations

import enum

__all__ = ["TcpState"]


class TcpState(enum.Enum):
    """The RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    @property
    def is_synchronized(self) -> bool:
        """States in which both sides have synchronized sequence numbers."""
        return self not in (TcpState.CLOSED, TcpState.LISTEN,
                            TcpState.SYN_SENT, TcpState.SYN_RCVD)

    @property
    def can_send_data(self) -> bool:
        """States in which the local side may still transmit data."""
        return self in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    @property
    def can_receive_data(self) -> bool:
        """States in which the peer may still legitimately send data."""
        return self in (TcpState.ESTABLISHED, TcpState.FIN_WAIT_1,
                        TcpState.FIN_WAIT_2)
