"""TCP connection states (RFC 793 names)."""

from __future__ import annotations

import enum

__all__ = ["TcpState"]


class TcpState(enum.Enum):
    """The RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


# Classification flags, precomputed as plain per-member attributes:
# ``state.is_synchronized`` is checked on every segment sent and received,
# and a plain attribute read is several times cheaper than a property
# call evaluating tuple membership each time.
#
# is_synchronized — both sides have synchronized sequence numbers.
# can_send_data   — the local side may still transmit data.
# can_receive_data — the peer may still legitimately send data.
for _state in TcpState:
    _state.is_synchronized = _state not in (
        TcpState.CLOSED, TcpState.LISTEN, TcpState.SYN_SENT,
        TcpState.SYN_RCVD)
    _state.can_send_data = _state in (TcpState.ESTABLISHED,
                                      TcpState.CLOSE_WAIT)
    _state.can_receive_data = _state in (TcpState.ESTABLISHED,
                                         TcpState.FIN_WAIT_1,
                                         TcpState.FIN_WAIT_2)
del _state
