"""Bulk file transfer (paper Demo 3: "a large file (about 100 MB)").

Thin specializations of the streaming pair: the server closes after
serving one file; the client records wall-clock (virtual) transfer time.
"""

from __future__ import annotations

from typing import Optional

from repro.host.host import Host
from repro.apps.streaming import StreamClient, StreamServer

__all__ = ["FileServer", "FileClient"]


class FileServer(StreamServer):
    """Serves one file per connection, then closes it."""

    def __init__(self, host: Host, name: str, port: int = 80,
                 chunk_size: int = 16384):
        super().__init__(host, name, port=port, chunk_size=chunk_size,
                         close_when_done=True)


class FileClient(StreamClient):
    """Downloads one file and reports the transfer duration."""

    def __init__(self, host: Host, name: str, server_ip, port: int = 80,
                 file_size: int = 100_000_000, monitor=None,
                 on_complete=None):
        super().__init__(host, name, server_ip, port=port,
                         total_bytes=file_size, monitor=monitor,
                         on_complete=on_complete, close_when_complete=True)
        self.started_at: Optional[int] = None

    def on_start(self) -> None:
        """Record the start time and begin the download."""
        self.started_at = self.world.sim.now
        super().on_start()

    @property
    def transfer_time_ns(self) -> Optional[int]:
        """Virtual nanoseconds from start to last byte (None if unfinished)."""
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def throughput_mbps(self) -> Optional[float]:
        """Goodput of the completed transfer in Mbps (None if unfinished)."""
        t = self.transfer_time_ns
        if not t:
            return None
        return self.total_bytes * 8 * 1e9 / t / 1e6
