"""Shared application helpers: the deterministic payload pattern.

Both replicas must emit byte-identical responses, and tests must be able
to verify end-to-end integrity across a failover.  The payload for stream
offset ``i`` is therefore a pure function of ``i``.
"""

from __future__ import annotations

__all__ = ["pattern_bytes", "verify_pattern"]

_PATTERN_PERIOD = 251  # prime, so chunk boundaries never align with it


def pattern_bytes(offset: int, length: int) -> bytes:
    """Deterministic payload bytes for stream positions
    ``[offset, offset + length)``."""
    if length <= 0:
        return b""
    return bytes((i * 7 + 13) % _PATTERN_PERIOD
                 for i in range(offset, offset + length))


def verify_pattern(offset: int, data: bytes) -> int:
    """Index of the first corrupt byte relative to ``data`` (or -1)."""
    expected = pattern_bytes(offset, len(data))
    if data == expected:
        return -1
    for i, (got, want) in enumerate(zip(data, expected)):
        if got != want:
            return i
    return min(len(data), len(expected))
