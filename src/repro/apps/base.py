"""Shared application helpers: the deterministic payload pattern.

Both replicas must emit byte-identical responses, and tests must be able
to verify end-to-end integrity across a failover.  The payload for stream
offset ``i`` is therefore a pure function of ``i``:
``(i * 7 + 13) % 251``.

Because 251 is prime (and in particular coprime to nothing that matters
here: the value depends on ``i`` only through ``i mod 251``), the whole
stream is one 251-byte sequence repeating forever.  Generating payloads
byte-by-byte was the single hottest spot in the simulator — over half the
wall-clock of a bulk transfer — so :func:`pattern_bytes` slices out of a
precomputed tiled table at C speed instead.
"""

from __future__ import annotations

__all__ = ["pattern_bytes", "verify_pattern"]

_PATTERN_PERIOD = 251  # prime, so chunk boundaries never align with it

# One full period of the pattern; value at absolute offset i is
# _TABLE[i % 251] since (i*7+13) % 251 depends only on i % 251.
_TABLE = bytes((i * 7 + 13) % _PATTERN_PERIOD for i in range(_PATTERN_PERIOD))

# A tile big enough to serve any common chunk size (TCP MSS, app chunk,
# 64 KiB socket buffers) with a single slice; larger requests fall back
# to an exact-size repetition.
_TILE = _TABLE * 512            # 128,512 bytes
_TILE_LEN = len(_TILE)


def pattern_bytes(offset: int, length: int) -> bytes:
    """Deterministic payload bytes for stream positions
    ``[offset, offset + length)``."""
    if length <= 0:
        return b""
    start = offset % _PATTERN_PERIOD
    end = start + length
    if end <= _TILE_LEN:
        return _TILE[start:end]
    reps = (end + _PATTERN_PERIOD - 1) // _PATTERN_PERIOD
    return (_TABLE * reps)[start:end]


def verify_pattern(offset: int, data: bytes) -> int:
    """Index of the first corrupt byte relative to ``data`` (or -1)."""
    expected = pattern_bytes(offset, len(data))
    if data == expected:
        return -1
    for i, (got, want) in enumerate(zip(data, expected)):
        if got != want:
            return i
    return min(len(data), len(expected))
