"""The GUI demo application, headless (paper Demos 1 and 4).

The paper's demonstration client "continually requests and receives data
from the server" and renders a pie chart of progress.  Here:

* :class:`StreamServer` — deterministic: on a ``GET <n>\\n`` request it
  streams ``n`` pattern bytes, paced purely by socket writability, so the
  primary's replica and the backup's replica emit identical streams.
* :class:`StreamClient` — sends requests, verifies payload integrity
  byte-for-byte, and feeds every arrival into a
  :class:`~repro.metrics.monitor.ClientStreamMonitor` (the "pie chart").
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.net.addresses import IPAddress
from repro.tcp.sockets import Socket
from repro.host.app import Application
from repro.host.host import Host
from repro.apps.base import pattern_bytes, verify_pattern

__all__ = ["StreamServer", "StreamClient"]


class _ServerSession:
    """Per-connection server state: request parser + response cursor."""

    def __init__(self) -> None:
        self.request_buffer = bytearray()
        self.pending_bytes = 0        # remaining bytes of current response
        self.response_offset = 0      # absolute offset in the response stream


class StreamServer(Application):
    """Deterministic request/stream server.

    Protocol: client sends ``GET <n>\\n``; server responds with exactly
    ``n`` bytes of :func:`pattern_bytes` (offsets continuing across
    requests on the same connection).  With ``close_when_done`` the server
    closes the connection after finishing one request (file-transfer
    shape, Demo 3).
    """

    def __init__(self, host: Host, name: str, port: int = 80,
                 chunk_size: int = 8192, close_when_done: bool = False):
        super().__init__(host, name)
        self.port = port
        self.chunk_size = chunk_size
        self.close_when_done = close_when_done
        self._sessions: dict[int, _ServerSession] = {}
        self.connections_accepted = 0
        self.bytes_served = 0

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.listener = self.host.tcp.listen(
            self.port, self.guard_callback(self._on_accept))

    def _on_accept(self, sock: Socket) -> None:
        self.connections_accepted += 1
        self.track_socket(sock)
        session = _ServerSession()
        self._sessions[id(sock)] = session
        # partial over bound methods, not guard_callback(lambda): these
        # run once per socket event (tens of thousands per transfer), and
        # the handlers check ``self.alive`` themselves — one frame per
        # event instead of three.
        sock.on_data = partial(self._on_data, session)
        sock.on_writable = partial(self._pump, session)
        sock.on_closed = lambda s: (self._sessions.pop(id(s), None),
                                    self.untrack_socket(s))
        sock.on_peer_closed = partial(self._on_peer_closed, session)

    def _on_data(self, session: _ServerSession, sock: Socket) -> None:
        if not self.alive:
            return
        session.request_buffer.extend(sock.read())
        while b"\n" in session.request_buffer:
            line, _, rest = bytes(session.request_buffer).partition(b"\n")
            session.request_buffer = bytearray(rest)
            self._handle_request(line, session)
        self._pump(session, sock)

    def _handle_request(self, line: bytes, session: _ServerSession) -> None:
        parts = line.strip().split()
        if len(parts) == 2 and parts[0] == b"GET":
            try:
                session.pending_bytes += int(parts[1])
            except ValueError:
                pass  # malformed request: ignore (deterministically)

    def _pump(self, session: _ServerSession, sock: Socket) -> None:
        if not self.alive:
            return
        while session.pending_bytes > 0:
            chunk = min(self.chunk_size, session.pending_bytes,
                        sock.writable_bytes)
            if chunk <= 0:
                return
            sent = sock.send(pattern_bytes(session.response_offset, chunk))
            session.response_offset += sent
            session.pending_bytes -= sent
            self.bytes_served += sent
        if (self.close_when_done and session.pending_bytes == 0
                and session.response_offset > 0 and sock.is_open):
            sock.close()

    def _on_peer_closed(self, session: _ServerSession, sock: Socket) -> None:
        if not self.alive:
            return
        # Client finished sending; finish our stream, then close.
        self._pump(session, sock)
        if session.pending_bytes == 0 and sock.is_open:
            sock.close()


class StreamClient(Application):
    """The paper's demo client: request data, watch it arrive.

    ``monitor`` (if given) receives every arrival — it is the pie chart.
    ``on_complete`` fires when ``total_bytes`` verified bytes arrived.
    """

    def __init__(self, host: Host, name: str,
                 server_ip: "IPAddress | str", port: int = 80,
                 total_bytes: int = 1_000_000,
                 request_chunk: int = 0,
                 monitor=None,
                 on_complete: Optional[Callable[[], None]] = None,
                 close_when_complete: bool = True):
        super().__init__(host, name)
        self.server_ip = IPAddress(server_ip)
        self.port = port
        self.total_bytes = total_bytes
        # 0 = one request for everything; >0 = repeated smaller requests
        # ("continually requests and receives data").
        self.request_chunk = request_chunk or total_bytes
        self.monitor = monitor
        self.on_complete = on_complete
        self.close_when_complete = close_when_complete
        self.sock: Optional[Socket] = None
        self.received = 0
        self.requested = 0
        self.corrupt_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.connected_at: Optional[int] = None
        self.reset_count = 0

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.sock = self.track_socket(
            self.host.tcp.connect(self.server_ip, self.port))
        # Wired directly (the handlers check ``self.alive`` themselves):
        # on_data fires once per delivered segment, so every wrapper
        # frame here is paid thousands of times per transfer.
        self.sock.on_connected = self._on_connected
        self.sock.on_data = self._on_data
        self.sock.on_reset = self._on_reset
        self.sock.on_peer_closed = self.guard_callback(
            lambda s: self.monitor and self.monitor.note_event("peer-closed"))

    # ------------------------------------------------------------ plumbing

    def _on_connected(self, sock: Socket) -> None:
        if not self.alive:
            return
        self.connected_at = self.world.sim.now
        if self.monitor is not None:
            self.monitor.note_event("connected")
        self._request_more(sock)

    def _request_more(self, sock: Socket) -> None:
        while self.requested < self.total_bytes:
            n = min(self.request_chunk, self.total_bytes - self.requested)
            sock.send(b"GET %d\n" % n)
            self.requested += n
            if self.request_chunk < self.total_bytes:
                break  # one outstanding chunk at a time

    def _on_data(self, sock: Socket) -> None:
        if not self.alive:
            return
        data = sock.read()
        if not data:
            return
        bad = verify_pattern(self.received, data)
        if bad >= 0 and self.corrupt_at is None:
            self.corrupt_at = self.received + bad
            self.world.trace.record("app", self.name, "payload corruption",
                                    at=self.corrupt_at)
        self.received += len(data)
        if self.monitor is not None:
            self.monitor.on_bytes(len(data))
        if (self.received >= self.requested
                and self.requested < self.total_bytes):
            self._request_more(sock)
        if self.received >= self.total_bytes and self.completed_at is None:
            self.completed_at = self.world.sim.now
            if self.monitor is not None:
                self.monitor.note_event("complete")
            if self.close_when_complete and sock.is_open:
                sock.close()
            if self.on_complete is not None:
                self.on_complete()

    def _on_reset(self, sock: Socket, reason: str) -> None:
        if not self.alive:
            return
        self.reset_count += 1
        if self.monitor is not None:
            self.monitor.note_event("reset")

    @property
    def progress(self) -> float:
        """Fraction of the transfer received — the pie chart angle."""
        if self.total_bytes == 0:
            return 1.0
        return min(1.0, self.received / self.total_bytes)
