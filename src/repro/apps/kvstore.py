"""A deterministic key-value store — a *stateful* ST-TCP service.

The streaming/file servers are stateless request-responders; this app
shows the stronger property ST-TCP's determinism assumption buys: the
replica's *application state* (the whole store) stays consistent with the
primary's, because state is a pure function of the input byte stream.
After failover the backup answers reads for keys written before the crash.

Wire protocol (text, line-oriented — one command per line):

    SET <key> <value>\\n   ->  OK\\n
    GET <key>\\n           ->  VALUE <value>\\n   |  MISSING\\n
    DEL <key>\\n           ->  OK\\n              |  MISSING\\n
    KEYS\\n                ->  COUNT <n>\\n

Keys and values are ASCII tokens without whitespace.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import IPAddress
from repro.tcp.sockets import Socket
from repro.host.app import Application
from repro.host.host import Host

__all__ = ["KvServer", "KvClient"]


class KvServer(Application):
    """The replicated store.  Deterministic: output and state depend only
    on the input command stream."""

    def __init__(self, host: Host, name: str, port: int = 6379):
        super().__init__(host, name)
        self.port = port
        self.store: dict[bytes, bytes] = {}
        self.commands_processed = 0

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.listener = self.host.tcp.listen(
            self.port, self.guard_callback(self._on_accept))

    def _on_accept(self, sock: Socket) -> None:
        self.track_socket(sock)
        inbox = bytearray()
        outbox = bytearray()

        def pump(s: Socket) -> None:
            """Drain queued replies respecting backpressure."""
            while outbox and s.is_open and s.writable_bytes > 0:
                sent = s.send(bytes(outbox[:8192]))
                if sent == 0:
                    return
                del outbox[:sent]

        def on_data(s: Socket) -> None:
            """Parse complete command lines and execute them."""
            inbox.extend(s.read())
            while b"\n" in inbox:
                line, _, rest = bytes(inbox).partition(b"\n")
                inbox[:] = rest
                outbox.extend(self._execute(line.strip()))
            pump(s)

        sock.on_data = self.guard_callback(on_data)
        sock.on_writable = self.guard_callback(pump)
        sock.on_closed = lambda s: self.untrack_socket(s)

    def _execute(self, line: bytes) -> bytes:
        self.commands_processed += 1
        parts = line.split()
        if not parts:
            return b"ERR empty\n"
        verb = parts[0].upper()
        if verb == b"SET" and len(parts) == 3:
            self.store[parts[1]] = parts[2]
            return b"OK\n"
        if verb == b"GET" and len(parts) == 2:
            value = self.store.get(parts[1])
            return b"MISSING\n" if value is None else b"VALUE %s\n" % value
        if verb == b"DEL" and len(parts) == 2:
            if self.store.pop(parts[1], None) is None:
                return b"MISSING\n"
            return b"OK\n"
        if verb == b"KEYS" and len(parts) == 1:
            return b"COUNT %d\n" % len(self.store)
        return b"ERR bad command\n"


class KvClient(Application):
    """Issues a scripted command sequence, one at a time, collecting the
    replies.  ``on_complete`` fires when every reply has arrived."""

    def __init__(self, host: Host, name: str, server_ip: "IPAddress | str",
                 port: int = 6379, commands: Optional[list[bytes]] = None,
                 interval_ns: int = 5_000_000,
                 on_complete: Optional[Callable[[], None]] = None):
        super().__init__(host, name)
        self.server_ip = IPAddress(server_ip)
        self.port = port
        self.commands = list(commands or [])
        self.interval_ns = interval_ns
        self.on_complete = on_complete
        self.replies: list[bytes] = []
        self.sock: Optional[Socket] = None
        self.reset_count = 0
        self._next_command = 0
        self._inbox = bytearray()

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.sock = self.track_socket(
            self.host.tcp.connect(self.server_ip, self.port))
        self.sock.on_connected = self.guard_callback(self._begin)
        self.sock.on_data = self.guard_callback(self._on_data)
        self.sock.on_reset = self.guard_callback(
            lambda s, r: setattr(self, "reset_count", self.reset_count + 1))

    def _begin(self, _sock: Socket) -> None:
        self.every(self.interval_ns, self._send_next, fire_immediately=True)

    def _send_next(self) -> None:
        if (self._next_command >= len(self.commands)
                or self.sock is None or not self.sock.is_open):
            return
        # One outstanding command at a time keeps replies unambiguous.
        if self._next_command > len(self.replies):
            return
        command = self.commands[self._next_command]
        self.sock.send(command.rstrip(b"\n") + b"\n")
        self._next_command += 1

    def _on_data(self, sock: Socket) -> None:
        self._inbox.extend(sock.read())
        while b"\n" in self._inbox:
            line, _, rest = bytes(self._inbox).partition(b"\n")
            self._inbox[:] = rest
            self.replies.append(line)
        if (len(self.replies) >= len(self.commands)
                and self.on_complete is not None):
            callback, self.on_complete = self.on_complete, None
            callback()

    @property
    def done(self) -> bool:
        """True once every command has been answered."""
        return len(self.replies) >= len(self.commands)
