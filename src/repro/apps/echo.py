"""Echo service: the smallest deterministic server, plus an interactive
client that measures request/response round trips.

Useful for the failure-free overhead experiments (per-RTT view rather than
bulk throughput) and as the canonical "client also sends data" workload —
the case where ST-TCP's client-byte lag detection is strongest (Sec. 4.3).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import IPAddress
from repro.tcp.sockets import Socket
from repro.host.app import Application
from repro.host.host import Host

__all__ = ["EchoServer", "EchoClient"]


class EchoServer(Application):
    """Echoes every received byte back, with correct backpressure."""

    def __init__(self, host: Host, name: str, port: int = 7):
        super().__init__(host, name)
        self.port = port
        self.bytes_echoed = 0

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.listener = self.host.tcp.listen(
            self.port, self.guard_callback(self._on_accept))

    def _on_accept(self, sock: Socket) -> None:
        self.track_socket(sock)
        pending = bytearray()

        def pump(s: Socket) -> None:
            """Drain pending bytes respecting backpressure."""
            # writable_bytes is 0 once the socket is closed or closing, so
            # a late arrival (e.g. ST-TCP fetch injection) cannot trigger a
            # write-after-close.
            while pending and s.writable_bytes > 0:
                sent = s.send(bytes(pending[:8192]))
                if sent == 0:
                    return
                del pending[:sent]
                self.bytes_echoed += sent

        def on_data(s: Socket) -> None:
            """Consume received bytes and echo them back."""
            pending.extend(s.read())
            pump(s)

        def on_peer_closed(s: Socket) -> None:
            """Flush remaining bytes, then close our half."""
            pump(s)
            if not pending and s.is_open:
                s.close()

        sock.on_data = self.guard_callback(on_data)
        sock.on_writable = self.guard_callback(pump)
        sock.on_peer_closed = self.guard_callback(on_peer_closed)
        sock.on_closed = lambda s: self.untrack_socket(s)


class EchoClient(Application):
    """Sends a fixed-size message every ``interval_ns`` and measures the
    round-trip time of each echo."""

    def __init__(self, host: Host, name: str, server_ip: "IPAddress | str",
                 port: int = 7, message_size: int = 64,
                 interval_ns: int = 10_000_000, count: int = 100,
                 on_complete: Optional[Callable[[], None]] = None):
        super().__init__(host, name)
        self.server_ip = IPAddress(server_ip)
        self.port = port
        self.message_size = message_size
        self.interval_ns = interval_ns
        self.count = count
        self.on_complete = on_complete
        self.rtts_ns: list[int] = []
        self.sock: Optional[Socket] = None
        self.reset_count = 0
        self._sent = 0
        self._echoed_bytes = 0
        self._send_times: list[int] = []
        self._outbox = bytearray()   # queued but not yet accepted by TCP

    def on_start(self) -> None:
        """Open the listener / client connection."""
        self.sock = self.track_socket(
            self.host.tcp.connect(self.server_ip, self.port))
        self.sock.on_connected = self.guard_callback(self._begin)
        self.sock.on_data = self.guard_callback(self._on_data)
        self.sock.on_reset = self.guard_callback(self._on_reset)
        self.sock.on_writable = self.guard_callback(self._pump)

    def _begin(self, _sock: Socket) -> None:
        self.every(self.interval_ns, self._send_one, fire_immediately=True)

    def _send_one(self) -> None:
        if self._sent >= self.count or self.sock is None:
            return
        if not self.sock.is_open:
            return
        self._send_times.append(self.world.sim.now)
        self._outbox.extend(bytes(self.message_size))
        self._sent += 1
        self._pump(self.sock)

    def _pump(self, sock: Socket) -> None:
        """Drain the outbox respecting TCP backpressure (partial sends)."""
        while self._outbox and sock.is_open and sock.writable_bytes > 0:
            accepted = sock.send(bytes(self._outbox[:8192]))
            if accepted == 0:
                return
            del self._outbox[:accepted]

    def _on_reset(self, _sock: Socket, _reason: str) -> None:
        self.reset_count += 1

    def _on_data(self, sock: Socket) -> None:
        self._echoed_bytes += len(sock.read())
        while (len(self.rtts_ns) < len(self._send_times)
               and self._echoed_bytes
               >= (len(self.rtts_ns) + 1) * self.message_size):
            sent_at = self._send_times[len(self.rtts_ns)]
            self.rtts_ns.append(self.world.sim.now - sent_at)
        if len(self.rtts_ns) >= self.count:
            if self.sock is not None and self.sock.is_open:
                self.sock.close()
            if self.on_complete is not None:
                self.on_complete()

    @property
    def mean_rtt_ns(self) -> Optional[float]:
        """Mean echo round-trip time in nanoseconds (None if no samples)."""
        return (sum(self.rtts_ns) / len(self.rtts_ns)
                if self.rtts_ns else None)
