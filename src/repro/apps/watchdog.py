"""Application watchdog — the paper's Sec. 4.2.2 extension.

"an application can support a watchdog mechanism where the application
continually sends a heartbeat to a watchdog. The watchdog monitors the
application health and informs ST-TCP in case of any failure suspicion."

This closes the one detection gap ST-TCP admits: an application failure
with a FIN on an otherwise idle connection cannot be distinguished from a
normal close using TCP-layer information alone.  With a watchdog, the
local engine learns of the failure directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.timers import PeriodicTimer
from repro.sim.world import World
from repro.host.app import Application

__all__ = ["ApplicationWatchdog"]


class ApplicationWatchdog:
    """Monitors one application's liveness pulses.

    The application (or the harness on its behalf) calls :meth:`pet`
    periodically; if ``miss_threshold`` periods elapse without a pulse,
    ``on_failure_suspicion`` fires exactly once.  ``auto_pet=True`` wires a
    pulse generator that follows ``app.is_alive`` — convenient for the
    simulated apps, whose "health" is exactly their liveness flag.
    """

    def __init__(self, world: World, app: Application,
                 on_failure_suspicion: Callable[[Application], None],
                 period_ns: int = 100_000_000, miss_threshold: int = 3,
                 auto_pet: bool = True):
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self._world = world
        self.app = app
        self.on_failure_suspicion = on_failure_suspicion
        self.period_ns = period_ns
        self.miss_threshold = miss_threshold
        self._last_pet: Optional[int] = None
        self._started_at: Optional[int] = None
        self._fired = False
        self._check_timer = PeriodicTimer(world.sim, self._check, period_ns,
                                          label=f"wd.{app.name}.check")
        self._pet_timer: Optional[PeriodicTimer] = None
        if auto_pet:
            self._pet_timer = PeriodicTimer(world.sim, self._auto_pet,
                                            period_ns,
                                            label=f"wd.{app.name}.pet")

    def start(self) -> None:
        """Begin monitoring (and auto-petting, if enabled)."""
        self._started_at = self._world.sim.now
        self._check_timer.start()
        if self._pet_timer is not None:
            self._pet_timer.start(fire_immediately=True)

    def stop(self) -> None:
        """Stop all watchdog timers."""
        self._check_timer.stop()
        if self._pet_timer is not None:
            self._pet_timer.stop()

    def pet(self) -> None:
        """The application's liveness pulse."""
        self._last_pet = self._world.sim.now

    def _auto_pet(self) -> None:
        if self.app.is_alive:
            self.pet()

    @property
    def suspicious(self) -> bool:
        """True once a failure suspicion has fired."""
        return self._fired

    def _check(self) -> None:
        if self._fired or self._started_at is None:
            return
        baseline = self._last_pet if self._last_pet is not None \
            else self._started_at
        if (self._world.sim.now - baseline
                > self.miss_threshold * self.period_ns):
            self._fired = True
            self._world.probes.fire("detect.watchdog", f"wd.{self.app.name}",
                                    "application failure suspicion")
            self.on_failure_suspicion(self.app)
