"""Deterministic applications used by the paper's five demonstrations."""

from repro.apps.base import pattern_bytes, verify_pattern
from repro.apps.echo import EchoClient, EchoServer
from repro.apps.filetransfer import FileClient, FileServer
from repro.apps.kvstore import KvClient, KvServer
from repro.apps.streaming import StreamClient, StreamServer
from repro.apps.watchdog import ApplicationWatchdog

__all__ = [
    "ApplicationWatchdog",
    "EchoClient",
    "EchoServer",
    "FileClient",
    "FileServer",
    "KvClient",
    "KvServer",
    "StreamClient",
    "StreamServer",
    "pattern_bytes",
    "verify_pattern",
]
