"""Canned experiment runners — one call per paper demo.

Each runner builds the Figure-2 testbed, wires the workload, injects the
scenario's fault, runs to quiescence, and returns a structured result the
tests and benchmarks share.  Keeping these here means a benchmark, a test
and an example all measure *the same* experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.core import NS_PER_S, seconds
from repro.apps.streaming import StreamClient, StreamServer
from repro.check.oracle import (CheckTopology, InvariantOracle,
                                InvariantViolationError)
from repro.faults.faults import Fault
from repro.metrics.monitor import ClientStreamMonitor
from repro.metrics.timeline import FailoverTimeline, build_timeline
from repro.obs.export import ObsSession
from repro.scenarios.baselines import ReconnectingStreamClient
from repro.scenarios.builder import Testbed, build_testbed
from repro.scenarios.options import RunOptions
from repro.sttcp.config import SttcpConfig

__all__ = ["FailoverResult", "run_failover_experiment",
           "run_baseline_failover", "BaselineResult"]


@dataclass
class FailoverResult:
    """Everything a failover experiment produces."""

    testbed: Testbed
    client: StreamClient
    monitor: ClientStreamMonitor
    timeline: FailoverTimeline
    fault_description: str
    #: Attached when the experiment ran with ``obs_level`` set; call
    #: ``.write(out_dir)`` to export (see ``docs/observability.md``).
    obs: Optional[ObsSession] = None
    #: Attached when the experiment ran with ``check=True``; zero
    #: violations on a clean run (see ``docs/invariants.md``).
    oracle: Optional[InvariantOracle] = None

    @property
    def stream_intact(self) -> bool:
        """The headline ST-TCP property: every byte arrived exactly once,
        in order, uncorrupted, with no connection reset."""
        return (self.client.received == self.client.total_bytes
                and self.client.corrupt_at is None
                and self.client.reset_count == 0)

    @property
    def glitch_ns(self) -> Optional[int]:
        """Client-visible service interruption around the fault."""
        if self.timeline.fault_at is None:
            return None
        stall = self.monitor.largest_gap_after(self.timeline.fault_at)
        return stall[2] if stall else None


def run_failover_experiment(
        make_fault: Callable[[Testbed, StreamServer, StreamServer], Fault],
        total_bytes: int = 50_000_000,
        fault_at_s: float = 2.0,
        config: Optional[SttcpConfig] = None,
        request_chunk: int = 0,
        options: Optional[RunOptions] = None,
        testbed: Optional[Testbed] = None,
        **build_kwargs) -> FailoverResult:
    """The canonical Demo 1/2/4/5 shape: stream data, break something,
    verify the client never notices more than a glitch.

    ``testbed`` skips the build entirely and runs the experiment on the
    supplied (pristine, correctly-seeded) testbed — the warm-trial path
    (:mod:`repro.campaign.warm`) passes thawed snapshots here.  The caller
    owns the seed/config/cc match; ``build_kwargs`` are ignored.

    ``options`` (:class:`~repro.scenarios.options.RunOptions`) is the one
    shared knob surface for seed / run length / observability / checking /
    congestion control; there are no per-keyword shims any more.

    With ``options.obs_level`` set (one of
    :data:`repro.obs.export.OBS_LEVELS`) an
    :class:`~repro.obs.export.ObsSession` is attached for the whole run
    and returned on the result, already finalized against the failover
    timeline.

    ``options.check=True`` attaches the
    :class:`~repro.check.oracle.InvariantOracle` (with full wire-topology
    hints) for the whole run and raises
    :class:`~repro.check.oracle.InvariantViolationError` if any invariant
    in ``docs/invariants.md`` is breached."""
    opts = options if options is not None else RunOptions()
    if testbed is not None:
        tb = testbed
    else:
        build_kwargs.setdefault("trace_categories", opts.trace_categories)
        tb = build_testbed(seed=opts.seed, config=config, cc=opts.cc,
                           **build_kwargs)
    obs = ObsSession(tb.world, level=opts.obs_level) if opts.obs_level else None
    oracle = (InvariantOracle(tb.world, CheckTopology.from_testbed(tb))
              .attach() if opts.check else None)
    server_primary = StreamServer(tb.primary, "server-primary", port=80)
    server_backup = StreamServer(tb.backup, "server-backup", port=80)
    server_primary.start()
    server_backup.start()
    tb.pair.start()
    monitor = ClientStreamMonitor(tb.world)
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=total_bytes, monitor=monitor,
                          request_chunk=request_chunk)
    client.start()
    fault = make_fault(tb, server_primary, server_backup)
    fault_at = seconds(fault_at_s)
    tb.inject.at(fault_at, fault)
    tb.run_until(opts.run_until_s)
    timeline = build_timeline(fault_at, tb.pair.backup.events,
                              tb.pair.primary.events, monitor)
    if obs is not None:
        obs.finalize(timeline=timeline)
    if oracle is not None:
        oracle.detach()
        if oracle.violations:
            raise InvariantViolationError(oracle.violations)
    return FailoverResult(tb, client, monitor, timeline, fault.description,
                          obs=obs, oracle=oracle)


@dataclass
class BaselineResult:
    """Outcome of the no-ST-TCP hot-standby baseline."""

    testbed: Testbed
    client: ReconnectingStreamClient
    monitor: ClientStreamMonitor
    fault_at: int
    obs: Optional[ObsSession] = None
    oracle: Optional[InvariantOracle] = None
    #: Fault marker + monitor-derived resumption (no engine events in a
    #: baseline world); what the ObsSession was finalized against.
    timeline: Optional[FailoverTimeline] = None

    @property
    def disruption_ns(self) -> Optional[int]:
        """Client-visible outage around the fault (largest stall)."""
        stall = self.monitor.largest_gap_after(self.fault_at)
        return stall[2] if stall else None


def run_baseline_failover(total_bytes: int = 50_000_000,
                          fault_at_s: float = 2.0,
                          liveness_timeout_s: float = 2.0,
                          options: Optional[RunOptions] = None,
                          testbed: Optional[Testbed] = None,
                          **build_kwargs) -> BaselineResult:
    """Demo 1's counterfactual: hot standby, no ST-TCP.

    The standby runs the same server app on its own address; the client
    must detect the outage itself (application timeout), reconnect, and
    re-request.  The fault is a HW crash of the primary.

    ``options`` is the shared :class:`~repro.scenarios.options.RunOptions`
    surface (no per-keyword shims).

    ``options.check=True`` attaches the invariant oracle *without*
    topology hints — in a plain hot-standby world the standby is entitled
    to speak on the service port, so the ST-TCP wire-role invariants do
    not apply."""
    from repro.faults.faults import HwCrash

    opts = options if options is not None else RunOptions()
    if testbed is not None:
        tb = testbed
    else:
        build_kwargs.setdefault("trace_categories", opts.trace_categories)
        tb = build_testbed(seed=opts.seed, mode="baseline", cc=opts.cc,
                           **build_kwargs)
    obs = ObsSession(tb.world, level=opts.obs_level) if opts.obs_level else None
    oracle = InvariantOracle(tb.world).attach() if opts.check else None
    StreamServer(tb.primary, "server-primary", port=80).start()
    StreamServer(tb.backup, "server-backup", port=80).start()
    monitor = ClientStreamMonitor(tb.world)
    client = ReconnectingStreamClient(
        tb.client, "client",
        addresses=[tb.addresses.primary_ip, tb.addresses.backup_ip],
        port=80, total_bytes=total_bytes,
        liveness_timeout_ns=round(liveness_timeout_s * NS_PER_S),
        monitor=monitor)
    client.start()
    fault_at = seconds(fault_at_s)
    tb.inject.at(fault_at, HwCrash(tb.primary))
    tb.run_until(opts.run_until_s)
    # The baseline has no ST-TCP engine events, but its export must still
    # carry the fault marker (and the stall-derived resumption) so ST-TCP
    # and baseline artifacts line up side by side.
    timeline = build_timeline(fault_at, None, None, monitor)
    if obs is not None:
        obs.finalize(timeline=timeline)
    if oracle is not None:
        oracle.detach()
        if oracle.violations:
            raise InvariantViolationError(oracle.violations)
    return BaselineResult(tb, client, monitor, fault_at, obs=obs,
                          oracle=oracle, timeline=timeline)
