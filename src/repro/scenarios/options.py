"""One options surface for every experiment runner.

Before this module each runner (and each CLI demo) grew its own ad-hoc
keyword set — ``seed=...``, ``obs_level=...``, ``check=...``,
``run_until_s=...`` — repeated and occasionally drifting.  A single
:class:`RunOptions` value now travels through
:func:`repro.scenarios.runner.run_failover_experiment`,
:func:`repro.scenarios.runner.run_baseline_failover`,
:func:`repro.workloads.runner.run_workload_failover` and the CLI, so an
experiment's "how to run" is one composable object instead of a keyword
cloud.  ``options=RunOptions(...)`` is the only run API: the old
per-runner keyword shims (and their ``resolve_run_options`` merger) were
removed after their deprecation release.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.obs.export import OBS_LEVELS
from repro.tcp.congestion import CC_ALGORITHMS

__all__ = ["RunOptions", "DEFAULT_TRACE_CATEGORIES"]

# Tight enough for long benchmarks, rich enough to debug failures.  The
# canonical definition lives here; ``repro.scenarios.builder`` re-exports
# it for back compatibility.
DEFAULT_TRACE_CATEGORIES = frozenset(
    {"fault", "power", "detect", "sttcp", "app"})


@dataclass(frozen=True)
class RunOptions:
    """How to run an experiment — everything that is not *what* to run.

    ``seed``
        World RNG seed; equal seeds give byte-identical runs.
    ``run_until_s``
        Absolute virtual time to run the world to.
    ``obs_level``
        ``None`` (no observability session) or one of
        :data:`repro.obs.export.OBS_LEVELS`; when set, the runner attaches
        an :class:`~repro.obs.export.ObsSession` and returns it finalized.
    ``check``
        Attach the :class:`~repro.check.oracle.InvariantOracle` for the
        whole run and raise on any violation.
    ``cc``
        Congestion-control algorithm for every TCP endpoint in the
        testbed: ``None`` (keep whatever the supplied ``TcpConfig`` says —
        the default config says ``"reno"``) or a registered name from
        :func:`repro.tcp.congestion.cc_names`.
    ``trace_categories``
        Trace-log category filter handed to the testbed builder
        (``None`` records everything).
    ``gc_freeze``
        After the testbed is built (or supplied), collect once and
        ``gc.freeze()`` the surviving heap into the permanent generation
        (:func:`repro.sim.gcctl.freeze_baseline`).  Only for runs whose
        testbed lives until the process exits — benchmarks, one-shot CLI
        experiments; frozen cycles are never reclaimed, so per-trial
        loops must leave this off.
    """

    seed: int = 3
    run_until_s: float = 60.0
    obs_level: Optional[str] = None
    check: bool = False
    cc: Optional[str] = None
    trace_categories: Optional[frozenset] = field(
        default_factory=lambda: DEFAULT_TRACE_CATEGORIES)
    gc_freeze: bool = False

    def __post_init__(self) -> None:
        if self.obs_level is not None and self.obs_level not in OBS_LEVELS:
            raise ValueError(
                f"obs_level must be None or one of {OBS_LEVELS}, "
                f"got {self.obs_level!r}")
        if self.cc is not None and self.cc not in CC_ALGORITHMS:
            raise ValueError(
                f"cc must be None or one of "
                f"{sorted(CC_ALGORITHMS)}, got {self.cc!r}")

    def with_(self, **changes) -> "RunOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
