"""One options surface for every experiment runner.

Before this module each runner (and each CLI demo) grew its own ad-hoc
keyword set — ``seed=...``, ``obs_level=...``, ``check=...``,
``run_until_s=...`` — repeated and occasionally drifting.  A single
:class:`RunOptions` value now travels through
:func:`repro.scenarios.runner.run_failover_experiment`,
:func:`repro.scenarios.runner.run_baseline_failover`,
:func:`repro.workloads.runner.run_workload_failover` and the CLI, so an
experiment's "how to run" is one composable object instead of a keyword
cloud.

The old per-runner keywords still work: each runner accepts them as thin
back-compat shims (deprecated — prefer ``options=RunOptions(...)``) and
folds explicitly-passed values over the supplied options via
:func:`resolve_run_options`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.obs.export import OBS_LEVELS

__all__ = ["RunOptions", "resolve_run_options", "DEFAULT_TRACE_CATEGORIES"]

# Tight enough for long benchmarks, rich enough to debug failures.  The
# canonical definition lives here; ``repro.scenarios.builder`` re-exports
# it for back compatibility.
DEFAULT_TRACE_CATEGORIES = frozenset(
    {"fault", "power", "detect", "sttcp", "app"})


@dataclass(frozen=True)
class RunOptions:
    """How to run an experiment — everything that is not *what* to run.

    ``seed``
        World RNG seed; equal seeds give byte-identical runs.
    ``run_until_s``
        Absolute virtual time to run the world to.
    ``obs_level``
        ``None`` (no observability session) or one of
        :data:`repro.obs.export.OBS_LEVELS`; when set, the runner attaches
        an :class:`~repro.obs.export.ObsSession` and returns it finalized.
    ``check``
        Attach the :class:`~repro.check.oracle.InvariantOracle` for the
        whole run and raise on any violation.
    ``trace_categories``
        Trace-log category filter handed to the testbed builder
        (``None`` records everything).
    """

    seed: int = 3
    run_until_s: float = 60.0
    obs_level: Optional[str] = None
    check: bool = False
    trace_categories: Optional[frozenset] = field(
        default_factory=lambda: DEFAULT_TRACE_CATEGORIES)

    def __post_init__(self) -> None:
        if self.obs_level is not None and self.obs_level not in OBS_LEVELS:
            raise ValueError(
                f"obs_level must be None or one of {OBS_LEVELS}, "
                f"got {self.obs_level!r}")

    def with_(self, **changes) -> "RunOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


def resolve_run_options(options: Optional[RunOptions] = None,
                        **legacy) -> RunOptions:
    """Merge deprecated per-runner keywords over an options object.

    ``legacy`` holds the runner's old keyword arguments with ``None``
    meaning "not passed"; any non-``None`` value overrides the
    corresponding :class:`RunOptions` field, so old call sites keep their
    exact behaviour while new ones pass ``options=`` alone.
    """
    opts = options if options is not None else RunOptions()
    overrides = {key: value for key, value in legacy.items()
                 if value is not None}
    return replace(opts, **overrides) if overrides else opts
