"""Scenario construction: the Figure-2 testbed, canned experiment runners,
the shared :class:`RunOptions` surface, and the non-ST-TCP baselines.

This module is the public face of the experiment layer: build a testbed
with :func:`build_testbed` (``mode="sttcp"`` / ``"baseline"``,
``num_clients=N``), run a canned experiment with
:func:`run_failover_experiment` / :func:`run_baseline_failover`, and
steer any runner with one :class:`RunOptions` value.  Many-connection
workloads live next door in :mod:`repro.workloads`.
"""

from repro.scenarios.baselines import ReconnectingStreamClient
from repro.scenarios.builder import (
    DEFAULT_TRACE_CATEGORIES,
    Addresses,
    LoggerAttachment,
    Testbed,
    build_testbed,
)
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import (
    BaselineResult,
    FailoverResult,
    run_baseline_failover,
    run_failover_experiment,
)

__all__ = [
    "Addresses",
    "BaselineResult",
    "DEFAULT_TRACE_CATEGORIES",
    "FailoverResult",
    "LoggerAttachment",
    "ReconnectingStreamClient",
    "RunOptions",
    "Testbed",
    "build_testbed",
    "run_baseline_failover",
    "run_failover_experiment",
]
