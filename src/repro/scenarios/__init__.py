"""Scenario construction: the Figure-2 testbed, canned experiment runners,
and the non-ST-TCP baselines."""

from repro.scenarios.baselines import ReconnectingStreamClient
from repro.scenarios.builder import (
    DEFAULT_TRACE_CATEGORIES,
    Addresses,
    Testbed,
    build_testbed,
)
from repro.scenarios.runner import (
    BaselineResult,
    FailoverResult,
    run_baseline_failover,
    run_failover_experiment,
)

__all__ = [
    "Addresses",
    "BaselineResult",
    "DEFAULT_TRACE_CATEGORIES",
    "FailoverResult",
    "ReconnectingStreamClient",
    "Testbed",
    "build_testbed",
    "run_baseline_failover",
    "run_failover_experiment",
]
