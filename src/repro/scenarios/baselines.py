"""Baselines for Demo 1 and Demo 3.

The paper's Demo 1 explicitly contrasts ST-TCP with the state of the art:
"in the absence of ST-TCP, even if a hot backup is available, the failure
of the server would lead to a disruption in the service and the client
would have to re-connect".  :class:`ReconnectingStreamClient` implements
that client: an application-level liveness timeout, a reconnect to the
standby's address, and an application-level resume (re-requesting the
remainder) — everything ST-TCP makes unnecessary.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import IPAddress
from repro.sim.timers import PeriodicTimer
from repro.tcp.sockets import Socket
from repro.host.app import Application
from repro.host.host import Host
from repro.apps.base import verify_pattern

__all__ = ["ReconnectingStreamClient"]


class ReconnectingStreamClient(Application):
    """A client for a *non*-fault-tolerant hot-standby deployment.

    Talks the same ``GET <n>\\n`` protocol as
    :class:`~repro.apps.streaming.StreamClient`, but watches for service
    silence itself: after ``liveness_timeout_ns`` without data it aborts
    the connection and reconnects to the next address in ``addresses``,
    re-requesting the remaining bytes (the application-level resume a
    pre-ST-TCP deployment needs).

    Note the inherent costs ST-TCP removes, all measurable here:

    * the client must *implement* failover (extra application logic);
    * detection costs a full application timeout (seconds, conservative);
    * the response stream restarts at a connection boundary — payload
      verification must be offset-aware across connections.
    """

    def __init__(self, host: Host, name: str,
                 addresses: list["IPAddress | str"], port: int = 80,
                 total_bytes: int = 1_000_000,
                 liveness_timeout_ns: int = 2_000_000_000,
                 monitor=None,
                 on_complete: Optional[Callable[[], None]] = None):
        super().__init__(host, name)
        self.addresses = [IPAddress(a) for a in addresses]
        self.port = port
        self.total_bytes = total_bytes
        self.liveness_timeout_ns = liveness_timeout_ns
        self.monitor = monitor
        self.on_complete = on_complete
        self.sock: Optional[Socket] = None
        self.received = 0            # verified bytes across all connections
        self.corrupt_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.reconnect_count = 0
        self.reset_count = 0
        self._address_index = 0
        self._conn_received = 0      # bytes on the current connection
        self._last_data_at = 0
        self._watchdog: Optional[PeriodicTimer] = None
        self._connecting = False

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        """Arm the liveness watchdog and open the first connection."""
        self._last_data_at = self.world.sim.now
        self._watchdog = self.every(self.liveness_timeout_ns // 4,
                                    self._check_liveness)
        self._connect()

    def _connect(self) -> None:
        address = self.addresses[self._address_index % len(self.addresses)]
        self._connecting = True
        self._conn_received = 0
        self.sock = self.track_socket(
            self.host.tcp.connect(address, self.port))
        self.sock.on_connected = self.guard_callback(self._on_connected)
        self.sock.on_data = self.guard_callback(self._on_data)
        self.sock.on_reset = self.guard_callback(self._on_reset)
        if self.monitor is not None:
            self.monitor.note_event("connect-attempt")

    def _on_connected(self, sock: Socket) -> None:
        self._connecting = False
        self._last_data_at = self.world.sim.now
        if self.monitor is not None:
            self.monitor.note_event("connected")
        remaining = self.total_bytes - self.received
        if remaining > 0:
            sock.send(b"GET %d\n" % remaining)

    # ------------------------------------------------------------- data path

    def _on_data(self, sock: Socket) -> None:
        data = sock.read()
        if not data:
            return
        self._last_data_at = self.world.sim.now
        # The standby's response stream restarts at offset 0 of *its*
        # connection; globally we verify against the resumed position.
        bad = verify_pattern(self._conn_received, data)
        if bad >= 0 and self.corrupt_at is None:
            self.corrupt_at = self.received + bad
        self._conn_received += len(data)
        self.received += len(data)
        if self.monitor is not None:
            self.monitor.on_bytes(len(data))
        if self.received >= self.total_bytes and self.completed_at is None:
            self.completed_at = self.world.sim.now
            if self._watchdog is not None:
                self._watchdog.stop()
            if self.monitor is not None:
                self.monitor.note_event("complete")
            if sock.is_open:
                sock.close()
            if self.on_complete is not None:
                self.on_complete()

    def _on_reset(self, sock: Socket, reason: str) -> None:
        self.reset_count += 1
        if self.monitor is not None:
            self.monitor.note_event("reset")
        self._failover()

    def _check_liveness(self) -> None:
        if self.completed_at is not None:
            return
        if (self.world.sim.now - self._last_data_at
                >= self.liveness_timeout_ns):
            if self.monitor is not None:
                self.monitor.note_event("liveness-timeout")
            self._failover()

    def _failover(self) -> None:
        """Application-level failover: abort, move to the standby, resume."""
        if self.completed_at is not None:
            return
        if self.sock is not None and self.sock.is_open:
            self.sock.abort()
        self.reconnect_count += 1
        self._address_index += 1
        self._last_data_at = self.world.sim.now
        if self.monitor is not None:
            self.monitor.note_event("reconnect")
        self._connect()
