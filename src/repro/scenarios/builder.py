"""Constructs the paper's experimental setup (Figure 2), exactly:

* an Ethernet switch connecting client, primary and backup;
* the client doubling as the gateway (paper: "the client in this case");
* virtual NICs via IP aliasing carrying the shared ``serviceIP``;
* a static ARP entry on the client mapping ``serviceIP`` to the multicast
  Ethernet address ``multiEA``, so the switch floods every client→server
  frame to both servers;
* a null-modem serial cable between the servers for the secondary HB link;
* a shared power strip (STONITH) reaching both servers.

``build_testbed(num_clients=N)`` generalizes the client side to N hosts —
same switch, same servers, same serviceIP trick — for the many-connection
workloads in :mod:`repro.workloads`.  Client 0 keeps the exact Figure-2
addresses (and stays the gateway); extra clients get addresses from
:meth:`Addresses.client_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import NamedTuple, Optional

from repro.net.addresses import IPAddress, MacAddress
from repro.net.cable import Cable
from repro.net.nic import Nic
from repro.net.serial_link import SerialLink
from repro.net.switch import Switch, SwitchPort
from repro.sim.core import NS_PER_S
from repro.sim.world import World
from repro.tcp.connection import TcpConfig
from repro.host.host import Host
from repro.host.power import PowerStrip
from repro.faults.injector import FaultInjector
from repro.scenarios.options import DEFAULT_TRACE_CATEGORIES
from repro.sttcp.config import SttcpConfig
from repro.sttcp.manager import SttcpPair

__all__ = ["Testbed", "Addresses", "LoggerAttachment", "build_testbed",
           "DEFAULT_TRACE_CATEGORIES"]

#: The two testbed modes (``build_testbed(mode=...)``).
MODES = ("sttcp", "baseline")

# Generated address plan for client hosts beyond the canonical Figure-2
# client (client 0): 10.0.1.1, 10.0.1.2, ... with MACs counted up from a
# locally-administered base.
_EXTRA_CLIENT_IP_BASE = IPAddress("10.0.1.1").value
_EXTRA_CLIENT_MAC_BASE = MacAddress("02:00:00:01:00:00").value


@dataclass(frozen=True)
class Addresses:
    """The Figure-2 address plan."""

    client_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.1"))
    primary_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.2"))
    backup_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.3"))
    service_ip: IPAddress = field(
        default_factory=lambda: IPAddress("10.0.0.100"))
    network: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.0"))
    client_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:01"))
    primary_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:02"))
    backup_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:03"))
    # Group bit set in the first octet: a true multicast Ethernet address.
    multi_ea: MacAddress = field(
        default_factory=lambda: MacAddress("03:00:5e:00:00:64"))

    def client_plan(self, index: int) -> tuple[IPAddress, MacAddress]:
        """Generated (IP, MAC) for client host ``index`` (0-based).

        Client 0 is the canonical Figure-2 client; extra clients land on
        10.0.<1+>.<x> (inside the /16 the multi-client testbed routes as
        one subnet) with locally-administered MACs counted up from
        ``02:00:00:01:00:00``.
        """
        if index == 0:
            return self.client_ip, self.client_mac
        ip = IPAddress(_EXTRA_CLIENT_IP_BASE + (index - 1))
        mac = MacAddress(_EXTRA_CLIENT_MAC_BASE + index)
        return ip, mac


class LoggerAttachment(NamedTuple):
    """What :meth:`Testbed.add_logger` built (tuple-unpackable for old
    call sites: ``host, logger = tb.add_logger()``).  The logger's cable
    is registered as ``testbed.cables["logger"]``."""

    host: Host
    logger: "object"  # StreamLogger (imported lazily in add_logger)


class Testbed:
    """Everything the experiments touch, by name."""

    def __init__(self, world: World, addresses: Addresses, switch: Switch,
                 clients: list[Host], primary: Host, backup: Host,
                 cables: dict[str, Cable],
                 serial_link: Optional[SerialLink],
                 power_strip: PowerStrip,
                 pair: Optional[SttcpPair],
                 injector: FaultInjector):
        self.world = world
        self.addresses = addresses
        self.switch = switch
        #: All client hosts; ``clients[0]`` is the Figure-2 client/gateway.
        self.clients = clients
        self.primary = primary
        self.backup = backup
        self.cables = cables
        self.serial_link = serial_link
        self.power_strip = power_strip
        self.pair = pair
        self.inject = injector

    # Convenience aliases used throughout tests and benches.
    @property
    def client(self) -> Host:
        """The canonical Figure-2 client (first of :attr:`clients`)."""
        return self.clients[0]

    @property
    def service_ip(self) -> IPAddress:
        """The shared serviceIP clients connect to."""
        return self.addresses.service_ip

    @property
    def client_cable(self) -> Cable:
        """The client's cable to the switch."""
        return self.cables["client"]

    @property
    def primary_cable(self) -> Cable:
        """The primary's cable to the switch."""
        return self.cables["primary"]

    @property
    def backup_cable(self) -> Cable:
        """The backup's cable to the switch."""
        return self.cables["backup"]

    def add_logger(self, ip: str = "10.0.0.4",
                   mac: str = "02:00:00:00:00:04") -> LoggerAttachment:
        """Attach the Sec. 4.3 stream logger: a fourth machine on the
        switch, subscribed to multiEA, passively recording the client
        byte stream and serving fetch fallbacks.  Also points the backup
        engine at it.  Returns a :class:`LoggerAttachment` (still
        unpackable as the historical ``(host, logger)`` pair)."""
        from repro.sttcp.logger import LOGGER_UDP_PORT, StreamLogger

        host = Host(self.world, "logger")
        nic = host.add_nic(mac, [ip], self.addresses.network)
        nic.join_multicast(self.addresses.multi_ea)
        port = self.switch.new_port()
        cable = Cable(self.world, nic, port)
        nic.attach_cable(cable)
        port.cable = cable
        self.cables["logger"] = cable
        self.power_strip.register(host)
        service_port = (self.pair.config.service_port
                        if self.pair is not None else 80)
        logger = StreamLogger(host, self.addresses.service_ip, service_port)
        if self.pair is not None:
            self.pair.backup.use_logger(ip, LOGGER_UDP_PORT)
        return LoggerAttachment(host, logger)

    def run_for(self, seconds: float) -> int:
        """Advance virtual time by ``seconds``."""
        return self.world.run_for(round(seconds * NS_PER_S))

    def run_until(self, seconds: float) -> int:
        """Run the world to absolute virtual time ``seconds``."""
        return self.world.run(until=round(seconds * NS_PER_S))

    # ----------------------------------------------------- warm-trial reuse

    def snapshot(self) -> bytes:
        """Serialize this *pristine* testbed for later :meth:`restore`.

        Valid only on a testbed straight out of :func:`build_testbed`:
        no apps attached, no events run, no RNG draws taken.  Campaign
        workers snapshot the first build of a grid point and thaw copies
        for the remaining trials instead of re-wiring Figure 2 from
        scratch (see :mod:`repro.campaign.warm`).
        """
        import pickle

        if self.world.sim.now != 0:
            raise ValueError("snapshot() requires a pristine testbed "
                             f"(sim clock at {self.world.sim.now}ns, not 0)")
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def restore(blob: bytes, seed: Optional[int] = None) -> "Testbed":
        """Thaw a :meth:`snapshot` into an independent testbed.

        ``seed`` re-keys every RNG stream in place (the snapshot was taken
        before any draws, so the thawed world is byte-for-byte equivalent
        to a cold ``build_testbed(seed=seed, ...)`` — the golden-trace
        suite pins this equivalence).
        """
        import pickle

        testbed: Testbed = pickle.loads(blob)
        if seed is not None:
            testbed.world.rng.reseed(seed)
        return testbed


def _cable_to_switch(world: World, nic: Nic, switch: Switch,
                     bandwidth_bps: int, delay_ns: int) -> tuple[Cable, SwitchPort]:
    port = switch.new_port()
    cable = Cable(world, nic, port, bandwidth_bps=bandwidth_bps,
                  propagation_delay_ns=delay_ns)
    nic.attach_cable(cable)
    port.cable = cable
    return cable, port


def build_testbed(seed: int = 0,
                  config: Optional[SttcpConfig] = None,
                  tcp_config: Optional[TcpConfig] = None,
                  mode: str = "sttcp",
                  num_clients: int = 1,
                  cc: Optional[str] = None,
                  bandwidth_bps: int = 100_000_000,
                  propagation_delay_ns: int = 1_000,
                  backup_frame_cost_ns: int = 0,
                  primary_frame_cost_ns: int = 0,
                  mirror_to_backup: bool = False,
                  egress_filtering: bool = False,
                  trace_categories: Optional[frozenset] = DEFAULT_TRACE_CATEGORIES,
                  addresses: Optional[Addresses] = None) -> Testbed:
    """Build Figure 2.  Apps and faults are added by the caller.

    ``mode`` selects the server side: ``"sttcp"`` (the paper's pair) or
    ``"baseline"`` (same physical topology, no ST-TCP — the
    non-fault-tolerant baseline of Demo 1/3).

    ``cc`` selects the congestion-control algorithm for every TCP
    endpoint (client, primary, backup — and therefore the backup's
    suppressed replica connections): ``None`` keeps whatever
    ``tcp_config`` says, any registered name from
    :func:`repro.tcp.congestion.cc_names` overrides it.

    ``num_clients`` attaches that many client hosts to the switch; all get
    the static serviceIP→multiEA ARP entry, client 0 keeps the canonical
    addresses and stays the gateway for the servers.  With more than one
    client every NIC uses a /16 so the generated 10.0.1.x addresses are
    on-link for the servers.

    ``mirror_to_backup=True`` (old architecture, ablation A1) mirrors all
    forwarded unicast traffic to the backup's switch port and puts its NIC
    in promiscuous mode, so the backup also processes the primary→client
    stream; combine with ``backup_frame_cost_ns`` to reproduce the
    overload the paper describes in Sec. 3.

    ``egress_filtering=True`` turns on the switch's IGMP-snooping
    analogue: flooded frames are not sent down cables whose far-end NIC
    would discard them anyway.  Use it for fleet-scale testbeds (hundreds
    of clients), where flood fan-out is quadratic; it is off by default
    because it changes cable occupancy and NIC filter counters relative
    to the faithful Figure-2 broadcast network (see docs/scheduler.md).
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if cc is not None:
        tcp_config = replace(tcp_config or TcpConfig(), cc=cc)
        tcp_config.validate()  # fail fast on an unknown algorithm
    addrs = addresses or Addresses()
    world = World(seed=seed, trace_categories=trace_categories)
    switch = Switch(world, egress_filtering=egress_filtering)
    config = config or SttcpConfig()
    prefix_len = 24 if num_clients == 1 else 16

    clients = [Host(world, "client" if i == 0 else f"client{i}",
                    tcp_config=tcp_config) for i in range(num_clients)]
    primary = Host(world, "primary", tcp_config=tcp_config,
                   frame_processing_cost_ns=primary_frame_cost_ns)
    backup = Host(world, "backup", tcp_config=tcp_config,
                  frame_processing_cost_ns=backup_frame_cost_ns)

    client_nics = []
    for i, host in enumerate(clients):
        ip, mac = addrs.client_plan(i)
        client_nics.append(host.add_nic(mac, [ip], addrs.network,
                                        prefix_len=prefix_len))
    primary_nic = primary.add_nic(addrs.primary_mac,
                                  [addrs.primary_ip, addrs.service_ip],
                                  addrs.network, prefix_len=prefix_len)
    backup_nic = backup.add_nic(addrs.backup_mac,
                                [addrs.backup_ip, addrs.service_ip],
                                addrs.network, prefix_len=prefix_len)
    # Both servers subscribe to the multicast Ethernet address so the
    # flooded client traffic reaches them both.
    primary_nic.join_multicast(addrs.multi_ea)
    backup_nic.join_multicast(addrs.multi_ea)

    cables: dict[str, Cable] = {}
    ports: dict[str, SwitchPort] = {}
    wiring = [("client" if i == 0 else f"client{i}", nic)
              for i, nic in enumerate(client_nics)]
    wiring += [("primary", primary_nic), ("backup", backup_nic)]
    for name, nic in wiring:
        cables[name], ports[name] = _cable_to_switch(
            world, nic, switch, bandwidth_bps, propagation_delay_ns)

    # Every client is the gateway for its own traffic; its static ARP
    # entry aims serviceIP at the multicast address (the heart of the
    # Figure-2 trick).
    for host in clients:
        host.interfaces[0].arp.add_static(addrs.service_ip, addrs.multi_ea)
    for host in (primary, backup):
        host.set_default_gateway(addrs.client_ip)

    if mirror_to_backup:
        switch.set_mirror_port(ports["backup"])
        backup_nic.promiscuous = True

    power_strip = PowerStrip(world)
    for host in (*clients, primary, backup):
        power_strip.register(host)

    serial_link: Optional[SerialLink] = None
    pair: Optional[SttcpPair] = None
    if mode == "sttcp":
        primary_serial = primary.add_serial_port()
        backup_serial = backup.add_serial_port()
        if config.use_serial_hb:
            serial_link = SerialLink(world, primary_serial, backup_serial)
        pair = SttcpPair(world, primary, backup,
                         primary_ip=addrs.primary_ip,
                         backup_ip=addrs.backup_ip,
                         service_ip=addrs.service_ip,
                         gateway_ip=addrs.client_ip,
                         power_strip=power_strip, config=config,
                         serial_link=serial_link,
                         primary_serial=primary_serial,
                         backup_serial=backup_serial)

    injector = FaultInjector(world)
    return Testbed(world, addrs, switch, clients, primary, backup, cables,
                   serial_link, power_strip, pair, injector)
