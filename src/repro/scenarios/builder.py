"""Constructs the paper's experimental setup (Figure 2), exactly:

* an Ethernet switch connecting client, primary and backup;
* the client doubling as the gateway (paper: "the client in this case");
* virtual NICs via IP aliasing carrying the shared ``serviceIP``;
* a static ARP entry on the client mapping ``serviceIP`` to the multicast
  Ethernet address ``multiEA``, so the switch floods every client→server
  frame to both servers;
* a null-modem serial cable between the servers for the secondary HB link;
* a shared power strip (STONITH) reaching both servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import IPAddress, MacAddress
from repro.net.cable import Cable
from repro.net.nic import Nic
from repro.net.serial_link import SerialLink
from repro.net.switch import Switch, SwitchPort
from repro.sim.core import NS_PER_S
from repro.sim.world import World
from repro.tcp.connection import TcpConfig
from repro.host.host import Host
from repro.host.power import PowerStrip
from repro.faults.injector import FaultInjector
from repro.sttcp.config import SttcpConfig
from repro.sttcp.manager import SttcpPair

__all__ = ["Testbed", "Addresses", "build_testbed", "DEFAULT_TRACE_CATEGORIES"]

# Tight enough for long benchmarks, rich enough to debug failures.
DEFAULT_TRACE_CATEGORIES = {"fault", "power", "detect", "sttcp", "app"}


@dataclass(frozen=True)
class Addresses:
    """The Figure-2 address plan."""

    client_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.1"))
    primary_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.2"))
    backup_ip: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.3"))
    service_ip: IPAddress = field(
        default_factory=lambda: IPAddress("10.0.0.100"))
    network: IPAddress = field(default_factory=lambda: IPAddress("10.0.0.0"))
    client_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:01"))
    primary_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:02"))
    backup_mac: MacAddress = field(
        default_factory=lambda: MacAddress("02:00:00:00:00:03"))
    # Group bit set in the first octet: a true multicast Ethernet address.
    multi_ea: MacAddress = field(
        default_factory=lambda: MacAddress("03:00:5e:00:00:64"))


class Testbed:
    """Everything the experiments touch, by name."""

    def __init__(self, world: World, addresses: Addresses, switch: Switch,
                 client: Host, primary: Host, backup: Host,
                 cables: dict[str, Cable],
                 serial_link: Optional[SerialLink],
                 power_strip: PowerStrip,
                 pair: Optional[SttcpPair],
                 injector: FaultInjector):
        self.world = world
        self.addresses = addresses
        self.switch = switch
        self.client = client
        self.primary = primary
        self.backup = backup
        self.cables = cables
        self.serial_link = serial_link
        self.power_strip = power_strip
        self.pair = pair
        self.inject = injector

    # Convenience aliases used throughout tests and benches.
    @property
    def service_ip(self) -> IPAddress:
        """The shared serviceIP clients connect to."""
        return self.addresses.service_ip

    @property
    def client_cable(self) -> Cable:
        """The client's cable to the switch."""
        return self.cables["client"]

    @property
    def primary_cable(self) -> Cable:
        """The primary's cable to the switch."""
        return self.cables["primary"]

    @property
    def backup_cable(self) -> Cable:
        """The backup's cable to the switch."""
        return self.cables["backup"]

    def add_logger(self, ip: str = "10.0.0.4",
                   mac: str = "02:00:00:00:00:04"):
        """Attach the Sec. 4.3 stream logger: a fourth machine on the
        switch, subscribed to multiEA, passively recording the client
        byte stream and serving fetch fallbacks.  Also points the backup
        engine at it.  Returns ``(host, StreamLogger)``."""
        from repro.sttcp.logger import LOGGER_UDP_PORT, StreamLogger

        host = Host(self.world, "logger")
        nic = host.add_nic(mac, [ip], self.addresses.network)
        nic.join_multicast(self.addresses.multi_ea)
        port = self.switch.new_port()
        cable = Cable(self.world, nic, port)
        nic.attach_cable(cable)
        port.cable = cable
        self.cables["logger"] = cable
        self.power_strip.register(host)
        service_port = (self.pair.config.service_port
                        if self.pair is not None else 80)
        logger = StreamLogger(host, self.addresses.service_ip, service_port)
        if self.pair is not None:
            self.pair.backup.use_logger(ip, LOGGER_UDP_PORT)
        return host, logger

    def run_for(self, seconds: float) -> int:
        """Advance virtual time by ``seconds``."""
        return self.world.run_for(round(seconds * NS_PER_S))

    def run_until(self, seconds: float) -> int:
        """Run the world to absolute virtual time ``seconds``."""
        return self.world.run(until=round(seconds * NS_PER_S))


def _cable_to_switch(world: World, nic: Nic, switch: Switch,
                     bandwidth_bps: int, delay_ns: int) -> tuple[Cable, SwitchPort]:
    port = switch.new_port()
    cable = Cable(world, nic, port, bandwidth_bps=bandwidth_bps,
                  propagation_delay_ns=delay_ns)
    nic.attach_cable(cable)
    port.cable = cable
    return cable, port


def build_testbed(seed: int = 0,
                  config: Optional[SttcpConfig] = None,
                  tcp_config: Optional[TcpConfig] = None,
                  enable_sttcp: bool = True,
                  bandwidth_bps: int = 100_000_000,
                  propagation_delay_ns: int = 1_000,
                  backup_frame_cost_ns: int = 0,
                  primary_frame_cost_ns: int = 0,
                  mirror_to_backup: bool = False,
                  trace_categories: Optional[set[str]] = DEFAULT_TRACE_CATEGORIES,
                  addresses: Optional[Addresses] = None) -> Testbed:
    """Build Figure 2.  Apps and faults are added by the caller.

    ``enable_sttcp=False`` produces the same physical topology without the
    ST-TCP pair — the non-fault-tolerant baseline of Demo 1/3.
    ``mirror_to_backup=True`` (old architecture, ablation A1) mirrors all
    forwarded unicast traffic to the backup's switch port and puts its NIC
    in promiscuous mode, so the backup also processes the primary→client
    stream; combine with ``backup_frame_cost_ns`` to reproduce the
    overload the paper describes in Sec. 3.
    """
    addrs = addresses or Addresses()
    world = World(seed=seed, trace_categories=trace_categories)
    switch = Switch(world)
    config = config or SttcpConfig()

    client = Host(world, "client", tcp_config=tcp_config)
    primary = Host(world, "primary", tcp_config=tcp_config,
                   frame_processing_cost_ns=primary_frame_cost_ns)
    backup = Host(world, "backup", tcp_config=tcp_config,
                  frame_processing_cost_ns=backup_frame_cost_ns)

    client_nic = client.add_nic(addrs.client_mac, [addrs.client_ip],
                                addrs.network)
    primary_nic = primary.add_nic(addrs.primary_mac,
                                  [addrs.primary_ip, addrs.service_ip],
                                  addrs.network)
    backup_nic = backup.add_nic(addrs.backup_mac,
                                [addrs.backup_ip, addrs.service_ip],
                                addrs.network)
    # Both servers subscribe to the multicast Ethernet address so the
    # flooded client traffic reaches them both.
    primary_nic.join_multicast(addrs.multi_ea)
    backup_nic.join_multicast(addrs.multi_ea)

    cables: dict[str, Cable] = {}
    ports: dict[str, SwitchPort] = {}
    for name, nic in (("client", client_nic), ("primary", primary_nic),
                      ("backup", backup_nic)):
        cables[name], ports[name] = _cable_to_switch(
            world, nic, switch, bandwidth_bps, propagation_delay_ns)

    # The client is the gateway; its static ARP entry aims serviceIP at the
    # multicast address (the heart of the Figure-2 trick).
    client.interfaces[0].arp.add_static(addrs.service_ip, addrs.multi_ea)
    for host in (primary, backup):
        host.set_default_gateway(addrs.client_ip)

    if mirror_to_backup:
        switch.set_mirror_port(ports["backup"])
        backup_nic.promiscuous = True

    power_strip = PowerStrip(world)
    for host in (client, primary, backup):
        power_strip.register(host)

    serial_link: Optional[SerialLink] = None
    pair: Optional[SttcpPair] = None
    if enable_sttcp:
        primary_serial = primary.add_serial_port()
        backup_serial = backup.add_serial_port()
        if config.use_serial_hb:
            serial_link = SerialLink(world, primary_serial, backup_serial)
        pair = SttcpPair(world, primary, backup,
                         primary_ip=addrs.primary_ip,
                         backup_ip=addrs.backup_ip,
                         service_ip=addrs.service_ip,
                         gateway_ip=addrs.client_ip,
                         power_strip=power_strip, config=config,
                         serial_link=serial_link,
                         primary_serial=primary_serial,
                         backup_serial=backup_serial)

    injector = FaultInjector(world)
    return Testbed(world, addrs, switch, client, primary, backup, cables,
                   serial_link, power_strip, pair, injector)
