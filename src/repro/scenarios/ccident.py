"""CC identification: classify a run's congestion-control algorithm from
its cwnd timeline (cf. "TCP Congestion Control Identification", PAPERS.md).

The scenario streams data over a deterministically lossy link (the
per-cable RNG stream makes the loss pattern a pure function of the world
seed), records the sender's ``tcp.segment_tx`` / ``tcp.retransmit``
probes, and classifies the algorithm from three trajectory fingerprints:

* **post-loss collapse** — Tahoe's fast retransmit leaves ``cwnd`` at one
  MSS (every other algorithm sits at ``ssthresh + 3*MSS``);
* **partial-ack retransmits** — NewReno retransmits the next hole from
  the new-ack path, after deflation, so the retransmission's tx row shows
  ``cwnd != ssthresh + 3*MSS``; Reno/CUBIC head retransmissions are all
  recovery *entries*, pinned at exactly ``ssthresh + 3*MSS``;
* **deflation ratio** — CUBIC's multiplicative decrease is ``0.7 * cwnd``
  where the Reno family uses ``flight/2``; both ``cwnd`` and ``flight``
  ride on every tx row, so each loss episode votes for the closer model.

Run it standalone via :func:`run_cc_ident`, or as the ``cc_ident``
campaign scenario (``python -m repro sweep --scenario cc_ident --grid
cc=tahoe,reno,newreno,cubic --trials N``); ``tools/make_cc_ident_report.py``
turns such a campaign into the accuracy report committed under docs/.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.streaming import StreamClient, StreamServer
from repro.scenarios.builder import build_testbed
from repro.scenarios.options import DEFAULT_TRACE_CATEGORIES

__all__ = ["CcIdentResult", "run_cc_ident", "extract_features",
           "classify_features"]

#: Fraction of head retransmissions at ~1 MSS that reads as Tahoe.
TAHOE_COLLAPSE_FRACTION = 0.5
#: Head retransmissions off the entry window needed to read as NewReno.
#: The signature is structural — Reno/CUBIC fast retransmissions are all
#: recovery entries, pinned at exactly ``ssthresh + 3*MSS`` — so a single
#: occurrence is decisive.
PARTIAL_ACK_MIN = 1


@dataclass
class CcIdentResult:
    """One identification run: the guess and the evidence behind it."""

    actual: str
    guess: str
    features: dict = field(default_factory=dict)
    bytes_received: int = 0

    @property
    def correct(self) -> bool:
        return self.guess == self.actual


def extract_features(events: list) -> dict:
    """Reduce an ordered ``("tx"|"rtx", fields)`` probe stream to the
    classifier's feature dict.

    A *loss episode* is one ``kind="head"`` retransmission: its tx row
    (fired immediately after, same instant) carries the post-loss
    ``cwnd``/``ssthresh``, and the last ordinary tx row before it carries
    the pre-loss ``cwnd``/``flight``.
    """
    mss = next((f["mss"] for k, f in events if k == "tx"), 1460)
    episodes = []
    last_tx = None
    pending = None
    rto_count = 0
    for kind, f in events:
        if kind == "rtx":
            if f["kind"] == "head":
                pending = {
                    "off": f["off"],
                    "cwnd_before": last_tx["cwnd"] if last_tx else 0,
                    "flight_before": last_tx["flight"] if last_tx else 0,
                }
            else:
                rto_count += 1
            continue
        if pending is not None:
            pending["ssthresh"] = f["ssthresh"]
            pending["cwnd_after"] = f["cwnd"]
            episodes.append(pending)
            pending = None
        else:
            last_tx = f

    n = len(episodes)
    collapsed = sum(1 for e in episodes
                    if e["cwnd_after"] <= 1.5 * mss)
    # NewReno evidence: a recovery *entry* pins the retransmission's
    # window at exactly ssthresh + 3*MSS (the dupack-threshold inflation);
    # a partial-ack retransmission fires after deflation, anywhere else.
    # Tahoe's collapsed rows are excluded — tahoe is decided first.
    uncollapsed = [e for e in episodes if e["cwnd_after"] > 1.5 * mss]
    partials = sum(
        1 for e in uncollapsed
        if e["cwnd_after"] != e["ssthresh"] + 3 * mss)
    # Deflation-ratio vote on the entry episodes: is the new ssthresh
    # closer to CUBIC's 0.7*cwnd or to Reno's flight/2?  Floor-clamped
    # values (<= 2 MSS) collide for every algorithm and carry no signal.
    cubic_votes = reno_votes = 0
    for e in uncollapsed:
        if e["ssthresh"] <= 2 * mss or not e["cwnd_before"]:
            continue
        d_cubic = abs(e["ssthresh"] - int(0.7 * e["cwnd_before"]))
        d_reno = abs(e["ssthresh"] - e["flight_before"] // 2)
        if d_cubic < d_reno:
            cubic_votes += 1
        elif d_reno < d_cubic:
            reno_votes += 1
    return {
        "mss": mss,
        "episodes": n,
        "rto_count": rto_count,
        "collapse_fraction": round(collapsed / n, 4) if n else 0.0,
        "partial_retransmits": partials,
        "cubic_votes": cubic_votes,
        "reno_votes": reno_votes,
    }


def classify_features(features: dict) -> str:
    """Decision tree over :func:`extract_features` output."""
    if not features["episodes"]:
        return "reno"  # no loss evidence: the default is the best prior
    if features["collapse_fraction"] >= TAHOE_COLLAPSE_FRACTION:
        return "tahoe"
    if features["partial_retransmits"] >= PARTIAL_ACK_MIN:
        return "newreno"
    if features["cubic_votes"] > features["reno_votes"]:
        return "cubic"
    return "reno"


def run_cc_ident(cc: str, seed: int = 3,
                 total_bytes: int = 4_000_000,
                 loss_rate: float = 0.01,
                 run_until_s: float = 60.0,
                 trace_categories=DEFAULT_TRACE_CATEGORIES) -> CcIdentResult:
    """Stream ``total_bytes`` under ``cc`` over a lossy link, then guess
    the algorithm back from the sender's timeline alone.

    The testbed is the baseline (no ST-TCP) Figure-2 topology; the client
    talks straight to the primary's own address, and the primary's cable
    drops frames at ``loss_rate`` from its deterministic per-cable RNG
    stream.  Equal (cc, seed) pairs give byte-identical runs.

    The buffers are enlarged past the Figure-2 default 64 KiB so the
    window can grow wide enough for multi-loss flights — the situation
    that separates NewReno's partial-ack retransmit from Reno's
    wait-for-more-dupacks.
    """
    from repro.tcp.connection import TcpConfig

    tcp_config = TcpConfig(send_buffer_bytes=262144,
                           recv_buffer_bytes=262144)
    tb = build_testbed(seed=seed, mode="baseline", cc=cc,
                       tcp_config=tcp_config,
                       trace_categories=trace_categories)
    tb.cables["primary"].loss_rate = loss_rate

    events: list = []

    def on_tx(event) -> None:
        if event.source.startswith("primary."):
            events.append(("tx", event.fields))

    def on_rtx(event) -> None:
        if event.source.startswith("primary."):
            events.append(("rtx", event.fields))

    tb.world.probes.subscribe("tcp.segment_tx", on_tx)
    tb.world.probes.subscribe("tcp.retransmit", on_rtx)

    StreamServer(tb.primary, "server-primary", port=80).start()
    client = StreamClient(tb.client, "client", tb.addresses.primary_ip,
                          port=80, total_bytes=total_bytes)
    client.start()
    tb.run_until(run_until_s)

    features = extract_features(events)
    return CcIdentResult(actual=cc, guess=classify_features(features),
                         features=features,
                         bytes_received=client.received)
