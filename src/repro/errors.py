"""Exception hierarchy for the ST-TCP reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (plain ``ValueError`` /
``TypeError``) from simulated-world conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """A network-substrate invariant was violated (bad frame, unknown port...)."""


class AddressError(NetworkError):
    """An Ethernet/IP address string could not be parsed or is out of range."""


class TcpError(ReproError):
    """Base class for TCP-level errors."""


class ConnectionResetError_(TcpError):
    """The peer reset the connection (RST received).

    Named with a trailing underscore to avoid shadowing the built-in
    ``ConnectionResetError``; exported as ``TcpConnectionReset``.
    """


class ConnectionClosedError(TcpError):
    """An operation was attempted on a closed or closing socket."""


class PortInUseError(TcpError):
    """A listener tried to bind a port that is already bound on the host."""


class HostDownError(ReproError):
    """An operation was attempted on a powered-off or crashed host."""


class SttcpError(ReproError):
    """Base class for ST-TCP protocol errors."""


class UnrecoverableFailureError(SttcpError):
    """A failure ST-TCP explicitly documents as unrecoverable.

    Example (Sec. 4.3 of the paper): the primary crashes while the backup is
    still fetching missed bytes that the primary has already acknowledged to
    the client.
    """


class ConfigurationError(ReproError):
    """An ST-TCP or scenario configuration value is invalid or inconsistent."""


# Public alias with a cleaner name.
TcpConnectionReset = ConnectionResetError_
