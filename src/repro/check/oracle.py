"""The runtime invariant oracle.

:class:`InvariantOracle` subscribes to a :class:`~repro.sim.world.World`'s
probe bus and checks every firing against the catalogue in
:mod:`repro.check.invariants`.  It is pure observer: attaching it changes
no timing and no behaviour (probe fields are built eagerly by the
emitters), and detaching restores the zero-overhead idle path.

Three front doors, all documented in ``docs/invariants.md``:

* :class:`CheckedRun` — a context manager that attaches an oracle and
  raises :class:`InvariantViolationError` on exit if anything tripped
  (``scenarios/runner.py`` exposes it as ``check=True``);
* ``--check`` on every CLI demo (``repro.cli``);
* the autouse pytest fixture in ``tests/conftest.py`` (``REPRO_CHECK=1``),
  via :mod:`repro.check.autocheck`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.check.invariants import INVARIANTS
from repro.net.packet import IPPacket
from repro.obs.bus import ProbeEvent
from repro.sim.core import millis
from repro.tcp.segment import TcpSegment
from repro.tcp.seq import seq_add, seq_sub

__all__ = ["CheckTopology", "Violation", "InvariantViolationError",
           "InvariantOracle", "CheckedRun"]

# Largest believable on-wire sequence jump within one flow direction:
# far above any window (64 KiB + retain allowance), far below the random
# ~2^31 distance a wrong-ISN takeover produces.
_SEQ_BAND = 1 << 24

# In-flight allowance for wire.primary-silent: frames the primary queued
# on its cable before STONITH may still drain into the switch briefly.
_TAKEOVER_GRACE_NS = millis(200)


@dataclass(frozen=True)
class CheckTopology:
    """Wire-layer hints: who is who on the switch (Figure 2)."""

    primary_mac: str
    backup_mac: str
    service_port: int = 80

    @classmethod
    def from_testbed(cls, tb) -> "CheckTopology":
        """Derive the hints from a built scenario testbed."""
        service_port = (tb.pair.config.service_port
                        if tb.pair is not None else 80)
        return cls(primary_mac=str(tb.addresses.primary_mac),
                   backup_mac=str(tb.addresses.backup_mac),
                   service_port=service_port)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with everything needed to debug it."""

    invariant: str        # id into repro.check.invariants.INVARIANTS
    time: int             # virtual ns of the offending probe event
    conn: str             # connection / flow / service identifier
    detail: str           # human-readable specifics (observed vs expected)
    event: Optional[ProbeEvent] = None   # the probe record itself

    def __str__(self) -> str:
        return (f"[{self.time / 1e9:12.6f}s] {self.invariant}: {self.conn}: "
                f"{self.detail}")


class InvariantViolationError(AssertionError):
    """Raised by :class:`CheckedRun` when a run broke the catalogue."""

    def __init__(self, violations: list[Violation]):
        self.violations = violations
        shown = "\n".join(f"  {v}" for v in violations[:20])
        more = len(violations) - 20
        super().__init__(
            f"{len(violations)} invariant violation(s):\n{shown}"
            + (f"\n  ... and {more} more" if more > 0 else ""))


@dataclass
class _EndpointState:
    """Per-connection sender/receiver tracking (keyed by probe source)."""

    una: int = 0
    rcv_nxt: int = 0
    deliver_next: int = 0


@dataclass
class _FlowDirState:
    """Per (src_ip, sport, dst_ip, dport) wire-direction tracking."""

    hi_seq: Optional[int] = None   # running max sequence number (mod 2^32)
    hi_ack: Optional[int] = None   # running max ack number (mod 2^32)
    max_end: Optional[int] = None  # highest seq end incl. SYN/FIN phantoms


class InvariantOracle:
    """Checks probe traffic against the invariant catalogue.

    Violations are collected, not raised — callers decide (``CheckedRun``
    raises at exit, the pytest fixture asserts at teardown).  ``checks``
    counts evaluations per invariant so "ran clean" is distinguishable
    from "never looked".
    """

    def __init__(self, world, topology: Optional[CheckTopology] = None,
                 max_recorded: int = 200):
        self.world = world
        self.topology = topology
        self.max_recorded = max_recorded
        self.violations: list[Violation] = []
        self.violation_count = 0           # keeps counting past the cap
        self.checks: dict[str, int] = {inv: 0 for inv in INVARIANTS}
        self._endpoints: dict[str, _EndpointState] = {}
        self._flows: dict[tuple, _FlowDirState] = {}
        self._hb_seq: dict[str, int] = {}
        self._hb_progress: dict[tuple, tuple] = {}
        self._takeover_at: Optional[int] = None
        self._takeover_sources: set[str] = set()
        self._nonft_sources: set[str] = set()
        self._subs: list = []
        self._attached = False

    # ------------------------------------------------------------ plumbing

    def attach(self) -> "InvariantOracle":
        """Subscribe to the probes the catalogue needs (idempotent)."""
        if self._attached:
            return self
        probes = self.world.probes
        for name, handler in (("tcp.segment_tx", self._on_segment_tx),
                              ("tcp.deliver", self._on_deliver),
                              ("eth.frame", self._on_frame),
                              ("hb.state", self._on_heartbeat),
                              ("sttcp.takeover", self._on_takeover),
                              ("sttcp.non-ft-mode", self._on_non_ft),
                              ("sttcp.conn-replicated", self._on_replicated)):
            self._subs.append(probes.subscribe(name, handler))
        self._attached = True
        return self

    def detach(self) -> None:
        """Stop observing (collected violations stay queryable)."""
        for sub in self._subs:
            self.world.probes.unsubscribe(sub)
        self._subs.clear()
        self._attached = False

    def _fail(self, invariant: str, event: Optional[ProbeEvent], conn: str,
              detail: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(Violation(
                invariant, event.time if event else self.world.now,
                conn, detail, event))

    def _check(self, invariant: str, ok: bool, event: ProbeEvent, conn: str,
               detail: str) -> None:
        self.checks[invariant] += 1
        if not ok:
            self._fail(invariant, event, conn, detail)

    def report(self) -> str:
        """Human-readable summary: per-invariant check/violation counts."""
        lines = [f"invariant oracle: {self.violation_count} violation(s)"]
        for inv_id in INVARIANTS:
            lines.append(f"  {inv_id:28s} checked {self.checks[inv_id]:>9d}")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        return "\n".join(lines)

    # ------------------------------------------------- tcp-endpoint layer

    def _on_segment_tx(self, ev: ProbeEvent) -> None:
        f = ev.fields
        una, nxt = f.get("una"), f.get("nxt")
        if una is None or nxt is None:
            return
        flags = f.get("flags", "")
        state = self._endpoints.get(ev.source)
        if state is None or "SYN" in flags:
            # First sighting, or a new incarnation reusing the name.
            state = self._endpoints[ev.source] = _EndpointState(
                una=una, rcv_nxt=f.get("rcv_nxt", 0))
        self._check("tcp.snd-una-le-nxt", una <= nxt, ev, ev.source,
                    f"snd_una={una} > snd_nxt={nxt}")
        self._check("tcp.snd-una-monotone", una >= state.una, ev, ev.source,
                    f"snd_una retreated {state.una} -> {una}")
        state.una = max(state.una, una)
        mss = f.get("mss")
        if mss:
            cwnd, ssthresh = f.get("cwnd"), f.get("ssthresh")
            self._check("tcp.cwnd-floor", cwnd >= mss, ev, ev.source,
                        f"cwnd={cwnd} < 1 MSS ({mss})")
            self._check("tcp.ssthresh-floor", ssthresh >= 2 * mss, ev,
                        ev.source, f"ssthresh={ssthresh} < 2 MSS ({2 * mss})")
        off = f.get("off")
        if off is not None and "SYN" not in flags and "RST" not in flags:
            # (RSTs are exempt: a reset for a bogus handshake ack echoes
            # the offender's ack field as its seq, per RFC 793.)
            self._check("tcp.seq-in-window", una <= off <= nxt, ev,
                        ev.source,
                        f"segment offset {off} outside [una={una}, "
                        f"nxt={nxt}]")
        rcv_nxt = f.get("rcv_nxt")
        if rcv_nxt is not None:
            self._check("tcp.rcv-nxt-monotone", rcv_nxt >= state.rcv_nxt,
                        ev, ev.source,
                        f"rcv_next retreated {state.rcv_nxt} -> {rcv_nxt}")
            state.rcv_nxt = max(state.rcv_nxt, rcv_nxt)

    def _on_deliver(self, ev: ProbeEvent) -> None:
        off, length = ev.fields.get("off"), ev.fields.get("len", 0)
        if off is None:
            return
        state = self._endpoints.setdefault(ev.source, _EndpointState())
        if off == 0 and state.deliver_next > 0:
            state.deliver_next = 0   # new incarnation reusing the name
        self._check("tcp.deliver-contiguous", off == state.deliver_next,
                    ev, ev.source,
                    f"delivery at offset {off}, expected "
                    f"{state.deliver_next} (gap or re-delivery)")
        state.deliver_next = off + length

    # --------------------------------------------------------- wire layer

    def _on_frame(self, ev: ProbeEvent) -> None:
        frame = ev.fields.get("frame")
        packet = getattr(frame, "payload", None)
        if not isinstance(packet, IPPacket):
            return
        seg = packet.payload
        if not isinstance(seg, TcpSegment):
            return
        fkey = (str(packet.src), seg.src_port, str(packet.dst), seg.dst_port)
        flow = self._flows.get(fkey)
        if flow is None or seg.syn:
            # New flow direction, or a new incarnation (a SYN legitimately
            # restarts the sequence space; ST-TCP takeover never SYNs).
            flow = self._flows[fkey] = _FlowDirState()
        conn = f"{fkey[0]}:{fkey[1]}->{fkey[2]}:{fkey[3]}"
        self._check_topology(ev, frame, seg, conn)
        end = seq_add(seg.seq, len(seg.payload)
                      + (1 if seg.syn else 0) + (1 if seg.fin else 0))
        if not seg.rst:
            if flow.hi_seq is not None:
                jump = seq_sub(seg.seq, flow.hi_seq)
                self._check("wire.seq-continuity", abs(jump) < _SEQ_BAND,
                            ev, conn,
                            f"seq {seg.seq} is {jump:+d} from the running "
                            f"max {flow.hi_seq} (discontinuous space)")
            if flow.hi_seq is None or seq_sub(seg.seq, flow.hi_seq) > 0:
                flow.hi_seq = seg.seq
        if flow.max_end is None or seq_sub(end, flow.max_end) > 0:
            flow.max_end = end
        if seg.ack_flag and not seg.rst:
            if flow.hi_ack is not None:
                retreat = seq_sub(seg.ack, flow.hi_ack)
                self._check("wire.ack-monotone", retreat >= 0, ev, conn,
                            f"ack retreated {flow.hi_ack} -> {seg.ack} "
                            f"({retreat:+d})")
            if flow.hi_ack is None or seq_sub(seg.ack, flow.hi_ack) > 0:
                flow.hi_ack = seg.ack
            reverse = self._flows.get((fkey[2], fkey[3], fkey[0], fkey[1]))
            if reverse is not None and reverse.max_end is not None:
                beyond = seq_sub(seg.ack, reverse.max_end)
                self._check("wire.ack-beyond-data", beyond <= 0, ev, conn,
                            f"ack {seg.ack} is {beyond:+d} beyond the "
                            f"peer's highest sent byte {reverse.max_end}")

    def _check_topology(self, ev: ProbeEvent, frame, seg: TcpSegment,
                        conn: str) -> None:
        topo = self.topology
        if topo is None:
            return
        if topo.service_port not in (seg.src_port, seg.dst_port):
            return
        src_mac = str(frame.src)
        if src_mac == topo.backup_mac:
            self._check("wire.backup-silent",
                        self._takeover_at is not None
                        and ev.time >= self._takeover_at,
                        ev, conn,
                        "backup emitted a service-flow frame before "
                        "takeover (output suppression breached)")
        elif src_mac == topo.primary_mac and self._takeover_at is not None:
            self._check("wire.primary-silent",
                        ev.time <= self._takeover_at + _TAKEOVER_GRACE_NS,
                        ev, conn,
                        f"primary emitted a service-flow frame "
                        f"{(ev.time - self._takeover_at) / 1e6:.1f} ms "
                        f"after takeover (dual active)")

    # ---------------------------------------------------- heartbeat layer

    def _on_heartbeat(self, ev: ProbeEvent) -> None:
        hb = ev.fields.get("hb")
        if hb is None:
            return
        prev_seq = self._hb_seq.get(ev.source)
        if prev_seq is not None:
            self._check("hb.seq-monotone", hb.seq > prev_seq, ev, ev.source,
                        f"heartbeat seq {hb.seq} after {prev_seq}")
        self._hb_seq[ev.source] = hb.seq
        for progress in hb.connections:
            key = (ev.source, progress.key)
            counters = (progress.last_byte_received,
                        progress.last_ack_received,
                        progress.last_app_byte_written,
                        progress.last_app_byte_read)
            prev = self._hb_progress.get(key)
            if prev is not None:
                ok = all(now >= before for now, before
                         in zip(counters, prev))
                self._check("hb.progress-monotone", ok, ev,
                            f"{ev.source}:{progress.key}",
                            f"progress counters retreated {prev} -> "
                            f"{counters}")
            self._hb_progress[key] = counters

    # -------------------------------------------------------- sttcp layer

    def _on_takeover(self, ev: ProbeEvent) -> None:
        if "key" in ev.fields:
            return   # per-connection logger-recovery completion, not a
                     # second engine-level takeover
        if self._takeover_at is None:
            self._takeover_at = ev.time
        self.checks["sttcp.single-active"] += 1
        if self._takeover_sources and ev.source not in self._takeover_sources:
            self._fail("sttcp.single-active", ev, ev.source,
                       f"second takeover (already taken over by "
                       f"{sorted(self._takeover_sources)})")
        if self._nonft_sources:
            self._fail("sttcp.single-active", ev, ev.source,
                       f"takeover after non-FT mode on "
                       f"{sorted(self._nonft_sources)} (split brain)")
        self._takeover_sources.add(ev.source)

    def _on_non_ft(self, ev: ProbeEvent) -> None:
        self.checks["sttcp.single-active"] += 1
        if self._takeover_sources:
            self._fail("sttcp.single-active", ev, ev.source,
                       f"non-FT mode after takeover by "
                       f"{sorted(self._takeover_sources)} (split brain)")
        self._nonft_sources.add(ev.source)

    def _on_replicated(self, ev: ProbeEvent) -> None:
        key = ev.fields.get("key")
        if key is None:
            return
        # A fresh replica announcement restarts the progress space for
        # that connection key (e.g. a client port reused after close).
        for tracked in [t for t in self._hb_progress if t[1] == key]:
            del self._hb_progress[tracked]


class CheckedRun:
    """Attach an oracle for the duration of a ``with`` block and raise
    :class:`InvariantViolationError` on exit if anything tripped.

    ::

        with CheckedRun(tb.world, CheckTopology.from_testbed(tb)):
            tb.run_until(60)
    """

    def __init__(self, world, topology: Optional[CheckTopology] = None,
                 raise_on_violation: bool = True):
        self.oracle = InvariantOracle(world, topology)
        self.raise_on_violation = raise_on_violation

    def __enter__(self) -> InvariantOracle:
        return self.oracle.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.oracle.detach()
        if (exc_type is None and self.raise_on_violation
                and self.oracle.violations):
            raise InvariantViolationError(self.oracle.violations)
