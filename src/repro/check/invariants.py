"""The catalogue of runtime-checked protocol invariants.

Every invariant the :class:`~repro.check.oracle.InvariantOracle` enforces
is declared here, with the RFC or paper section it comes from.  The
catalogue is rendered for humans in ``docs/invariants.md``
(``tests/check/test_catalogue.py`` keeps the two in sync), and each
:class:`~repro.check.oracle.Violation` names the invariant it broke by
its ``id``.

Layers
------

* ``tcp-endpoint`` — checked from the enriched ``tcp.segment_tx`` /
  ``tcp.deliver`` probes, per connection, against that endpoint's own
  declared sender/receiver state;
* ``wire`` — checked from ``eth.frame`` at the switch, per TCP flow
  direction, so they hold across *whichever* machine is emitting
  (primary before failover, backup after — the ST-TCP headline claim);
* ``heartbeat`` — checked from the ``hb.state`` payload tap;
* ``sttcp`` — engine-level mode decisions (``sttcp.takeover`` /
  ``sttcp.non-ft-mode``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Invariant", "INVARIANTS", "LAYERS"]

LAYERS = ("tcp-endpoint", "wire", "heartbeat", "sttcp")


@dataclass(frozen=True)
class Invariant:
    """One checked protocol property."""

    id: str
    layer: str
    title: str
    anchor: str       # the RFC section / paper section it reproduces
    description: str


_ALL = [
    # ------------------------------------------------------- tcp-endpoint
    Invariant(
        "tcp.snd-una-le-nxt", "tcp-endpoint",
        "send window ordering",
        "RFC 793 Sec. 3.2",
        "snd_una <= snd_nxt at every emitted segment: a connection never "
        "acknowledges-away bytes it has not yet sent (flight size is "
        "never negative)."),
    Invariant(
        "tcp.snd-una-monotone", "tcp-endpoint",
        "cumulative ack point never retreats",
        "RFC 793 Sec. 3.4",
        "snd_una is non-decreasing over a connection's lifetime; an ack "
        "cannot un-acknowledge data."),
    Invariant(
        "tcp.seq-in-window", "tcp-endpoint",
        "emitted sequence numbers stay in the send window",
        "RFC 793 Sec. 3.7",
        "every non-SYN segment starts at a stream offset in "
        "[snd_una, snd_nxt] (mod 2^32): retransmissions start at or above "
        "the ack point, new data exactly at snd_nxt."),
    Invariant(
        "tcp.cwnd-floor", "tcp-endpoint",
        "congestion window floor",
        "RFC 5681 Sec. 3.1",
        "cwnd >= 1 MSS always — even after an RTO collapse the sender "
        "may keep one segment in flight."),
    Invariant(
        "tcp.ssthresh-floor", "tcp-endpoint",
        "slow-start threshold floor",
        "RFC 5681 Sec. 3.1 eq. (4)",
        "ssthresh >= 2 MSS after any loss event (the initial 'infinite' "
        "value also satisfies this)."),
    Invariant(
        "tcp.rcv-nxt-monotone", "tcp-endpoint",
        "in-order receive point never retreats",
        "RFC 793 Sec. 3.4",
        "rcv_next (the receiver's delivered-prefix length) is "
        "non-decreasing: delivered bytes are never taken back."),
    Invariant(
        "tcp.deliver-contiguous", "tcp-endpoint",
        "exactly-once, gapless in-order delivery",
        "ST-TCP paper Sec. 2",
        "each tcp.deliver event starts exactly where the previous one "
        "ended (from offset 0): the application-visible byte stream has "
        "no gaps and no re-delivery — across failover included."),
    # --------------------------------------------------------------- wire
    Invariant(
        "wire.seq-continuity", "wire",
        "one continuous sequence space per flow direction",
        "ST-TCP paper Sec. 2",
        "successive on-wire sequence numbers of a flow direction stay "
        "within a window-sized band (mod 2^32) of the running maximum; "
        "a post-takeover backup continuing with a different ISN than the "
        "primary's would jump by a random 32-bit distance."),
    Invariant(
        "wire.ack-monotone", "wire",
        "on-wire ack numbers never retreat",
        "RFC 793 Sec. 3.4 / ST-TCP paper Sec. 3",
        "per flow direction the ack field is non-decreasing (mod 2^32), "
        "including across the primary-to-backup handoff: the backup may "
        "not ack less than the primary already acked (RST segments are "
        "exempt; their ack field is incidental)."),
    Invariant(
        "wire.ack-beyond-data", "wire",
        "never ack data the peer has not sent",
        "RFC 793 Sec. 3.4",
        "an ack number never exceeds the highest sequence number (plus "
        "SYN/FIN phantom bytes) observed from the opposite direction of "
        "the flow — the receiver cannot acknowledge bytes that were "
        "never on the wire."),
    Invariant(
        "wire.backup-silent", "wire",
        "backup emits nothing before takeover",
        "ST-TCP paper Sec. 2",
        "no service-flow TCP frame sourced from the backup's MAC may "
        "enter the switch before sttcp.takeover fires: output "
        "suppression must be total (requires topology hints)."),
    Invariant(
        "wire.primary-silent", "wire",
        "no dual-active senders after takeover",
        "ST-TCP paper Sec. 2 (STONITH ordering)",
        "after sttcp.takeover (plus an in-flight grace window) no "
        "service-flow TCP frame sourced from the primary's MAC may "
        "enter the switch: STONITH-before-unsuppress means at most one "
        "live server (requires topology hints)."),
    # ---------------------------------------------------------- heartbeat
    Invariant(
        "hb.seq-monotone", "heartbeat",
        "heartbeat sequence numbers increase",
        "ST-TCP paper Sec. 3",
        "each HeartbeatService emits strictly increasing heartbeat "
        "sequence numbers (out-of-schedule FIN-notice heartbeats "
        "included)."),
    Invariant(
        "hb.progress-monotone", "heartbeat",
        "per-connection progress counters are monotone",
        "ST-TCP paper Sec. 3",
        "LastByteReceived, LastAckReceived, LastAppByteWritten and "
        "LastAppByteRead carried in successive heartbeats for one "
        "connection never decrease (they are cumulative stream "
        "offsets)."),
    # -------------------------------------------------------------- sttcp
    Invariant(
        "sttcp.single-active", "sttcp",
        "no split brain",
        "ST-TCP paper Sec. 4",
        "a run never sees both a backup takeover and the primary "
        "declaring non-FT mode, and never two engine-level takeovers: "
        "exactly one side may claim the service."),
]

#: id -> Invariant; the authoritative catalogue.
INVARIANTS: dict[str, Invariant] = {inv.id: inv for inv in _ALL}

if len(INVARIANTS) != len(_ALL):  # pragma: no cover - catalogue bug guard
    raise AssertionError("duplicate invariant id in catalogue")
for _inv in INVARIANTS.values():  # pragma: no branch
    if _inv.layer not in LAYERS:  # pragma: no cover
        raise AssertionError(f"invariant {_inv.id} has unknown layer "
                             f"{_inv.layer}")
