"""repro.check — the runtime protocol-invariant oracle.

Validates every scenario run against the TCP / ST-TCP invariants
catalogued in :mod:`repro.check.invariants` (rendered in
``docs/invariants.md``) by listening on the observability bus.
"""

from repro.check.invariants import INVARIANTS, LAYERS, Invariant
from repro.check.oracle import (CheckTopology, CheckedRun, InvariantOracle,
                                InvariantViolationError, Violation)

__all__ = ["Invariant", "INVARIANTS", "LAYERS", "CheckTopology",
           "CheckedRun", "InvariantOracle", "InvariantViolationError",
           "Violation"]
