"""Opt-in, fleet-wide oracle attachment for test runs.

``REPRO_CHECK=1 pytest`` makes the autouse fixture in ``tests/conftest.py``
call :func:`patch_worlds` for every test: every :class:`~repro.sim.world.World`
constructed during the test gets an :class:`~repro.check.oracle.InvariantOracle`
attached at birth, and the fixture asserts at teardown that none of them
recorded a violation.  Tests that deliberately produce hostile traffic mark
themselves ``@pytest.mark.no_invariant_check``.

No topology hints are available here (a bare ``World`` has no notion of
which host is the backup), so the wire.backup-silent / wire.primary-silent
checks are inert under the fixture — they run in :class:`CheckedRun` and
under ``--check`` on the CLI demos, where a testbed provides the hints.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.check.oracle import InvariantOracle
from repro.sim.world import World

__all__ = ["env_enabled", "patch_worlds"]

ENV_VAR = "REPRO_CHECK"


def env_enabled() -> bool:
    """True when the ``REPRO_CHECK`` environment opt-in is set."""
    return os.environ.get(ENV_VAR, "") not in ("", "0")


@contextmanager
def patch_worlds():
    """Attach an oracle to every ``World`` constructed inside the block.

    Yields the list of attached oracles (one per World, in construction
    order) so the caller can inspect violations after the block.
    """
    oracles: list[InvariantOracle] = []
    original_init = World.__init__

    def checked_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        oracles.append(InvariantOracle(self).attach())

    World.__init__ = checked_init
    try:
        yield oracles
    finally:
        World.__init__ = original_init
        for oracle in oracles:
            oracle.detach()
