"""Command-line interface: run the paper's demonstrations from a shell.

::

    python -m repro list                 # what can I run?
    python -m repro demo1                # seamless failover vs baseline
    python -m repro demo2 --hb 200 500 1000
    python -m repro demo3 --size 100000000
    python -m repro demo4
    python -m repro demo5
    python -m repro table1
    python -m repro demo1 --seed 7       # every command takes --seed
    python -m repro demo1 --obs-out out/ --obs-level frames
    python -m repro sweep --grid hb_period_ms=200,500,1000 --trials 30 \
        --jobs 4 --out sweep.json       # parallel campaign engine

Every command accepts ``--obs-out DIR`` to export observability
artifacts (counter snapshot, per-connection TCP timeline, pcap-style
frame log — see ``docs/observability.md``) and ``--obs-level`` to pick
how much is recorded.  Exports are deterministic per seed.

Every command also accepts ``--check``: the run is validated against the
protocol invariant oracle (``docs/invariants.md``) and the process exits
2 if any invariant was breached.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.metrics.report import banner, format_duration, format_table
from repro.obs.export import OBS_LEVELS
from repro.tcp.congestion import cc_names


def _run_options(args, run_until_s: float = 60.0):
    """The shared RunOptions every demo hands its runner — one place maps
    CLI flags (--seed/--obs-out/--obs-level/--check/--cc) onto the API."""
    from repro.scenarios.options import RunOptions

    return RunOptions(seed=args.seed, run_until_s=run_until_s,
                      obs_level=args.obs_level if args.obs_out else None,
                      check=args.check, cc=args.cc)


def _export_obs(obs, args, subdir: str = "") -> None:
    """Write one run's artifacts under ``--obs-out[/subdir]`` and say so."""
    if obs is None or not args.obs_out:
        return
    out = os.path.join(args.obs_out, subdir) if subdir else args.obs_out
    paths = obs.write(out)
    print(f"\nobservability artifacts ({obs.level}) -> {out}:")
    for name in sorted(paths):
        print(f"  {name}")


def _demo1(args) -> int:
    from repro.faults.faults import HwCrash
    from repro.scenarios.runner import (run_baseline_failover,
                                        run_failover_experiment)

    print("Demo 1: 30 MB stream, primary HW crash at t=1s")
    options = _run_options(args)
    sttcp = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=30_000_000, fault_at_s=1.0, options=options)
    baseline = run_baseline_failover(
        total_bytes=30_000_000, fault_at_s=1.0,
        liveness_timeout_s=2.0, options=options)
    rows = [
        ["ST-TCP", sttcp.client.reset_count, 0,
         format_duration(sttcp.glitch_ns),
         "yes" if sttcp.stream_intact else "NO"],
        ["hot standby (no ST-TCP)", baseline.client.reset_count,
         baseline.client.reconnect_count,
         format_duration(baseline.disruption_ns), "n/a"],
    ]
    print(format_table(["system", "resets", "reconnects", "outage",
                        "stream intact"], rows))
    print("\nST-TCP timeline:", sttcp.timeline.describe())
    # The ST-TCP run's artifacts land in the --obs-out root; the
    # baseline's in a subdirectory, so the headline run is easy to find.
    _export_obs(sttcp.obs, args)
    _export_obs(baseline.obs, args, subdir="baseline")
    return 0 if sttcp.stream_intact else 1


def _demo2(args) -> int:
    from repro.faults.faults import HwCrash
    from repro.scenarios.runner import run_failover_experiment
    from repro.sim.core import millis
    from repro.sttcp.config import SttcpConfig

    print(f"Demo 2: failover time vs HB period {args.hb} ms")
    rows = []
    for period_ms in args.hb:
        result = run_failover_experiment(
            lambda tb, sp, sb: HwCrash(tb.primary),
            total_bytes=30_000_000, fault_at_s=2.0,
            config=SttcpConfig(hb_period_ns=millis(period_ms)),
            options=_run_options(args))
        _export_obs(result.obs, args, subdir=f"hb_{period_ms}ms")
        timeline = result.timeline
        rows.append([f"{period_ms} ms",
                     format_duration(timeline.detection_latency_ns),
                     format_duration(timeline.backoff_residue_ns),
                     format_duration(timeline.failover_time_ns)])
    print(format_table(["HB period", "detection", "residue",
                        "failover time"], rows))
    return 0


def _demo3(args) -> int:
    from repro.apps.filetransfer import FileClient, FileServer
    from repro.check.oracle import (CheckTopology, InvariantOracle,
                                    InvariantViolationError)
    from repro.obs.export import ObsSession
    from repro.scenarios.builder import build_testbed

    print(f"Demo 3: {args.size / 1e6:.0f} MB transfer, ST-TCP on vs off")
    times = {}
    for enabled in (True, False):
        tb = build_testbed(seed=args.seed,
                           mode="sttcp" if enabled else "baseline",
                           cc=args.cc)
        obs = (ObsSession(tb.world, level=args.obs_level)
               if args.obs_out else None)
        # Demo 3 builds its testbed inline, so it attaches the oracle
        # itself; wire-role hints only make sense with ST-TCP on.
        oracle = (InvariantOracle(
            tb.world, CheckTopology.from_testbed(tb) if enabled else None)
            .attach() if args.check else None)
        FileServer(tb.primary, "fs-p", port=80).start()
        if enabled:
            FileServer(tb.backup, "fs-b", port=80).start()
            tb.pair.start()
        target = tb.service_ip if enabled else tb.addresses.primary_ip
        client = FileClient(tb.client, "c", target, port=80,
                            file_size=args.size)
        client.start()
        tb.run_until(120)
        times[enabled] = client.transfer_time_ns
        if obs is not None:
            obs.finalize()
            _export_obs(obs, args,
                        subdir="sttcp_on" if enabled else "sttcp_off")
        if oracle is not None:
            oracle.detach()
            if oracle.violations:
                raise InvariantViolationError(oracle.violations)
    overhead = (times[True] - times[False]) / times[False] * 100
    print(format_table(
        ["configuration", "transfer time"],
        [["ST-TCP enabled", f"{times[True] / 1e9:.4f} s"],
         ["ST-TCP disabled", f"{times[False] / 1e9:.4f} s"]]))
    print(f"\noverhead: {overhead:+.2f}%")
    return 0


def _demo4(args) -> int:
    from repro.faults.faults import AppCrashWithCleanup, AppHang
    from repro.scenarios.runner import run_failover_experiment
    from repro.sim.core import seconds
    from repro.sttcp.config import SttcpConfig

    config = SttcpConfig(max_delay_fin_ns=seconds(5))
    print("Demo 4: application crash failures (primary app, t=1s)")
    rows = []
    for label, subdir, fault in (
            ("hang (no FIN)", "app_hang", lambda tb, sp, sb: AppHang(sp)),
            ("OS cleanup (FIN)", "app_crash_fin",
             lambda tb, sp, sb: AppCrashWithCleanup(sp))):
        result = run_failover_experiment(
            fault, total_bytes=30_000_000, fault_at_s=1.0,
            config=config, options=_run_options(args))
        _export_obs(result.obs, args, subdir=subdir)
        rows.append([label,
                     format_duration(result.timeline.detection_latency_ns),
                     format_duration(result.timeline.failover_time_ns),
                     "yes" if result.stream_intact else "NO"])
    print(format_table(["scenario", "detection", "failover",
                        "stream intact"], rows))
    return 0


def _demo5(args) -> int:
    from repro.faults.faults import NicFailure
    from repro.scenarios.runner import run_failover_experiment

    print("Demo 5: NIC failures (t=1s)")
    rows = []
    for label, fault, side in (
            ("primary NIC", lambda tb, sp, sb: NicFailure(tb.primary.nics[0]),
             "backup"),
            ("backup NIC", lambda tb, sp, sb: NicFailure(tb.backup.nics[0]),
             "primary")):
        result = run_failover_experiment(
            fault, total_bytes=30_000_000, fault_at_s=1.0,
            options=_run_options(args))
        _export_obs(result.obs, args,
                    subdir=label.replace(" ", "_"))
        pair = result.testbed.pair
        action = ("backup took over" if pair.backup.takeover_at is not None
                  else "primary went non-FT")
        rows.append([label, action,
                     "yes" if result.stream_intact else "NO"])
    print(format_table(["failed NIC", "recovery", "stream intact"], rows))
    return 0


def _table1(args) -> int:
    from repro.faults.faults import (AppCrashWithCleanup, AppHang, HwCrash,
                                     NicFailure)
    from repro.scenarios.runner import run_failover_experiment
    from repro.sim.core import seconds
    from repro.sttcp.config import SttcpConfig

    config = SttcpConfig(max_delay_fin_ns=seconds(5))
    scenarios = [
        ("1 HW/OS crash", "primary", lambda tb, sp, sb: HwCrash(tb.primary)),
        ("1 HW/OS crash", "backup", lambda tb, sp, sb: HwCrash(tb.backup)),
        ("2 app hang", "primary", lambda tb, sp, sb: AppHang(sp)),
        ("2 app hang", "backup", lambda tb, sp, sb: AppHang(sb)),
        ("3 app crash+FIN", "primary",
         lambda tb, sp, sb: AppCrashWithCleanup(sp)),
        ("3 app crash+FIN", "backup",
         lambda tb, sp, sb: AppCrashWithCleanup(sb)),
        ("4 NIC failure", "primary",
         lambda tb, sp, sb: NicFailure(tb.primary.nics[0])),
        ("4 NIC failure", "backup",
         lambda tb, sp, sb: NicFailure(tb.backup.nics[0])),
    ]
    print("Table 1: all single-failure scenarios")
    rows = []
    for failure, location, fault in scenarios:
        result = run_failover_experiment(
            fault, total_bytes=30_000_000, fault_at_s=1.0,
            config=config, options=_run_options(args))
        slug = (failure.replace(" ", "_").replace("/", "-")
                .replace("+", "-"))
        _export_obs(result.obs, args, subdir=f"{slug}_{location}")
        pair = result.testbed.pair
        action = ("backup takes over" if pair.backup.takeover_at is not None
                  else "primary non-FT")
        rows.append([failure, location, action,
                     "yes" if result.stream_intact else "NO"])
    print(format_table(["failure", "location", "recovery",
                        "client unaffected"], rows))
    return 0


def _workload(args) -> int:
    from repro.workloads import WorkloadSpec, run_workload_failover

    print(f"Workload: {args.connections} {args.kind} connections over "
          f"{args.clients} clients, primary HW crash at t={args.fault_at}s")
    spec = WorkloadSpec(kind=args.kind, connections=args.connections,
                        bytes_per_conn=args.bytes,
                        mean_interarrival_s=args.churn_ms / 1000.0)
    result = run_workload_failover(
        spec, num_clients=args.clients, fault_at_s=args.fault_at,
        options=_run_options(args, run_until_s=args.run_until))
    summary = result.summary()
    print(format_table(
        ["connections", "clients", "completed", "intact", "all intact"],
        [[summary["connections"], summary["clients"], summary["completed"],
          summary["intact"], "yes" if summary["all_intact"] else "NO"]]))
    print("\ntimeline:", result.timeline.describe())
    not_intact = [r for r in result.records if not r.stream_intact]
    for record in not_intact[:10]:
        print(f"  not intact: {record!r}")
    _export_obs(result.obs, args)
    return 0 if result.all_intact else 1


def _sweep(args) -> int:
    from repro.campaign.cli import run_sweep

    return run_sweep(args)


_COMMANDS = {
    "demo1": (_demo1, "client-transparent seamless failover vs baseline"),
    "demo2": (_demo2, "failover time vs heartbeat frequency"),
    "demo3": (_demo3, "failure-free overhead (bulk transfer)"),
    "demo4": (_demo4, "application crash failures"),
    "demo5": (_demo5, "NIC failures"),
    "table1": (_table1, "the full single-failure matrix"),
    "workload": (_workload, "many-connection workload through a failover"),
    "sweep": (_sweep, "parallel campaign: grid sweep / Monte Carlo trials"),
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the ST-TCP paper's demonstrations.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available demonstrations")
    for name, (_fn, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "sweep":
            # The campaign engine has its own knob surface (grid, jobs,
            # timeout, ...); workers always run with observability off.
            from repro.campaign.cli import add_sweep_args

            add_sweep_args(p)
            continue
        p.add_argument("--seed", type=int, default=3)
        p.add_argument("--obs-out", metavar="DIR", default=None,
                       help="export observability artifacts into DIR "
                            "(see docs/observability.md)")
        p.add_argument("--obs-level", choices=OBS_LEVELS, default="frames",
                       help="how much to record when --obs-out is given "
                            "(default: frames)")
        p.add_argument("--check", action="store_true",
                       help="validate the run against the protocol "
                            "invariant oracle (docs/invariants.md); "
                            "exit 2 on any violation")
        p.add_argument("--cc", choices=cc_names(), default=None,
                       help="congestion-control algorithm for every TCP "
                            "endpoint (default: the TcpConfig default, "
                            "reno; see docs/congestion.md)")
        if name == "demo2":
            p.add_argument("--hb", type=int, nargs="+",
                           default=[200, 500, 1000],
                           help="heartbeat periods in ms")
        if name == "demo3":
            p.add_argument("--size", type=int, default=100_000_000)
        if name == "workload":
            p.add_argument("--kind", choices=("stream", "kv"),
                           default="stream")
            p.add_argument("--connections", type=int, default=32)
            p.add_argument("--clients", type=int, default=32,
                           help="client hosts on the switch")
            p.add_argument("--bytes", type=int, default=100_000,
                           help="payload bytes per stream connection")
            p.add_argument("--churn-ms", type=float, default=20.0,
                           help="mean interarrival gap between connections")
            p.add_argument("--fault-at", type=float, default=1.0)
            p.add_argument("--run-until", type=float, default=60.0)
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print(banner("ST-TCP demonstrations"))
        for name, (_fn, help_text) in _COMMANDS.items():
            print(f"  {name:8s} {help_text}")
        return 0
    handler, _help = _COMMANDS[args.command]
    if args.check and args.command != "sweep":
        from repro.check.oracle import InvariantViolationError
        try:
            rc = handler(args)
        except InvariantViolationError as exc:
            print(f"\ninvariant check FAILED:\n{exc}", file=sys.stderr)
            return 2
        print("\ninvariant check: clean")
        return rc
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
