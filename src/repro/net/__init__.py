"""Simulated network substrate: Ethernet, ARP, IP, ICMP, UDP, serial.

This package is the laptop-scale stand-in for the paper's physical testbed
(switch, NICs, IP aliasing, static ARP to a multicast Ethernet address,
null-modem serial cable) — see DESIGN.md for the substitution table.
"""

from repro.net.addresses import BROADCAST_MAC, IPAddress, MacAddress
from repro.net.arp import ARP_REPLY, ARP_REQUEST, ArpMessage, ArpTable
from repro.net.cable import Cable, CableEndpoint
from repro.net.frame import EtherType, EthernetFrame
from repro.net.icmp import IcmpLayer, IcmpMessage, Pinger
from repro.net.ip import Interface, IpStack
from repro.net.nic import Nic
from repro.net.packet import IPPacket, IPProtocol
from repro.net.serial_link import SERIAL_DEFAULT_BAUD, SerialLink, SerialPort
from repro.net.switch import Switch, SwitchPort
from repro.net.udp import UdpDatagram, UdpLayer

__all__ = [
    "ARP_REPLY",
    "ARP_REQUEST",
    "BROADCAST_MAC",
    "ArpMessage",
    "ArpTable",
    "Cable",
    "CableEndpoint",
    "EtherType",
    "EthernetFrame",
    "IcmpLayer",
    "IcmpMessage",
    "IPAddress",
    "IPPacket",
    "IPProtocol",
    "Interface",
    "IpStack",
    "MacAddress",
    "Nic",
    "Pinger",
    "SERIAL_DEFAULT_BAUD",
    "SerialLink",
    "SerialPort",
    "Switch",
    "SwitchPort",
    "UdpDatagram",
    "UdpLayer",
]
