"""Ethernet frames.

A frame's payload is a structured Python object (an
:class:`~repro.net.packet.IPPacket`, an ARP message, ...) rather than
bytes: the simulator models sizes and timing, not bit layouts.  Every
payload type therefore exposes ``size_bytes`` so link serialization delays
are faithful.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.net.addresses import MacAddress

__all__ = ["EtherType", "EthernetFrame", "SizedPayload",
           "ETHERNET_HEADER_BYTES", "ETHERNET_MIN_FRAME_BYTES"]

# 14-byte header + 4-byte FCS; preamble/IFG are ignored (constant offsets).
ETHERNET_HEADER_BYTES = 18
ETHERNET_MIN_FRAME_BYTES = 64


@runtime_checkable
class SizedPayload(Protocol):
    """Anything that can ride inside a frame or packet."""

    @property
    def size_bytes(self) -> int:
        """On-wire size in bytes."""


class EtherType:
    """The two ethertypes the testbed uses."""

    IPV4 = "ipv4"
    ARP = "arp"


class EthernetFrame:
    """An L2 frame: dst/src MAC, ethertype tag, structured payload.

    A plain slotted class (not a dataclass) for construction speed on the
    per-segment hot path; ``size_bytes`` honours the Ethernet minimum
    frame size and is cached because cables and NICs read it several
    times per hop.
    """

    __slots__ = ("dst", "src", "ethertype", "payload", "size_bytes",
                 "_claims")

    def __init__(self, dst: MacAddress, src: MacAddress, ethertype: str,
                 payload: Any):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload
        self._claims = 0  # 0 = GC-owned; >0 = pooled (see repro.net.pool)
        payload_size = getattr(payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(payload)
        self.size_bytes = max(ETHERNET_MIN_FRAME_BYTES,
                              ETHERNET_HEADER_BYTES + payload_size)

    def __str__(self) -> str:
        return (f"Frame[{self.src} -> {self.dst} {self.ethertype} "
                f"{self.size_bytes}B]")
