"""Ethernet frames.

A frame's payload is a structured Python object (an
:class:`~repro.net.packet.IPPacket`, an ARP message, ...) rather than
bytes: the simulator models sizes and timing, not bit layouts.  Every
payload type therefore exposes ``size_bytes`` so link serialization delays
are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.net.addresses import MacAddress

__all__ = ["EtherType", "EthernetFrame", "SizedPayload",
           "ETHERNET_HEADER_BYTES", "ETHERNET_MIN_FRAME_BYTES"]

# 14-byte header + 4-byte FCS; preamble/IFG are ignored (constant offsets).
ETHERNET_HEADER_BYTES = 18
ETHERNET_MIN_FRAME_BYTES = 64


@runtime_checkable
class SizedPayload(Protocol):
    """Anything that can ride inside a frame or packet."""

    @property
    def size_bytes(self) -> int:
        """On-wire size in bytes."""


class EtherType:
    """The two ethertypes the testbed uses."""

    IPV4 = "ipv4"
    ARP = "arp"


@dataclass(frozen=True, slots=True)
class EthernetFrame:
    """An L2 frame: dst/src MAC, ethertype tag, structured payload."""

    dst: MacAddress
    src: MacAddress
    ethertype: str
    payload: Any = field(repr=False)
    # On-wire size honouring the Ethernet minimum frame size; cached
    # because cables and NICs read it several times per hop.
    size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        payload_size = getattr(self.payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(self.payload)
        object.__setattr__(
            self, "size_bytes",
            max(ETHERNET_MIN_FRAME_BYTES, ETHERNET_HEADER_BYTES + payload_size))

    def __str__(self) -> str:
        return (f"Frame[{self.src} -> {self.dst} {self.ethertype} "
                f"{self.size_bytes}B]")
