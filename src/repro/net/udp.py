"""Minimal UDP: just enough to carry the ST-TCP heartbeat over the IP link."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import PortInUseError
from repro.net.addresses import IPAddress
from repro.net.packet import IPPacket, IPProtocol
from repro.sim.world import World

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ip import IpStack

__all__ = ["UdpDatagram", "UdpLayer"]

_UDP_HEADER_BYTES = 8


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram carrying a structured payload."""

    src_port: int
    dst_port: int
    payload: Any = field(repr=False)

    @property
    def size_bytes(self) -> int:
        """On-wire datagram size (UDP header + payload)."""
        payload_size = getattr(self.payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(self.payload)
        return _UDP_HEADER_BYTES + payload_size


class UdpLayer:
    """Per-host UDP demultiplexer."""

    def __init__(self, world: World, ip_stack: "IpStack", name: str = "udp"):
        self._world = world
        self._ip = ip_stack
        self.name = name
        # handler(payload, src_ip, src_port)
        self._bindings: dict[int, Callable[[Any, IPAddress, int], None]] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.datagrams_dropped = 0

    def bind(self, port: int,
             handler: Callable[[Any, IPAddress, int], None]) -> None:
        """Attach ``handler`` to a local UDP port."""
        if port in self._bindings:
            raise PortInUseError(f"UDP port {port} already bound on {self.name}")
        self._bindings[port] = handler

    def unbind(self, port: int) -> None:
        """Release a bound port."""
        self._bindings.pop(port, None)

    def send(self, dst_ip: IPAddress, dst_port: int, src_port: int,
             payload: Any, src_ip: Optional[IPAddress] = None) -> None:
        """Fire-and-forget datagram."""
        datagram = UdpDatagram(src_port, dst_port, payload)
        self.datagrams_sent += 1
        self._ip.send(dst_ip, IPProtocol.UDP, datagram, src=src_ip)

    def handle_packet(self, packet: IPPacket) -> None:
        """Demultiplex an inbound UDP packet to its binding."""
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        handler = self._bindings.get(datagram.dst_port)
        if handler is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_received += 1
        handler(datagram.payload, packet.src, datagram.src_port)
