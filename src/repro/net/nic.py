"""Network interface cards.

A NIC filters inbound frames (own MAC, broadcast, subscribed multicast
groups, or promiscuous), counts traffic, and supports the failure mode of
Table 1 row 4: a failed NIC neither sends nor receives, while the host and
its serial port stay alive.

The multicast subscription is the heart of the ST-TCP testbed: both the
primary and the backup subscribe their NIC to ``multiEA`` so the switch's
flood of client→serviceIP frames reaches both servers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import MacAddress
from repro.net.cable import Cable
from repro.net.frame import EthernetFrame
from repro.sim.world import World

__all__ = ["Nic"]


class Nic:
    """A single Ethernet interface attached to a host."""

    __slots__ = ("_world", "name", "mac", "multicast_groups", "_promiscuous",
                 "_cable", "_failed", "host_up", "_power_gate", "_upper",
                 "frames_sent", "frames_received", "bytes_sent",
                 "bytes_received", "frames_filtered", "_accept_values")

    def __init__(self, world: World, name: str, mac: MacAddress):
        self._world = world
        self.name = name
        self.mac = mac
        self.multicast_groups: set[MacAddress] = set()
        self._promiscuous = False
        # Raw address values this NIC accepts (own MAC, broadcast, joined
        # groups) — an int set so the per-frame filter decision is one
        # C-level lookup.  At fleet scale most flooded frames are filtered,
        # making this the single hottest branch in the simulator.
        self._accept_values: set[int] = {mac.value, (1 << 48) - 1}
        self._cable: Optional[Cable] = None
        self._failed = False
        # Host power state: a powered-off machine neither sends nor
        # receives, regardless of NIC health.  Host power-off is
        # irreversible in every scenario, so the host pushes a plain bool
        # down here instead of the NIC calling back up through a gate
        # function on every frame (this check runs once per flooded frame
        # per NIC — the hottest branch at fleet scale).
        self.host_up = True
        # Optional per-frame gate override (tests inject custom gates).
        self._power_gate: Optional[Callable[[], bool]] = None
        # Installed by the host's IP layer.
        self._upper: Optional[Callable[[EthernetFrame], None]] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_filtered = 0

    # -------------------------------------------------------------- wiring

    def attach_cable(self, cable: Cable) -> None:
        """Plug the NIC into a cable (once)."""
        if self._cable is not None:
            raise ValueError(f"{self.name} already has a cable attached")
        self._cable = cable

    def set_upper(self, handler: Callable[[EthernetFrame], None]) -> None:
        """Install the L3 handler that receives accepted frames."""
        self._upper = handler

    def join_multicast(self, group: MacAddress) -> None:
        """Subscribe to a multicast Ethernet address (e.g. multiEA)."""
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast MAC address")
        self.multicast_groups.add(group)
        self._accept_values.add(group.value)
        self._world.net_epoch += 1

    def leave_multicast(self, group: MacAddress) -> None:
        """Unsubscribe from a multicast group."""
        self.multicast_groups.discard(group)
        self._accept_values.discard(group.value)
        self._world.net_epoch += 1

    @property
    def power_gate(self) -> "Optional[Callable[[], bool]]":
        """Per-frame delivery gate override (assignable; tests inject
        custom gates).  The setter bumps ``World.net_epoch`` because the
        switch's flood planner pre-classifies ungated NICs at cache-build
        time (see ``Switch._build_flood_targets``); hot paths read the
        ``_power_gate`` slot directly."""
        return self._power_gate

    @power_gate.setter
    def power_gate(self, gate: "Optional[Callable[[], bool]]") -> None:
        self._power_gate = gate
        self._world.net_epoch += 1

    @property
    def promiscuous(self) -> bool:
        """Accept every frame regardless of destination address."""
        return self._promiscuous

    @promiscuous.setter
    def promiscuous(self, value: bool) -> None:
        self._promiscuous = value
        # Address-filter change: invalidate any cached flood target lists.
        self._world.net_epoch += 1

    # ------------------------------------------------------------- failure

    @property
    def is_up(self) -> bool:
        """True unless a NIC failure was injected."""
        return not self._failed

    def fail(self) -> None:
        """Inject a NIC failure: the card goes deaf and mute."""
        if not self._failed:
            self._failed = True
            # Routing-relevant change: _route skips failed NICs, so any
            # cached IP-layer send plans through this card must die.
            self._world.route_epoch += 1
            self._world.probes.fire("fault.nic", self.name, "NIC failed")

    def repair(self) -> None:
        """Clear an injected NIC failure."""
        if self._failed:
            self._failed = False
            self._world.route_epoch += 1
            self._world.probes.fire("fault.nic", self.name, "NIC repaired")

    # ---------------------------------------------------------------- data

    def send(self, frame: EthernetFrame) -> None:
        """Transmit a frame; silently dropped if the NIC is failed/unplugged
        or the host is powered off."""
        if self._failed or self._cable is None or not self.host_up:
            return
        if self._power_gate is not None and not self._power_gate():
            return
        self.frames_sent += 1
        self.bytes_sent += frame.size_bytes
        probes = self._world.probes
        if probes.wants_map["nic.tx"]:
            probes.fire("nic.tx", self.name, size=frame.size_bytes)
        self._cable.transmit(self, frame)

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Cable-side entry point (CableEndpoint protocol)."""
        if self._failed or not self.host_up:
            return
        if self._power_gate is not None and not self._power_gate():
            return
        if (frame.dst._value not in self._accept_values
                and not self._promiscuous):
            self.frames_filtered += 1
            return
        self.frames_received += 1
        self.bytes_received += frame.size_bytes
        probes = self._world.probes
        if probes.wants_map["nic.rx"]:
            probes.fire("nic.rx", self.name, size=frame.size_bytes)
        if self._upper is not None:
            self._upper(frame)

    def _accepts(self, dst: MacAddress) -> bool:
        return self._promiscuous or dst._value in self._accept_values

    def accepts(self, dst: MacAddress) -> bool:
        """Address-filter predicate, exposed for switch egress filtering
        (the IGMP-snooping analogue).  Purely address-based: a failed or
        powered-off host still *receives* frames on the wire — they are
        dropped at :meth:`receive_frame` — just as a snooping switch does
        not know about host power state."""
        return self._accepts(dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self._failed else "up"
        return f"<Nic {self.name} {self.mac} {state}>"
