"""RS-232 null-modem serial link.

Section 3 of the paper: the secondary heartbeat channel is a direct serial
connection between the two servers (null-modem cable), max 115.2 kbps.
This module models that channel as a message pipe with per-byte
serialization delay and FIFO queueing, independent of the Ethernet fabric
— which is exactly why it survives NIC and switch failures.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.world import World

__all__ = ["SerialPort", "SerialLink", "SERIAL_DEFAULT_BAUD"]

SERIAL_DEFAULT_BAUD = 115_200

# 8N1 framing: 1 start bit + 8 data bits + 1 stop bit per byte.
_BITS_PER_BYTE_8N1 = 10


class SerialPort:
    """One end of a serial link, owned by a host."""

    def __init__(self, world: World, name: str):
        self._world = world
        self.name = name
        self.link: Optional["SerialLink"] = None
        self._handler: Optional[Callable[[Any], None]] = None
        self._enabled = True
        self.messages_sent = 0
        self.messages_received = 0

    def set_handler(self, handler: Callable[[Any], None]) -> None:
        """Install the receive callback (the ST-TCP HB receiver)."""
        self._handler = handler

    def set_enabled(self, enabled: bool) -> None:
        """Host power state gates the port: a dead host neither sends nor
        receives on its serial port."""
        self._enabled = enabled

    def send(self, message: Any) -> None:
        """Queue a message for transmission (dropped if disabled/cut)."""
        if not self._enabled or self.link is None:
            return
        self.messages_sent += 1
        self.link.transmit(self, message)

    def _deliver(self, message: Any) -> None:
        if not self._enabled or self._handler is None:
            return
        self.messages_received += 1
        self._handler(message)


class SerialLink:
    """A null-modem cable between two :class:`SerialPort` ends."""

    def __init__(self, world: World, a: SerialPort, b: SerialPort,
                 baud: int = SERIAL_DEFAULT_BAUD,
                 propagation_delay_ns: int = 100,
                 name: str = "serial"):
        if baud <= 0:
            raise ValueError(f"baud must be positive, got {baud}")
        self._world = world
        self.name = name
        self.baud = baud
        self.propagation_delay_ns = propagation_delay_ns
        self._ends = (a, b)
        a.link = self
        b.link = self
        self._cut = False
        self._tx_free_at = {0: 0, 1: 0}
        self.messages_delivered = 0
        self.bytes_delivered = 0

    @property
    def is_cut(self) -> bool:
        """True while the cable is severed."""
        return self._cut

    def cut(self) -> None:
        """Sever the cable (for double-failure experiments)."""
        self._cut = True
        self._world.trace.record("fault", self.name, "serial link cut")

    def repair(self) -> None:
        """Restore a cut link."""
        self._cut = False

    def transfer_time_ns(self, size_bytes: int) -> int:
        """Serialization time for ``size_bytes`` at this baud rate (8N1)."""
        bits = size_bytes * _BITS_PER_BYTE_8N1
        return (bits * 1_000_000_000) // self.baud

    def transmit(self, sender: SerialPort, message: Any) -> None:
        """Serialize and deliver toward the far end (FIFO per direction)."""
        if self._cut:
            return
        direction = 0 if sender is self._ends[0] else 1
        size = getattr(message, "size_bytes", None)
        if size is None:
            size = len(message)
        now = self._world.sim.now
        start = max(now, self._tx_free_at[direction])
        tx_time = self.transfer_time_ns(size)
        self._tx_free_at[direction] = start + tx_time
        delay = (start - now) + tx_time + self.propagation_delay_ns
        receiver = self._ends[1 - direction]
        self._world.sim.schedule(delay, self._deliver, receiver, message, size,
                                 label=f"{self.name}.deliver")

    def _deliver(self, receiver: SerialPort, message: Any, size: int) -> None:
        if self._cut:
            return
        self.messages_delivered += 1
        self.bytes_delivered += size
        receiver._deliver(message)
