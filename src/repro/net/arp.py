"""Address Resolution Protocol with static-entry support.

The testbed (paper Figure 2) relies on one *static* ARP entry on the
gateway/client mapping ``serviceIP`` to the multicast Ethernet address
``multiEA``.  Everything else resolves dynamically with ordinary
request/reply ARP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.addresses import BROADCAST_MAC, IPAddress, MacAddress
from repro.net.frame import EtherType, EthernetFrame
from repro.sim.world import World

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import Nic

__all__ = ["ArpMessage", "ArpTable", "ARP_REQUEST", "ARP_REPLY"]

ARP_REQUEST = "request"
ARP_REPLY = "reply"
_ARP_SIZE_BYTES = 28


@dataclass(frozen=True)
class ArpMessage:
    """An ARP request or reply."""

    op: str
    sender_mac: MacAddress
    sender_ip: IPAddress
    target_mac: MacAddress
    target_ip: IPAddress

    @property
    def size_bytes(self) -> int:
        """On-wire size of the ARP message."""
        return _ARP_SIZE_BYTES


class ArpTable:
    """Per-interface ARP resolver and cache.

    ``resolve`` either invokes the continuation immediately (cache/static
    hit) or broadcasts a request and queues the continuation until the
    reply arrives.  Unresolvable addresses simply never call back — like a
    real stack, the queued packet eventually times out at a higher layer.
    """

    def __init__(self, world: World, nic: "Nic", my_ips: Callable[[], list[IPAddress]],
                 name: str = "arp"):
        self._world = world
        self._nic = nic
        self._my_ips = my_ips
        self.name = name
        self._static: dict[IPAddress, MacAddress] = {}
        self._cache: dict[IPAddress, MacAddress] = {}
        self._pending: dict[IPAddress, list[Callable[[MacAddress], None]]] = {}
        self._last_request_at: dict[IPAddress, int] = {}
        self.request_retry_ns = 1_000_000_000  # re-ARP at most once a second
        self.requests_sent = 0
        self.replies_sent = 0

    # --------------------------------------------------------- configuration

    def add_static(self, ip: IPAddress, mac: MacAddress) -> None:
        """Install a permanent mapping (the serviceIP → multiEA trick)."""
        self._static[ip] = mac
        # Resolution changed: invalidate cached IP-layer send plans.
        self._world.route_epoch += 1
        self._world.trace.record("arp", self.name, "static entry",
                                 ip=str(ip), mac=str(mac))

    def lookup(self, ip: IPAddress) -> MacAddress | None:
        """Non-blocking lookup: static first, then dynamic cache."""
        return self._static.get(ip) or self._cache.get(ip)

    # ------------------------------------------------------------ resolution

    def resolve(self, ip: IPAddress, on_resolved: Callable[[MacAddress], None]) -> None:
        """Deliver the MAC for ``ip`` to ``on_resolved``, now or later."""
        mac = self.lookup(ip)
        if mac is not None:
            on_resolved(mac)
            return
        waiters = self._pending.setdefault(ip, [])
        waiters.append(on_resolved)
        # The first waiter triggers a request; later waiters re-trigger it
        # if the previous one has gone unanswered (lost request or reply).
        last = self._last_request_at.get(ip)
        now = self._world.sim.now
        if last is None or now - last >= self.request_retry_ns:
            self._last_request_at[ip] = now
            self._send_request(ip)

    def _send_request(self, ip: IPAddress) -> None:
        my_ips = self._my_ips()
        sender_ip = my_ips[0] if my_ips else IPAddress(0)
        msg = ArpMessage(ARP_REQUEST, self._nic.mac, sender_ip,
                         MacAddress(0), ip)
        self.requests_sent += 1
        self._world.trace.record("arp", self.name, "request", target=str(ip))
        self._nic.send(EthernetFrame(BROADCAST_MAC, self._nic.mac,
                                     EtherType.ARP, msg))

    # --------------------------------------------------------------- receive

    def handle_frame(self, frame: EthernetFrame) -> None:
        """Process an inbound ARP frame (called by the IP stack demux)."""
        msg = frame.payload
        if not isinstance(msg, ArpMessage):
            return
        # Opportunistically learn the sender (standard ARP behaviour), but
        # never overwrite a static entry and never learn multicast MACs.
        if (msg.sender_ip not in self._static
                and not msg.sender_mac.is_multicast
                and msg.sender_ip.value != 0):
            if self._cache.get(msg.sender_ip) != msg.sender_mac:
                self._cache[msg.sender_ip] = msg.sender_mac
                # Resolution changed: invalidate cached send plans.
                self._world.route_epoch += 1
            self._flush_pending(msg.sender_ip, msg.sender_mac)
        if msg.op == ARP_REQUEST and msg.target_ip in set(self._my_ips()):
            reply = ArpMessage(ARP_REPLY, self._nic.mac, msg.target_ip,
                               msg.sender_mac, msg.sender_ip)
            self.replies_sent += 1
            self._world.trace.record("arp", self.name, "reply",
                                     to=str(msg.sender_ip))
            self._nic.send(EthernetFrame(msg.sender_mac, self._nic.mac,
                                         EtherType.ARP, reply))

    def _flush_pending(self, ip: IPAddress, mac: MacAddress) -> None:
        waiters = self._pending.pop(ip, [])
        for on_resolved in waiters:
            on_resolved(mac)
