"""A learning Ethernet switch.

Forwarding rules (exactly what the ST-TCP testbed relies on):

* unicast to a learned MAC → forward out that port only;
* unicast to an unknown MAC → flood;
* multicast / broadcast destination → flood to every port except ingress.

Because the client's static ARP entry maps ``serviceIP`` to a *multicast*
Ethernet address, every client→server frame is flooded and thus received
by both the primary's and the backup's NIC (Figure 2 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.cable import Cable
from repro.net.frame import EthernetFrame
from repro.net.nic import Nic
from repro.sim.world import World

__all__ = ["Switch", "SwitchPort"]


class SwitchPort:
    """One port of a switch — a cable endpoint that hands frames inward."""

    __slots__ = ("switch", "index", "name", "_cable")

    def __init__(self, switch: "Switch", index: int):
        self.switch = switch
        self.index = index
        self.name = f"{switch.name}.p{index}"
        self._cable: Optional[Cable] = None

    @property
    def cable(self) -> Optional[Cable]:
        """The cable plugged into this port (assignable)."""
        return self._cable

    @cable.setter
    def cable(self, cable: Optional[Cable]) -> None:
        self._cable = cable
        self.switch._flood_cache.clear()

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Cable-side entry: hand the frame to the switch fabric."""
        self.switch._ingress(self, frame)

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this port's cable."""
        if self._cable is not None:
            self._cable.transmit(self, frame)


class Switch:
    """A store-and-forward learning switch with a fixed forwarding latency.

    Floods are *batched*: instead of scheduling one delivery event per
    egress port, the switch plans every egress cable's arrival time
    (:meth:`Cable.plan_transmit`), groups ports whose frame arrives at the
    same instant, and schedules one event per group.  Per-frame timing,
    loss draws and counters are identical to per-port scheduling — only
    the event count drops (the merged micro-events are credited via
    ``sim.credit_events`` so throughput metrics stay comparable).

    ``egress_filtering`` (opt-in, default off) is the IGMP-snooping
    analogue for fleet-scale testbeds: a flooded frame is not sent down a
    cable whose far-end NIC would filter it anyway (wrong unicast MAC, not
    a subscribed multicast group, not promiscuous).  This skips the
    quadratic deliver-then-discard work of large client fleets.  It is off
    by default because it changes per-cable loss-RNG consumption and NIC
    filter counters, i.e. it is a different (documented) configuration,
    not a transparent optimisation; see docs/scheduler.md.
    """

    def __init__(self, world: World, name: str = "switch",
                 forwarding_delay_ns: int = 2_000,
                 egress_filtering: bool = False):
        self._world = world
        self.name = name
        self.forwarding_delay_ns = forwarding_delay_ns
        self.egress_filtering = egress_filtering
        self.ports: list[SwitchPort] = []
        self._mac_table: dict[MacAddress, SwitchPort] = {}
        # SPAN/mirror port: receives a copy of every forwarded unicast
        # frame.  Used by the old-architecture ablation, where the backup
        # also taps the primary->client traffic (paper Sec. 3).
        self._mirror_port: Optional[SwitchPort] = None
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_mirrored = 0
        self.frames_egress_filtered = 0
        self._fwd_label = f"{name}.fwd"
        self._flood_label = f"{name}.flood"
        # Flood target lists, cached per (ingress port, destination):
        # (targets, egress_filtered_count).  Invalidated on topology
        # changes (new port, cable swap) and — when filtering — on NIC
        # address-filter changes (tracked by World.net_epoch).
        self._flood_cache: dict = {}
        self._cache_net_epoch = -1

    def new_port(self) -> SwitchPort:
        """Allocate a fresh port (call before cabling a device to it)."""
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        self._flood_cache.clear()
        return port

    @property
    def mac_table(self) -> dict[MacAddress, SwitchPort]:
        """Read-only view of what the switch has learned (for tests)."""
        return dict(self._mac_table)

    def set_mirror_port(self, port: Optional[SwitchPort]) -> None:
        """Mirror all forwarded unicast traffic to ``port`` (SPAN)."""
        self._mirror_port = port

    def _ingress(self, port: SwitchPort, frame: EthernetFrame) -> None:
        # Learn the source unless it is (bogusly) multicast.
        if not frame.src.is_multicast:
            self._mac_table[frame.src] = port
        self._world.sim.schedule(self.forwarding_delay_ns, self._forward,
                                 port, frame, label=self._fwd_label)

    def _forward(self, ingress: SwitchPort, frame: EthernetFrame) -> None:
        probes = self._world.probes
        # The pcap tap: every frame crossing the fabric, exactly once.
        if probes.wants_map["eth.frame"]:
            probes.fire("eth.frame", self.name, frame=frame,
                        ingress=ingress.index)
        dst = frame.dst
        if not dst.is_multicast:
            learned = self._mac_table.get(dst)
            if learned is not None and learned is not ingress:
                self.frames_forwarded += 1
                if probes.wants_map["eth.forward"]:
                    probes.fire("eth.forward", self.name, "forward",
                                dst=str(dst), port=learned.index)
                # SwitchPort.transmit inlined (keep in sync): one call
                # per forwarded unicast frame.
                cable = learned._cable
                if cable is not None:
                    cable.transmit(learned, frame)
                if (self._mirror_port is not None
                        and self._mirror_port is not learned
                        and self._mirror_port is not ingress):
                    self.frames_mirrored += 1
                    self._mirror_port.transmit(frame)
                return
            if learned is ingress:
                return  # destination is on the ingress segment; drop
        # Multicast, broadcast, or unknown unicast: flood (batched).
        self.frames_flooded += 1
        if probes.wants_map["eth.flood"]:
            probes.fire("eth.flood", self.name, "flood", dst=str(dst))
        if self.egress_filtering:
            epoch = self._world.net_epoch
            if epoch != self._cache_net_epoch:
                self._flood_cache.clear()
                self._cache_net_epoch = epoch
            key = (ingress.index, dst._value)
        else:
            key = ingress.index
        cached = self._flood_cache.get(key)
        if cached is None:
            cached = self._flood_cache[key] = \
                self._build_flood_targets(ingress, dst)
        targets, filtered = cached
        self.frames_egress_filtered += filtered
        # The per-target transmission plan below is Cable.plan_transmit
        # inlined (keep the two in sync) — at fleet scale this loop is the
        # hottest code in the network layer, so it pays to hoist `now` and
        # the wire size out and skip a function call per port.
        sim = self._world.sim
        now = sim._now
        size_bits_scaled = frame.size_bytes * 8 * 1_000_000_000
        # The fleet's cables share one or two bandwidth classes and (when
        # idle) one arrival time, so consecutive ports almost always repeat
        # the previous port's serialization time and delay group — track
        # the last-seen values in locals instead of a dict hit per port.
        last_bw = -1
        tx_time = 0
        last_delay = -1
        group: list = []
        groups: dict[int, list] = {}
        for port, cable, direction, receiver, free_at, prop, bandwidth, pair \
                in targets:
            if "transmit" in cable.__dict__:
                # Tests stub transmit on individual cable instances to
                # model targeted drops; honour the stub per-frame.
                cable.transmit(port, frame)
                continue
            if cable._cut:
                cable.frames_lost += 1
                continue
            if bandwidth != last_bw:
                tx_time = size_bits_scaled // bandwidth
                last_bw = bandwidth
            free = free_at[direction]
            start = now if now >= free else free
            free_at[direction] = start + tx_time
            delay = start - now + tx_time + prop
            if cable.loss_rate > 0.0 and cable._rng.random() < cable.loss_rate:
                cable.frames_lost += 1
                probes.fire("eth.frame_lost", cable.name, "frame lost",
                            size=frame.size_bytes)
                continue
            if delay != last_delay:
                g = groups.get(delay)
                if g is None:
                    groups[delay] = g = []
                group = g
                last_delay = delay
            group.append(pair)
        for delay, group in groups.items():
            sim.schedule(delay, self._deliver_flood, group, frame,
                         label=self._flood_label)

    def _build_flood_targets(self, ingress: SwitchPort,
                             dst: MacAddress) -> tuple[list, int]:
        """Resolve the egress set for a flood from ``ingress``: every other
        cabled port as (port, cable, direction, far endpoint, plus the
        cable's construction-time constants — its ``_tx_free_at`` list,
        propagation delay and bandwidth — plus a prebuilt (cable,
        receiver) delivery pair, pre-fetched so the per-frame loop skips
        the attribute lookups and tuple allocation), minus — when
        :attr:`egress_filtering` is on — ports whose far-end NIC would
        discard ``dst`` anyway.  Cached by ``_forward``; the filtered
        count rides along so the counter stays per-frame."""
        targets = []
        filtered = 0
        for port in self.ports:
            if port is ingress:
                continue
            cable = port._cable
            if cable is None:
                continue
            direction = cable._direction(port)
            receiver = cable._ends[1 - direction]
            if self.egress_filtering:
                accepts = getattr(receiver, "accepts", None)
                if accepts is not None and not accepts(dst):
                    filtered += 1
                    continue
            targets.append((port, cable, direction, receiver,
                            cable._tx_free_at, cable.propagation_delay_ns,
                            cable.bandwidth_bps, (cable, receiver)))
        return targets, filtered

    def _deliver_flood(self, group: list, frame: EthernetFrame) -> None:
        """Deliver one arrival-time group of a flooded frame.  One
        scheduled event stands in for ``len(group)`` per-port deliveries;
        the merged ones are credited so ``events_processed`` still counts
        logical deliveries.  The body of ``Cable._deliver`` is inlined —
        at fleet scale this loop runs once per (flood, port) pair."""
        if len(group) > 1:
            self._world.sim.credit_events(len(group) - 1)
        size = frame.size_bytes
        dst_value = frame.dst._value
        for cable, receiver in group:
            if cable._cut:  # cut while the frame was in flight
                cable.frames_lost += 1
                continue
            cable.frames_delivered += 1
            cable.bytes_delivered += size
            # Inline Nic.receive_frame's reject paths (keep in sync): with
            # egress filtering off, most flood deliveries end right here at
            # the far-end NIC's address filter, and skipping the call per
            # port is worth the duplication.  Anything unusual — custom
            # power gate, promiscuous mode, non-NIC endpoint, or an
            # accepted frame — takes the full method.
            if type(receiver) is Nic and receiver.power_gate is None \
                    and not receiver._promiscuous:
                if receiver._failed or not receiver.host_up:
                    continue
                if dst_value not in receiver._accept_values:
                    receiver.frames_filtered += 1
                    continue
            receiver.receive_frame(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
