"""A learning Ethernet switch.

Forwarding rules (exactly what the ST-TCP testbed relies on):

* unicast to a learned MAC → forward out that port only;
* unicast to an unknown MAC → flood;
* multicast / broadcast destination → flood to every port except ingress.

Because the client's static ARP entry maps ``serviceIP`` to a *multicast*
Ethernet address, every client→server frame is flooded and thus received
by both the primary's and the backup's NIC (Figure 2 of the paper).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.cable import Cable
from repro.net.frame import EthernetFrame
from repro.net.nic import Nic
from repro.net.packet import IPPacket
from repro.net.pool import (FRAME_POOL, demote_frame, release_frame,
                            release_packet)
from repro.sim.core import EventHandle
from repro.sim.world import World

__all__ = ["Switch", "SwitchPort"]


class SwitchPort:
    """One port of a switch — a cable endpoint that hands frames inward."""

    __slots__ = ("switch", "index", "name", "_cable")

    def __init__(self, switch: "Switch", index: int):
        self.switch = switch
        self.index = index
        self.name = f"{switch.name}.p{index}"
        self._cable: Optional[Cable] = None

    @property
    def cable(self) -> Optional[Cable]:
        """The cable plugged into this port (assignable)."""
        return self._cable

    @cable.setter
    def cable(self, cable: Optional[Cable]) -> None:
        self._cable = cable
        self.switch._flood_cache.clear()

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Cable-side entry: hand the frame to the switch fabric."""
        self.switch._ingress(self, frame)

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this port's cable."""
        if self._cable is not None:
            self._cable.transmit(self, frame)


class Switch:
    """A store-and-forward learning switch with a fixed forwarding latency.

    Floods are *batched*: instead of scheduling one delivery event per
    egress port, the switch plans every egress cable's arrival time
    (:meth:`Cable.plan_transmit`), groups ports whose frame arrives at the
    same instant, and schedules one event per group.  Per-frame timing,
    loss draws and counters are identical to per-port scheduling — only
    the event count drops (the merged micro-events are credited via
    ``sim.credit_events`` so throughput metrics stay comparable).

    ``egress_filtering`` (opt-in, default off) is the IGMP-snooping
    analogue for fleet-scale testbeds: a flooded frame is not sent down a
    cable whose far-end NIC would filter it anyway (wrong unicast MAC, not
    a subscribed multicast group, not promiscuous).  This skips the
    quadratic deliver-then-discard work of large client fleets.  It is off
    by default because it changes per-cable loss-RNG consumption and NIC
    filter counters, i.e. it is a different (documented) configuration,
    not a transparent optimisation; see docs/scheduler.md.
    """

    # Slots for the attributes the per-frame fabric path reads (plus
    # ``__dict__`` so tests can still attach whatever they like).
    __slots__ = ("_world", "name", "forwarding_delay_ns", "egress_filtering",
                 "ports", "_mac_table", "_mac_by_value", "_mirror_port",
                 "frames_forwarded", "frames_flooded", "frames_mirrored",
                 "frames_egress_filtered", "_fwd_label", "_flood_label",
                 "_flood_cache", "_cache_net_epoch",
                 "__dict__", "__weakref__")

    def __init__(self, world: World, name: str = "switch",
                 forwarding_delay_ns: int = 2_000,
                 egress_filtering: bool = False):
        self._world = world
        self.name = name
        self.forwarding_delay_ns = forwarding_delay_ns
        self.egress_filtering = egress_filtering
        self.ports: list[SwitchPort] = []
        self._mac_table: dict[MacAddress, SwitchPort] = {}
        # Demux fast path: the same learned ports keyed by the raw 48-bit
        # int.  Hashing an int beats calling MacAddress.__hash__/__eq__
        # (Python-level) once per frame crossing the fabric; _mac_table
        # is kept in step for the mac_table API.
        self._mac_by_value: dict[int, SwitchPort] = {}
        # SPAN/mirror port: receives a copy of every forwarded unicast
        # frame.  Used by the old-architecture ablation, where the backup
        # also taps the primary->client traffic (paper Sec. 3).
        self._mirror_port: Optional[SwitchPort] = None
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_mirrored = 0
        self.frames_egress_filtered = 0
        self._fwd_label = f"{name}.fwd"
        self._flood_label = f"{name}.flood"
        # Flood target lists, cached per (ingress port, destination):
        # (targets, egress_filtered_count).  Invalidated on topology
        # changes (new port, cable swap) and — when filtering — on NIC
        # address-filter changes (tracked by World.net_epoch).
        self._flood_cache: dict = {}
        self._cache_net_epoch = -1

    def new_port(self) -> SwitchPort:
        """Allocate a fresh port (call before cabling a device to it)."""
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        self._flood_cache.clear()
        return port

    @property
    def mac_table(self) -> dict[MacAddress, SwitchPort]:
        """Read-only view of what the switch has learned (for tests)."""
        return dict(self._mac_table)

    def set_mirror_port(self, port: Optional[SwitchPort]) -> None:
        """Mirror all forwarded unicast traffic to ``port`` (SPAN)."""
        self._mirror_port = port

    def _ingress(self, port: SwitchPort, frame: EthernetFrame) -> None:
        # Learn the source unless it is (bogusly) multicast.  The bit
        # test and the already-learned check are inlined (keep in sync
        # with MacAddress.is_multicast): in steady state every frame's
        # source is known, so this is one int-dict probe per frame.
        src_value = frame.src._value
        if not (src_value >> 40) & 0x01 and \
                self._mac_by_value.get(src_value) is not port:
            self._mac_by_value[src_value] = port
            self._mac_table[frame.src] = port
        # The frame outlives the delivering event (the fabric holds it
        # until _forward runs), so take the switch's own claim on pooled
        # frames; _forward settles it (pool.retain inlined).
        claims = frame._claims
        if claims:
            frame._claims = claims + 1
        # sim.post inlined (keep in sync): forwards are never cancelled,
        # so the event record comes from the kernel free list, and this
        # runs once per frame entering the fabric.
        sim = self._world.sim
        time = sim._now + self.forwarding_delay_ns
        pool = sim._handle_pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.callback = self._forward
            handle.args = (port, frame)
            handle.label = self._fwd_label
            handle._fired = False
        else:
            handle = EventHandle.__new__(EventHandle)
            handle.time = time
            handle.callback = self._forward
            handle.args = (port, frame)
            handle.label = self._fwd_label
            handle._cancelled = False
            handle._fired = False
            handle._owner = sim
            handle._pooled = True
        sim._seq += 1
        entry = (time, sim._seq, handle)
        s0 = time >> 12               # == L0_GRAIN_BITS
        if s0 - sim._cur0 < 1024:     # == WHEEL_SLOTS
            if s0 != sim._active_slot:
                bucket = sim._wheel0[s0 & 1023]
                if not bucket:
                    heappush(sim._l0_slots, s0)
                bucket.append(entry)
            else:
                insort(sim._active, entry, sim._active_idx)
        else:
            sim._route_far(entry, time)
        sim._size += 1

    def _forward(self, ingress: SwitchPort, frame: EthernetFrame) -> None:
        probes = self._world.probes
        # The pcap tap: every frame crossing the fabric, exactly once.
        if probes.wants_map["eth.frame"]:
            probes.fire("eth.frame", self.name, frame=frame,
                        ingress=ingress.index)
        dst = frame.dst
        dst_value = dst._value
        if not (dst_value >> 40) & 0x01:  # is_multicast inlined
            learned = self._mac_by_value.get(dst_value)
            if learned is not None and learned is not ingress:
                self.frames_forwarded += 1
                if probes.wants_map["eth.forward"]:
                    probes.fire("eth.forward", self.name, "forward",
                                dst=str(dst), port=learned.index)
                # SwitchPort.transmit inlined (keep in sync): one call
                # per forwarded unicast frame.  Claims: the fabric's claim
                # transfers into cable.transmit; a SPAN copy needs its own
                # (taken *before* the main transmit, which may drop and
                # recycle the frame).  A stubbed per-instance transmit may
                # re-send or swallow the frame any number of times, so a
                # managed frame headed into one is demoted to GC-owned.
                cable = learned._cable
                mirror = self._mirror_port
                if (mirror is not None and mirror is not learned
                        and mirror is not ingress):
                    if frame._claims:
                        mcable = mirror._cable
                        if ((cable is not None
                             and "transmit" in cable.__dict__)
                                or (mcable is not None
                                    and "transmit" in mcable.__dict__)):
                            demote_frame(frame)
                    if cable is not None:
                        claims = frame._claims
                        if claims:
                            frame._claims = claims + 1
                        cable.transmit(learned, frame)
                    self.frames_mirrored += 1
                    mirror.transmit(frame)
                elif cable is not None:
                    if frame._claims and "transmit" in cable.__dict__:
                        demote_frame(frame)
                    cable.transmit(learned, frame)
                else:
                    release_frame(frame)
                return
            if learned is ingress:
                release_frame(frame)
                return  # destination is on the ingress segment; drop
        # Multicast, broadcast, or unknown unicast: flood (batched).
        self.frames_flooded += 1
        if probes.wants_map["eth.flood"]:
            probes.fire("eth.flood", self.name, "flood", dst=str(dst))
        # Sink classification below depends on the far-end address
        # filters, so the cache is destination-keyed and epoch-checked in
        # both modes (net_epoch covers multicast joins/leaves and
        # promiscuous flips; topology changes clear the dict directly).
        epoch = self._world.net_epoch
        if epoch != self._cache_net_epoch:
            self._flood_cache.clear()
            self._cache_net_epoch = epoch
        key = (ingress.index, dst_value)
        cached = self._flood_cache.get(key)
        if cached is None:
            cached = self._flood_cache[key] = \
                self._build_flood_targets(ingress, dst)
        targets, sinks, filtered = cached
        self.frames_egress_filtered += filtered
        # The per-target transmission plan below is Cable.plan_transmit
        # inlined (keep the two in sync) — at fleet scale this loop is the
        # hottest code in the network layer, so it pays to hoist `now` and
        # the wire size out and skip a function call per port.
        sim = self._world.sim
        now = sim._now
        size = frame.size_bytes
        size_bits_scaled = size * 8 * 1_000_000_000
        # The fleet's cables share one or two bandwidth classes and (when
        # idle) one arrival time, so consecutive ports almost always repeat
        # the previous port's serialization time and delay group — track
        # the last-seen values in locals instead of a dict hit per port.
        last_bw = -1
        tx_time = 0
        last_delay = -1
        group: list = []
        groups: dict[int, list] = {}
        for port, cable, cdict, direction, receiver, free_at, prop, \
                bandwidth, pair in targets:
            if cdict and "transmit" in cdict:
                # Tests stub transmit on individual cable instances to
                # model targeted drops, duplicates or reorders; honour the
                # stub per-frame (``cdict`` is the cable's instance dict,
                # prefetched at cache-build time — empty on a pristine
                # cable, see Cable.__slots__).  The stub may forward the
                # frame zero or several times, so claim accounting cannot
                # follow it: demote the whole chain to GC-owned first.
                if frame._claims:
                    demote_frame(frame)
                cable.transmit(port, frame)
                continue
            if cable._cut:
                cable.frames_lost += 1
                continue
            if bandwidth != last_bw:
                tx_time = size_bits_scaled // bandwidth
                last_bw = bandwidth
            free = free_at[direction]
            start = now if now >= free else free
            free_at[direction] = start + tx_time
            delay = start - now + tx_time + prop
            if cable._loss_rate > 0.0 and cable._rng.random() < cable._loss_rate:
                cable.frames_lost += 1
                probes.fire("eth.frame_lost", cable.name, "frame lost",
                            size=size)
                continue
            if delay != last_delay:
                g = groups.get(delay)
                if g is None:
                    groups[delay] = g = []
                group = g
                last_delay = delay
            group.append(pair)
        # Sink fast lane: ports whose far-end NIC's address filter is
        # known to reject ``dst``.  Their delivery has no observable
        # effect beyond counters, so the wire-side effects (FIFO
        # serialization, loss draw, cut) and the accounting both run
        # eagerly here and the deliver-then-discard event is skipped
        # entirely.  Per-cable RNG consumption is unchanged (each cable
        # appears in exactly one of the two lists).  Anything unusual —
        # a stubbed transmit, a cut or lossy cable, an injected power
        # gate — falls back to a real scheduled delivery group.
        delivered_sinks = 0
        for cdict, cable, free_at, direction, receiver, bandwidth, odd \
                in sinks:
            # One credited sink delivery per iteration: this loop is the
            # hottest code at fleet scale (a multicast heartbeat floods to
            # every client port, all of them sinks), so the per-frame
            # validation is two truthiness tests.  ``odd`` was resolved at
            # cache-build time (cut / lossy / power-gated); every mutation
            # of that state bumps ``World.net_epoch`` and rebuilds this
            # list.  ``cdict`` — the cable's prefetched instance dict,
            # empty on a pristine cable — covers stubbed ``transmit``,
            # which tests may install at any moment without a hook.  Both
            # route through the full-semantics slow path, which re-checks
            # everything properly.
            if odd or cdict:
                self._plan_slow_target(cable, free_at, direction, receiver,
                                       frame, now, size_bits_scaled, groups)
                continue
            if bandwidth != last_bw:
                tx_time = size_bits_scaled // bandwidth
                last_bw = bandwidth
            free = free_at[direction]
            free_at[direction] = (now if now >= free else free) + tx_time
            cable.frames_delivered += 1
            cable.bytes_delivered += size
            delivered_sinks += 1
            if receiver.host_up and not receiver._failed:
                receiver.frames_filtered += 1
        if delivered_sinks:
            # The skipped deliveries are still logical events (see
            # credit_events): throughput metrics stay apples-to-apples.
            sim.credit_events(delivered_sinks)
        # Claims settlement for pooled frames: each scheduled group event
        # owns one claim ( _deliver_flood releases it); the fabric's own
        # claim covers the first group, extra groups retain, zero groups
        # release outright.
        claims = frame._claims
        if claims:
            n_groups = len(groups)
            if n_groups == 0:
                release_frame(frame)
            elif n_groups > 1:
                frame._claims = claims + n_groups - 1
        # sim.post inlined (keep in sync): one kernel-owned event per
        # arrival-time group (usually a single group per flooded frame).
        deliver_flood = self._deliver_flood
        flood_label = self._flood_label
        for delay, group in groups.items():
            time = now + delay
            pool = sim._handle_pool
            if pool:
                handle = pool.pop()
                handle.time = time
                handle.callback = deliver_flood
                handle.args = (group, frame)
                handle.label = flood_label
                handle._fired = False
            else:
                handle = EventHandle.__new__(EventHandle)
                handle.time = time
                handle.callback = deliver_flood
                handle.args = (group, frame)
                handle.label = flood_label
                handle._cancelled = False
                handle._fired = False
                handle._owner = sim
                handle._pooled = True
            sim._seq += 1
            entry = (time, sim._seq, handle)
            s0 = time >> 12           # == L0_GRAIN_BITS
            if s0 - sim._cur0 < 1024:  # == WHEEL_SLOTS
                if s0 != sim._active_slot:
                    bucket = sim._wheel0[s0 & 1023]
                    if not bucket:
                        heappush(sim._l0_slots, s0)
                    bucket.append(entry)
                else:
                    insort(sim._active, entry, sim._active_idx)
            else:
                sim._route_far(entry, time)
            sim._size += 1

    def _plan_slow_target(self, cable, free_at, direction, receiver, frame,
                          now, size_bits_scaled, groups) -> None:
        """Full wire semantics for a sink that turned unusual after the
        flood cache was built (stub, cut, loss, power gate): plan the
        delivery exactly as the main target loop does and append it to the
        arrival-time groups."""
        if "transmit" in cable.__dict__:
            # Honour per-instance stubs; the sender is the switch-port end.
            # The stub may forward zero or several times: demote first.
            if frame._claims:
                demote_frame(frame)
            cable.transmit(cable._ends[direction], frame)
            return
        if cable._cut:
            cable.frames_lost += 1
            return
        tx_time = size_bits_scaled // cable.bandwidth_bps
        free = free_at[direction]
        start = now if now >= free else free
        free_at[direction] = start + tx_time
        if cable._loss_rate > 0.0 and cable._rng.random() < cable._loss_rate:
            cable.frames_lost += 1
            self._world.probes.fire("eth.frame_lost", cable.name,
                                    "frame lost", size=frame.size_bytes)
            return
        delay = start - now + tx_time + cable.propagation_delay_ns
        g = groups.get(delay)
        if g is None:
            groups[delay] = g = []
        g.append((cable, receiver))

    def _build_flood_targets(self, ingress: SwitchPort,
                             dst: MacAddress) -> tuple[list, list, int]:
        """Resolve the egress set for a flood from ``ingress`` as
        ``(targets, sinks, filtered)``.

        ``targets`` holds every other cabled port whose far end might act
        on the frame: (port, cable, the cable's instance dict — empty
        unless a test stubbed something — direction, far endpoint, plus
        the cable's construction-time constants — its ``_tx_free_at``
        list, propagation delay and bandwidth — plus a prebuilt (cable,
        receiver) delivery pair, pre-fetched so the per-frame loop skips
        the attribute lookups and tuple allocation).  ``sinks`` holds the
        ports whose far end is a plain NIC whose address filter rejects
        ``dst``: their delivery is pure accounting, handled eagerly by
        ``_forward`` without a scheduled event (filter changes bump
        ``World.net_epoch``, which invalidates this cache).  When
        :attr:`egress_filtering` is on, would-be-filtered ports are
        dropped entirely instead; the filtered count rides along so the
        counter stays per-frame."""
        targets = []
        sinks = []
        filtered = 0
        for port in self.ports:
            if port is ingress:
                continue
            cable = port._cable
            if cable is None:
                continue
            direction = cable._direction(port)
            receiver = cable._ends[1 - direction]
            if self.egress_filtering:
                accepts = getattr(receiver, "accepts", None)
                if accepts is not None and not accepts(dst):
                    filtered += 1
                    continue
            if (type(receiver) is Nic and not receiver._promiscuous
                    and dst._value not in receiver._accept_values):
                # ``odd`` pre-resolves the cut/lossy/power-gated test: all
                # three mutate only through hooks that bump World.net_epoch
                # (Cable.cut/repair, the loss_rate and power_gate property
                # setters), which rebuilds this cache, so the per-frame
                # sink loop needs no attribute checks.  Stubbed transmit
                # has no hook; the loop tests the prefetched instance dict.
                odd = (cable._cut or cable._loss_rate > 0.0
                       or receiver._power_gate is not None)
                sinks.append((cable.__dict__, cable, cable._tx_free_at,
                              direction, receiver, cable.bandwidth_bps,
                              odd))
                continue
            targets.append((port, cable, cable.__dict__, direction, receiver,
                            cable._tx_free_at, cable.propagation_delay_ns,
                            cable.bandwidth_bps, (cable, receiver)))
        return targets, sinks, filtered

    def _deliver_flood(self, group: list, frame: EthernetFrame) -> None:
        """Deliver one arrival-time group of a flooded frame.  One
        scheduled event stands in for ``len(group)`` per-port deliveries;
        the merged ones are credited so ``events_processed`` still counts
        logical deliveries.  The body of ``Cable._deliver`` is inlined —
        at fleet scale this loop runs once per (flood, port) pair."""
        if len(group) > 1:
            self._world.sim.credit_events(len(group) - 1)
        size = frame.size_bytes
        dst_value = frame.dst._value
        for cable, receiver in group:
            if cable._cut:  # cut while the frame was in flight
                cable.frames_lost += 1
                continue
            cable.frames_delivered += 1
            cable.bytes_delivered += size
            # Inline Nic.receive_frame's reject paths (keep in sync): with
            # egress filtering off, most flood deliveries end right here at
            # the far-end NIC's address filter, and skipping the call per
            # port is worth the duplication.  Anything unusual — custom
            # power gate, promiscuous mode, non-NIC endpoint, or an
            # accepted frame — takes the full method.
            if type(receiver) is Nic and receiver._power_gate is None \
                    and not receiver._promiscuous:
                if receiver._failed or not receiver.host_up:
                    continue
                if dst_value not in receiver._accept_values:
                    receiver.frames_filtered += 1
                    continue
            receiver.receive_frame(frame)
        # All group deliveries ran synchronously above: drop this group
        # event's claim (receivers that kept the segment retained it).
        # release_frame inlined (keep in sync): once per flood group.
        claims = frame._claims
        if claims == 1:
            frame._claims = 0
            payload = frame.payload
            frame.payload = None
            if len(FRAME_POOL) < 256:  # == FRAME_POOL_MAX
                FRAME_POOL.append(frame)
            if type(payload) is IPPacket:
                pclaims = payload._claims
                if pclaims > 1:
                    payload._claims = pclaims - 1
                elif pclaims:
                    release_packet(payload)
        elif claims:
            frame._claims = claims - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
