"""A learning Ethernet switch.

Forwarding rules (exactly what the ST-TCP testbed relies on):

* unicast to a learned MAC → forward out that port only;
* unicast to an unknown MAC → flood;
* multicast / broadcast destination → flood to every port except ingress.

Because the client's static ARP entry maps ``serviceIP`` to a *multicast*
Ethernet address, every client→server frame is flooded and thus received
by both the primary's and the backup's NIC (Figure 2 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import MacAddress
from repro.net.cable import Cable
from repro.net.frame import EthernetFrame
from repro.sim.world import World

__all__ = ["Switch", "SwitchPort"]


class SwitchPort:
    """One port of a switch — a cable endpoint that hands frames inward."""

    __slots__ = ("switch", "index", "name", "cable")

    def __init__(self, switch: "Switch", index: int):
        self.switch = switch
        self.index = index
        self.name = f"{switch.name}.p{index}"
        self.cable: Optional[Cable] = None

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Cable-side entry: hand the frame to the switch fabric."""
        self.switch._ingress(self, frame)

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this port's cable."""
        if self.cable is not None:
            self.cable.transmit(self, frame)


class Switch:
    """A store-and-forward learning switch with a fixed forwarding latency."""

    def __init__(self, world: World, name: str = "switch",
                 forwarding_delay_ns: int = 2_000):
        self._world = world
        self.name = name
        self.forwarding_delay_ns = forwarding_delay_ns
        self.ports: list[SwitchPort] = []
        self._mac_table: dict[MacAddress, SwitchPort] = {}
        # SPAN/mirror port: receives a copy of every forwarded unicast
        # frame.  Used by the old-architecture ablation, where the backup
        # also taps the primary->client traffic (paper Sec. 3).
        self._mirror_port: Optional[SwitchPort] = None
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.frames_mirrored = 0
        self._fwd_label = f"{name}.fwd"

    def new_port(self) -> SwitchPort:
        """Allocate a fresh port (call before cabling a device to it)."""
        port = SwitchPort(self, len(self.ports))
        self.ports.append(port)
        return port

    @property
    def mac_table(self) -> dict[MacAddress, SwitchPort]:
        """Read-only view of what the switch has learned (for tests)."""
        return dict(self._mac_table)

    def set_mirror_port(self, port: Optional[SwitchPort]) -> None:
        """Mirror all forwarded unicast traffic to ``port`` (SPAN)."""
        self._mirror_port = port

    def _ingress(self, port: SwitchPort, frame: EthernetFrame) -> None:
        # Learn the source unless it is (bogusly) multicast.
        if not frame.src.is_multicast:
            self._mac_table[frame.src] = port
        self._world.sim.schedule(self.forwarding_delay_ns, self._forward,
                                 port, frame, label=self._fwd_label)

    def _forward(self, ingress: SwitchPort, frame: EthernetFrame) -> None:
        probes = self._world.probes
        # The pcap tap: every frame crossing the fabric, exactly once.
        if probes.wants("eth.frame"):
            probes.fire("eth.frame", self.name, frame=frame,
                        ingress=ingress.index)
        dst = frame.dst
        if not dst.is_multicast:
            learned = self._mac_table.get(dst)
            if learned is not None and learned is not ingress:
                self.frames_forwarded += 1
                if probes.wants("eth.forward"):
                    probes.fire("eth.forward", self.name, "forward",
                                dst=str(dst), port=learned.index)
                learned.transmit(frame)
                if (self._mirror_port is not None
                        and self._mirror_port is not learned
                        and self._mirror_port is not ingress):
                    self.frames_mirrored += 1
                    self._mirror_port.transmit(frame)
                return
            if learned is ingress:
                return  # destination is on the ingress segment; drop
        # Multicast, broadcast, or unknown unicast: flood.
        self.frames_flooded += 1
        if probes.wants("eth.flood"):
            probes.fire("eth.flood", self.name, "flood", dst=str(dst))
        for port in self.ports:
            if port is not ingress:
                port.transmit(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={len(self.ports)}>"
