"""ICMP echo (ping).

Section 4.3 of the paper: when the HB fails on the IP link but survives on
the serial link, both servers ping the gateway and exchange the outcomes
over the serial HB to decide *whose* NIC failed.  :class:`Pinger` provides
that mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addresses import IPAddress
from repro.net.packet import IPPacket, IPProtocol
from repro.sim.core import millis
from repro.sim.world import World

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.ip import IpStack

__all__ = ["IcmpMessage", "IcmpLayer", "Pinger",
           "ICMP_ECHO_REQUEST", "ICMP_ECHO_REPLY"]

ICMP_ECHO_REQUEST = "echo-request"
ICMP_ECHO_REPLY = "echo-reply"
_ICMP_HEADER_BYTES = 8


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP echo request/reply."""

    kind: str
    ident: int
    seq: int
    data_bytes: int = 56

    @property
    def size_bytes(self) -> int:
        """On-wire size of the ICMP message."""
        return _ICMP_HEADER_BYTES + self.data_bytes


class IcmpLayer:
    """Per-host ICMP: answers echo requests, dispatches replies to pingers."""

    def __init__(self, world: World, ip_stack: "IpStack", name: str = "icmp"):
        self._world = world
        self._ip = ip_stack
        self.name = name
        self._reply_handlers: dict[int, Callable[[IcmpMessage, IPAddress], None]] = {}
        self._next_ident = 1
        self.echo_requests_answered = 0

    def allocate_ident(self, handler: Callable[[IcmpMessage, IPAddress], None]) -> int:
        """Reserve an echo identifier and register its reply handler."""
        ident = self._next_ident
        self._next_ident += 1
        self._reply_handlers[ident] = handler
        return ident

    def release_ident(self, ident: int) -> None:
        """Free an echo identifier."""
        self._reply_handlers.pop(ident, None)

    def send_echo_request(self, dst: IPAddress, ident: int, seq: int,
                          src: Optional[IPAddress] = None) -> None:
        """Transmit one echo request."""
        msg = IcmpMessage(ICMP_ECHO_REQUEST, ident, seq)
        self._ip.send(dst, IPProtocol.ICMP, msg, src=src)

    def handle_packet(self, packet: IPPacket) -> None:
        """Process an inbound ICMP packet (reply or dispatch)."""
        msg = packet.payload
        if not isinstance(msg, IcmpMessage):
            return
        if msg.kind == ICMP_ECHO_REQUEST:
            self.echo_requests_answered += 1
            reply = IcmpMessage(ICMP_ECHO_REPLY, msg.ident, msg.seq,
                                msg.data_bytes)
            self._world.trace.record("icmp", self.name, "echo reply",
                                     to=str(packet.src))
            self._ip.send(packet.src, IPProtocol.ICMP, reply, src=packet.dst)
        elif msg.kind == ICMP_ECHO_REPLY:
            handler = self._reply_handlers.get(msg.ident)
            if handler is not None:
                handler(msg, packet.src)


class Pinger:
    """Sends one echo request at a time and reports success/timeout.

    ``on_result(success: bool)`` fires exactly once per :meth:`ping` call —
    either when the reply arrives or when the timeout elapses.
    """

    DEFAULT_TIMEOUT_NS = millis(100)

    def __init__(self, world: World, icmp: IcmpLayer, target: IPAddress,
                 timeout_ns: int = DEFAULT_TIMEOUT_NS, name: str = "pinger"):
        self._world = world
        self._icmp = icmp
        self.target = target
        self.timeout_ns = timeout_ns
        self.name = name
        self._ident = icmp.allocate_ident(self._on_reply)
        self._seq = 0
        self._outstanding: Optional[int] = None  # seq awaiting reply
        self._on_result: Optional[Callable[[bool], None]] = None
        self._timeout_handle = None
        self.successes = 0
        self.failures = 0

    def ping(self, on_result: Callable[[bool], None]) -> None:
        """Issue one echo request; ``on_result`` gets True/False once."""
        if self._outstanding is not None:
            # A previous probe is still pending: count it as failed so the
            # caller's bookkeeping stays one-result-per-ping.
            self._finish(False)
        self._seq += 1
        self._outstanding = self._seq
        self._on_result = on_result
        self._icmp.send_echo_request(self.target, self._ident, self._seq)
        self._timeout_handle = self._world.sim.schedule(
            self.timeout_ns, self._on_timeout, self._seq,
            label=f"{self.name}.timeout")

    def _on_reply(self, msg: IcmpMessage, _src: IPAddress) -> None:
        if self._outstanding is not None and msg.seq == self._outstanding:
            if self._timeout_handle is not None:
                self._timeout_handle.cancel()
            self._finish(True)

    def _on_timeout(self, seq: int) -> None:
        if self._outstanding == seq:
            self._finish(False)

    def _finish(self, success: bool) -> None:
        self._outstanding = None
        callback, self._on_result = self._on_result, None
        if success:
            self.successes += 1
        else:
            self.failures += 1
        if callback is not None:
            callback(success)
