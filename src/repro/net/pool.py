"""Recycle pools for the wire-path objects: frames, packets, segments.

At fleet scale the simulator builds and discards one ``TcpSegment``, one
:class:`~repro.net.packet.IPPacket` and one
:class:`~repro.net.frame.EthernetFrame` per data segment on the wire —
tens of thousands of allocations per simulated second that live for a
few microseconds of virtual time.  This module keeps free lists of the
three classes so the established-flow fast path reuses dead wrappers
instead of touching the allocator (see docs/performance.md, "Allocation
& GC").

Ownership protocol
------------------

Each of the three classes carries a ``_claims`` slot:

* ``_claims == 0`` — *unmanaged*.  The object was built with a plain
  constructor (tests, ARP, control-plane paths) and is owned by the
  garbage collector; :func:`release_frame` & friends are no-ops on it.
* ``_claims >= 1`` — *managed*.  The object came from an acquire site
  (``IpStack.send``'s cached-plan path, ``TcpConnection._make_segment``)
  with one creator claim.  Every holder that keeps a reference beyond
  the current event retains (``_claims += 1``); every holder releases
  when done.  At zero the object is scrubbed and returned to its pool.

Release cascades through the wrapping order — recycling a frame releases
its packet, recycling a packet releases its segment — mirroring how one
creator claim rides the whole frame→packet→segment stack down the wire.

The invariants (also asserted by ``tests/net/test_pool.py``):

* **Under-release is benign.**  A managed object whose holder forgets to
  release simply dies to the normal GC — the pool just misses a reuse.
  Paths that may strand frames (power gates, stubbed ``transmit``)
  therefore need no special casing.
* **Over-release is corruption** and must never happen: a second
  release of the same claim would recycle an object another holder
  still reads.  Claim transfers (``Cable.transmit`` consumes the
  caller's claim) are documented at each site.
* **Payload bytes are never mutated.**  Recycling re-*assigns* fields;
  holders of ``segment.payload`` bytes (the stream logger, receive
  buffers) are safe regardless of claims.
* **Tap observers demote.**  ``IpStack`` packet/promiscuous taps may
  legitimately retain whole packets, so the tap firing sites zero the
  ``_claims`` of the observed packet (and its segment) first — the
  object leaves the managed regime and the GC owns it from then on.
  Costs nothing on tap-free topologies (the branch is inside the
  ``if taps:`` guard).

Pools are process-local module state, deliberately **outside** the
:class:`~repro.sim.world.World` snapshot: restored trials share the
worker's pools, which is sound because acquire reinitialises every
field.  ``clear()`` empties them (campaign trial boundaries, tests).
"""

from __future__ import annotations

from repro.net.frame import (ETHERNET_HEADER_BYTES,
                             ETHERNET_MIN_FRAME_BYTES, EthernetFrame)
from repro.net.packet import IP_HEADER_BYTES, IPPacket

__all__ = ["FRAME_POOL", "PACKET_POOL",
           "FRAME_POOL_MAX", "PACKET_POOL_MAX",
           "acquire_frame", "acquire_packet",
           "retain", "demote_frame", "release_frame", "release_packet",
           "clear", "stats"]

#: Free-list caps: big enough to cover every wrapper in flight at once in
#: the 32-client benchmark (the wire holds well under a hundred), small
#: enough that a pathological burst cannot pin memory.
FRAME_POOL_MAX = 256
PACKET_POOL_MAX = 256

#: The free lists themselves — public because the hottest acquire sites
#: (``IpStack.send``, ``TcpConnection._make_segment``) inline the pop +
#: field writes instead of paying a call frame per object.
FRAME_POOL: list[EthernetFrame] = []
PACKET_POOL: list[IPPacket] = []

# The segment pool lives in repro.tcp.segment (this module must not
# import repro.tcp — repro.tcp.connection imports us, and the package
# would deadlock mid-init).  segment.py registers its type, release
# function and pool list here so release_packet can cascade without the
# layering inversion.
_SEGMENT_TYPE: type | None = None
_release_segment = None
_SEGMENT_POOL: list | None = None


def _register_segment_cascade(segment_type, release_fn, pool_list) -> None:
    """Called once by repro.tcp.segment at import time."""
    global _SEGMENT_TYPE, _release_segment, _SEGMENT_POOL
    _SEGMENT_TYPE = segment_type
    _release_segment = release_fn
    _SEGMENT_POOL = pool_list


# ---------------------------------------------------------------- acquire

def acquire_frame(dst, src, ethertype: str, payload) -> EthernetFrame:
    """A managed frame (one creator claim), recycled when possible."""
    if FRAME_POOL:
        frame = FRAME_POOL.pop()
        frame.dst = dst
        frame.src = src
        frame.ethertype = ethertype
        frame.payload = payload
        payload_size = getattr(payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(payload)
        size = ETHERNET_HEADER_BYTES + payload_size
        frame.size_bytes = (size if size >= ETHERNET_MIN_FRAME_BYTES
                            else ETHERNET_MIN_FRAME_BYTES)
    else:
        frame = EthernetFrame(dst, src, ethertype, payload)
    frame._claims = 1
    return frame


def acquire_packet(src, dst, protocol: str, payload) -> IPPacket:
    """A managed packet (one creator claim), recycled when possible."""
    if PACKET_POOL:
        packet = PACKET_POOL.pop()
        packet.src = src
        packet.dst = dst
        packet.protocol = protocol
        packet.payload = payload
        packet.ttl = 64
        payload_size = getattr(payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(payload)
        packet.size_bytes = IP_HEADER_BYTES + payload_size
    else:
        packet = IPPacket(src, dst, protocol, payload)
    packet._claims = 1
    return packet


# ---------------------------------------------------------- retain/release

def retain(obj) -> None:
    """Add a claim to a managed object (no-op on unmanaged ones)."""
    claims = obj._claims
    if claims:
        obj._claims = claims + 1


def demote_frame(frame) -> None:
    """Hand a managed frame (and its packet/segment) over to the GC.

    Every later retain/release on the chain becomes a no-op.  This is the
    escape hatch at boundaries the pool cannot reason about — a stubbed
    per-instance ``transmit`` (tests re-send or swallow frames at will),
    a tap observer that may keep the packet.  Under-release is benign, so
    opting the object out of recycling is always sound; the cost is one
    missed reuse.
    """
    frame._claims = 0
    packet = frame.payload
    if getattr(packet, "_claims", 0):
        packet._claims = 0
        inner = packet.payload
        if getattr(inner, "_claims", 0):
            inner._claims = 0


def release_frame(frame: EthernetFrame) -> None:
    """Drop one claim; at zero, recycle and cascade to the packet."""
    claims = frame._claims
    if claims == 0:          # unmanaged: the GC owns it
        return
    if claims > 1:
        frame._claims = claims - 1
        return
    frame._claims = 0
    payload = frame.payload
    frame.payload = None     # the pool must pin nothing downstream
    if len(FRAME_POOL) < FRAME_POOL_MAX:
        FRAME_POOL.append(frame)
    if type(payload) is IPPacket:
        # release_packet's decrement arm inlined (keep in sync): when the
        # packet has other holders this cascade is a single slot write.
        claims = payload._claims
        if claims > 1:
            payload._claims = claims - 1
        elif claims:
            release_packet(payload)


def release_packet(packet: IPPacket) -> None:
    """Drop one claim; at zero, recycle and cascade to the segment."""
    claims = packet._claims
    if claims == 0:
        return
    if claims > 1:
        packet._claims = claims - 1
        return
    packet._claims = 0
    payload = packet.payload
    packet.payload = None
    if len(PACKET_POOL) < PACKET_POOL_MAX:
        PACKET_POOL.append(packet)
    if type(payload) is _SEGMENT_TYPE:
        # release_segment's decrement arm inlined (keep in sync): the
        # demux queue usually still holds the segment at this point.
        claims = payload._claims
        if claims > 1:
            payload._claims = claims - 1
        elif claims:
            _release_segment(payload)


# ------------------------------------------------------------- maintenance

def clear() -> None:
    """Empty all pools (campaign trial boundaries, test isolation)."""
    FRAME_POOL.clear()
    PACKET_POOL.clear()
    if _SEGMENT_POOL is not None:
        _SEGMENT_POOL.clear()


def stats() -> dict:
    """Current free-list depths (surfaced via repro.obs GC reports)."""
    return {"frame_pool": len(FRAME_POOL),
            "packet_pool": len(PACKET_POOL),
            "segment_pool": (len(_SEGMENT_POOL)
                             if _SEGMENT_POOL is not None else 0)}
