"""IPv4 packets and the transport-protocol tags they carry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.addresses import IPAddress

__all__ = ["IPProtocol", "IPPacket", "IP_HEADER_BYTES"]

IP_HEADER_BYTES = 20


class IPProtocol:
    """Transport protocols the simulated stack demultiplexes."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"


@dataclass(frozen=True, slots=True)
class IPPacket:
    """An IPv4 packet with a structured transport payload.

    ``ttl`` exists so a routing loop in a buggy scenario terminates instead
    of looping forever; the flat Figure-2 LAN never decrements it below 63.
    """

    src: IPAddress
    dst: IPAddress
    protocol: str
    payload: Any = field(repr=False)
    ttl: int = 64
    # On-wire size (IP header + payload); cached because the link layer
    # reads it several times per hop.
    size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        payload_size = getattr(self.payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(self.payload)
        object.__setattr__(self, "size_bytes", IP_HEADER_BYTES + payload_size)

    def decremented(self) -> "IPPacket":
        """Copy with TTL reduced by one (used when forwarding)."""
        return IPPacket(self.src, self.dst, self.protocol, self.payload,
                        self.ttl - 1)

    def __str__(self) -> str:
        return (f"IP[{self.src} -> {self.dst} {self.protocol} "
                f"{self.size_bytes}B ttl={self.ttl}]")
