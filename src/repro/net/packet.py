"""IPv4 packets and the transport-protocol tags they carry."""

from __future__ import annotations

from typing import Any

from repro.net.addresses import IPAddress

__all__ = ["IPProtocol", "IPPacket", "IP_HEADER_BYTES"]

IP_HEADER_BYTES = 20


class IPProtocol:
    """Transport protocols the simulated stack demultiplexes."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"


class IPPacket:
    """An IPv4 packet with a structured transport payload.

    ``ttl`` exists so a routing loop in a buggy scenario terminates instead
    of looping forever; the flat Figure-2 LAN never decrements it below 63.

    A plain slotted class (not a dataclass) for construction speed on the
    per-segment hot path; ``size_bytes`` (IP header + payload) is cached
    because the link layer reads it several times per hop.
    """

    __slots__ = ("src", "dst", "protocol", "payload", "ttl", "size_bytes",
                 "_claims")

    def __init__(self, src: IPAddress, dst: IPAddress, protocol: str,
                 payload: Any, ttl: int = 64):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self._claims = 0  # 0 = GC-owned; >0 = pooled (see repro.net.pool)
        payload_size = getattr(payload, "size_bytes", None)
        if payload_size is None:
            payload_size = len(payload)
        self.size_bytes = IP_HEADER_BYTES + payload_size

    def decremented(self) -> "IPPacket":
        """Copy with TTL reduced by one (used when forwarding)."""
        return IPPacket(self.src, self.dst, self.protocol, self.payload,
                        self.ttl - 1)

    def __str__(self) -> str:
        return (f"IP[{self.src} -> {self.dst} {self.protocol} "
                f"{self.size_bytes}B ttl={self.ttl}]")
