"""Point-to-point Ethernet cables.

A :class:`Cable` joins two :class:`CableEndpoint` implementations (a NIC
and a switch port, or two NICs back-to-back for a crossover link).  It
models, per direction:

* serialization delay (frame bits / bandwidth) with FIFO queueing — a
  second frame offered while the first is still on the wire waits;
* propagation delay;
* independent random loss (for the transient-network-failure scenarios of
  Table 1, row 5);
* a *cut* state (cable failure, Table 1 row 4).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.net.frame import EthernetFrame
from repro.sim.world import World

__all__ = ["Cable", "CableEndpoint"]


@runtime_checkable
class CableEndpoint(Protocol):
    """Anything a cable can plug into."""

    name: str

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Deliver a frame arriving from the cable."""


class Cable:
    """A full-duplex link with bandwidth, latency, loss and cut semantics."""

    # No __slots__: tests stub ``transmit`` on individual cable instances
    # to model targeted frame drops.

    def __init__(self, world: World, a: CableEndpoint, b: CableEndpoint,
                 bandwidth_bps: int = 100_000_000,
                 propagation_delay_ns: int = 1_000,
                 loss_rate: float = 0.0,
                 name: str = ""):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._world = world
        self._sim = world.sim
        self._ends = (a, b)
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_ns = propagation_delay_ns
        self.loss_rate = loss_rate
        self.name = name or f"cable:{a.name}<->{b.name}"
        self._rng = world.rng.stream(f"cable.{self.name}")
        self._cut = False
        # Per-direction time at which the transmitter becomes free again.
        self._tx_free_at = [0, 0]
        self.frames_delivered = 0
        self.frames_lost = 0
        self.bytes_delivered = 0
        self._deliver_label = f"{self.name}.deliver"

    # ------------------------------------------------------------- topology

    def other_end(self, endpoint: CableEndpoint) -> CableEndpoint:
        """The endpoint opposite ``endpoint`` on this cable."""
        a, b = self._ends
        if endpoint is a:
            return b
        if endpoint is b:
            return a
        raise ValueError(f"{endpoint!r} is not attached to {self.name}")

    def _direction(self, sender: CableEndpoint) -> int:
        if sender is self._ends[0]:
            return 0
        if sender is self._ends[1]:
            return 1
        raise ValueError(f"{sender!r} is not attached to {self.name}")

    # -------------------------------------------------------------- failure

    @property
    def is_cut(self) -> bool:
        """True while the cable is severed."""
        return self._cut

    def cut(self) -> None:
        """Sever the cable; all in-flight and future frames are lost."""
        self._cut = True
        self._world.trace.record("fault", self.name, "cable cut")

    def repair(self) -> None:
        """Restore a cut cable."""
        self._cut = False
        self._world.trace.record("fault", self.name, "cable repaired")

    # ------------------------------------------------------------- transmit

    def transmit(self, sender: CableEndpoint, frame: EthernetFrame) -> None:
        """Offer a frame for transmission from ``sender`` toward the far end.

        Never blocks: queueing is expressed as added delay.  Loss and cuts
        silently drop — exactly what real Ethernet does.
        """
        if self._cut:
            self.frames_lost += 1
            return
        ends = self._ends
        direction = 0 if sender is ends[0] else 1
        if direction and sender is not ends[1]:
            raise ValueError(f"{sender!r} is not attached to {self.name}")
        sim = self._sim
        now = sim._now
        free_at = self._tx_free_at[direction]
        start = now if now >= free_at else free_at
        tx_time = (frame.size_bytes * 8 * 1_000_000_000) // self.bandwidth_bps
        self._tx_free_at[direction] = start + tx_time
        arrival_delay = (start - now) + tx_time + self.propagation_delay_ns
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.frames_lost += 1
            self._world.probes.fire("eth.frame_lost", self.name, "frame lost",
                                    size=frame.size_bytes)
            return
        sim.schedule(arrival_delay, self._deliver, ends[1 - direction], frame,
                     label=self._deliver_label)

    def plan_transmit(self, sender: CableEndpoint,
                      frame: EthernetFrame) -> "tuple[int, CableEndpoint] | None":
        """Like :meth:`transmit`, but return the delivery plan instead of
        scheduling it.

        Returns ``(arrival_delay_ns, receiver)`` when the frame will arrive,
        or ``None`` when it is dropped (cut or random loss).  All side
        effects of :meth:`transmit` except the scheduling happen here —
        FIFO serialization state, loss counters, the per-cable RNG draw —
        in exactly the same order, so a caller that batches several planned
        deliveries into one event (see ``Switch._forward``) produces the
        same wire-level behaviour as per-frame ``transmit`` calls.  The
        caller must invoke :meth:`deliver_planned` at ``now +
        arrival_delay_ns``.
        """
        if self._cut:
            self.frames_lost += 1
            return None
        ends = self._ends
        direction = 0 if sender is ends[0] else 1
        if direction and sender is not ends[1]:
            raise ValueError(f"{sender!r} is not attached to {self.name}")
        now = self._sim._now  # slot access: this runs once per flooded port
        free_at = self._tx_free_at[direction]
        start = now if now >= free_at else free_at
        tx_time = (frame.size_bytes * 8 * 1_000_000_000) // self.bandwidth_bps
        self._tx_free_at[direction] = start + tx_time
        arrival_delay = (start - now) + tx_time + self.propagation_delay_ns
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.frames_lost += 1
            self._world.probes.fire("eth.frame_lost", self.name, "frame lost",
                                    size=frame.size_bytes)
            return None
        return arrival_delay, ends[1 - direction]

    def deliver_planned(self, receiver: CableEndpoint,
                        frame: EthernetFrame) -> None:
        """Complete a delivery planned by :meth:`plan_transmit` (re-checks
        the cut state, as a cut may have happened while in flight)."""
        self._deliver(receiver, frame)

    def _deliver(self, receiver: CableEndpoint, frame: EthernetFrame) -> None:
        if self._cut:  # cut while the frame was in flight
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        self.bytes_delivered += frame.size_bytes
        receiver.receive_frame(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "CUT" if self._cut else "up"
        return f"<Cable {self.name} {self.bandwidth_bps / 1e6:.0f}Mbps {state}>"
