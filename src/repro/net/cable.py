"""Point-to-point Ethernet cables.

A :class:`Cable` joins two :class:`CableEndpoint` implementations (a NIC
and a switch port, or two NICs back-to-back for a crossover link).  It
models, per direction:

* serialization delay (frame bits / bandwidth) with FIFO queueing — a
  second frame offered while the first is still on the wire waits;
* propagation delay;
* independent random loss (for the transient-network-failure scenarios of
  Table 1, row 5);
* a *cut* state (cable failure, Table 1 row 4).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from bisect import insort
from heapq import heappush

from repro.net.frame import EthernetFrame
from repro.net.packet import IPPacket
from repro.net.pool import FRAME_POOL, release_frame, release_packet
from repro.sim.core import EventHandle
from repro.sim.world import World

__all__ = ["Cable", "CableEndpoint"]


@runtime_checkable
class CableEndpoint(Protocol):
    """Anything a cable can plug into."""

    name: str

    def receive_frame(self, frame: EthernetFrame) -> None:
        """Deliver a frame arriving from the cable."""


class Cable:
    """A full-duplex link with bandwidth, latency, loss and cut semantics."""

    # Slots for every regular attribute (the flood sink loop touches
    # several per cable per frame, and slot loads skip the dict probe),
    # plus ``__dict__`` so tests can still stub ``transmit`` on individual
    # cable instances to model targeted frame drops.  A pristine cable's
    # instance dict stays empty — the switch uses that as a cheap
    # "nothing stubbed here" test (see ``Switch._forward``).
    __slots__ = ("_world", "_sim", "_ends", "bandwidth_bps",
                 "propagation_delay_ns", "_loss_rate", "name", "_rng",
                 "_cut", "_tx_free_at", "frames_delivered", "frames_lost",
                 "bytes_delivered", "_deliver_label",
                 "__dict__", "__weakref__")

    def __init__(self, world: World, a: CableEndpoint, b: CableEndpoint,
                 bandwidth_bps: int = 100_000_000,
                 propagation_delay_ns: int = 1_000,
                 loss_rate: float = 0.0,
                 name: str = ""):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._world = world
        self._sim = world.sim
        self._ends = (a, b)
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_ns = propagation_delay_ns
        self._loss_rate = loss_rate
        self.name = name or f"cable:{a.name}<->{b.name}"
        self._rng = world.rng.stream(f"cable.{self.name}")
        self._cut = False
        # Per-direction time at which the transmitter becomes free again.
        self._tx_free_at = [0, 0]
        self.frames_delivered = 0
        self.frames_lost = 0
        self.bytes_delivered = 0
        self._deliver_label = f"{self.name}.deliver"

    # ------------------------------------------------------------- topology

    def other_end(self, endpoint: CableEndpoint) -> CableEndpoint:
        """The endpoint opposite ``endpoint`` on this cable."""
        a, b = self._ends
        if endpoint is a:
            return b
        if endpoint is b:
            return a
        raise ValueError(f"{endpoint!r} is not attached to {self.name}")

    def _direction(self, sender: CableEndpoint) -> int:
        if sender is self._ends[0]:
            return 0
        if sender is self._ends[1]:
            return 1
        raise ValueError(f"{sender!r} is not attached to {self.name}")

    # -------------------------------------------------------------- failure

    @property
    def loss_rate(self) -> float:
        """Independent per-frame drop probability (assignable).

        The setter bumps ``World.net_epoch``: the switch's flood planner
        pre-classifies clean cables at cache-build time (see
        ``Switch._build_flood_targets``), so every wire-state mutation —
        loss, cut, power gates — must invalidate those caches.  Hot paths
        read the ``_loss_rate`` slot directly.
        """
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, rate: float) -> None:
        self._loss_rate = rate
        self._world.net_epoch += 1

    @property
    def is_cut(self) -> bool:
        """True while the cable is severed."""
        return self._cut

    def cut(self) -> None:
        """Sever the cable; all in-flight and future frames are lost."""
        self._cut = True
        # Wire-state change: invalidate cached flood plans (clean cables
        # are pre-classified at cache-build time).
        self._world.net_epoch += 1
        self._world.trace.record("fault", self.name, "cable cut")

    def repair(self) -> None:
        """Restore a cut cable."""
        self._cut = False
        self._world.net_epoch += 1
        self._world.trace.record("fault", self.name, "cable repaired")

    # ------------------------------------------------------------- transmit

    def transmit(self, sender: CableEndpoint, frame: EthernetFrame) -> None:
        """Offer a frame for transmission from ``sender`` toward the far end.

        Never blocks: queueing is expressed as added delay.  Loss and cuts
        silently drop — exactly what real Ethernet does.

        Claims: the caller's claim on a pooled frame transfers to the
        cable — it is released when the frame is dropped (cut, loss, cut
        while in flight) or after the final delivery to the far end.
        """
        if self._cut:
            self.frames_lost += 1
            release_frame(frame)
            return
        ends = self._ends
        direction = 0 if sender is ends[0] else 1
        if direction and sender is not ends[1]:
            raise ValueError(f"{sender!r} is not attached to {self.name}")
        sim = self._sim
        now = sim._now
        free_at = self._tx_free_at[direction]
        start = now if now >= free_at else free_at
        tx_time = (frame.size_bytes * 8 * 1_000_000_000) // self.bandwidth_bps
        self._tx_free_at[direction] = start + tx_time
        arrival_delay = (start - now) + tx_time + self.propagation_delay_ns
        if self._loss_rate > 0.0 and self._rng.random() < self._loss_rate:
            self.frames_lost += 1
            self._world.probes.fire("eth.frame_lost", self.name, "frame lost",
                                    size=frame.size_bytes)
            release_frame(frame)
            return
        # sim.post inlined (keep in sync): deliveries are never cancelled,
        # so the event record comes from the kernel free list, and this
        # runs once per unicast frame on the wire — the post() frame plus
        # *args packing are measurable at fleet scale.
        time = now + arrival_delay
        pool = sim._handle_pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.callback = self._deliver
            handle.args = (ends[1 - direction], frame)
            handle.label = self._deliver_label
            handle._fired = False
        else:
            handle = EventHandle.__new__(EventHandle)
            handle.time = time
            handle.callback = self._deliver
            handle.args = (ends[1 - direction], frame)
            handle.label = self._deliver_label
            handle._cancelled = False
            handle._fired = False
            handle._owner = sim
            handle._pooled = True
        sim._seq += 1
        entry = (time, sim._seq, handle)
        s0 = time >> 12               # == L0_GRAIN_BITS
        if s0 - sim._cur0 < 1024:     # == WHEEL_SLOTS
            if s0 != sim._active_slot:
                bucket = sim._wheel0[s0 & 1023]
                if not bucket:
                    heappush(sim._l0_slots, s0)
                bucket.append(entry)
            else:
                insort(sim._active, entry, sim._active_idx)
        else:
            sim._route_far(entry, time)
        sim._size += 1

    def plan_transmit(self, sender: CableEndpoint,
                      frame: EthernetFrame) -> "tuple[int, CableEndpoint] | None":
        """Like :meth:`transmit`, but return the delivery plan instead of
        scheduling it.

        Returns ``(arrival_delay_ns, receiver)`` when the frame will arrive,
        or ``None`` when it is dropped (cut or random loss).  All side
        effects of :meth:`transmit` except the scheduling happen here —
        FIFO serialization state, loss counters, the per-cable RNG draw —
        in exactly the same order, so a caller that batches several planned
        deliveries into one event (see ``Switch._forward``) produces the
        same wire-level behaviour as per-frame ``transmit`` calls.  The
        caller must invoke :meth:`deliver_planned` at ``now +
        arrival_delay_ns``.
        """
        if self._cut:
            self.frames_lost += 1
            return None
        ends = self._ends
        direction = 0 if sender is ends[0] else 1
        if direction and sender is not ends[1]:
            raise ValueError(f"{sender!r} is not attached to {self.name}")
        now = self._sim._now  # slot access: this runs once per flooded port
        free_at = self._tx_free_at[direction]
        start = now if now >= free_at else free_at
        tx_time = (frame.size_bytes * 8 * 1_000_000_000) // self.bandwidth_bps
        self._tx_free_at[direction] = start + tx_time
        arrival_delay = (start - now) + tx_time + self.propagation_delay_ns
        if self._loss_rate > 0.0 and self._rng.random() < self._loss_rate:
            self.frames_lost += 1
            self._world.probes.fire("eth.frame_lost", self.name, "frame lost",
                                    size=frame.size_bytes)
            return None
        return arrival_delay, ends[1 - direction]

    # plan_transmit carries NO claim: flood planning keeps the frame's
    # single claim with the arrival-time group event (see Switch._forward).

    def deliver_planned(self, receiver: CableEndpoint,
                        frame: EthernetFrame) -> None:
        """Complete a delivery planned by :meth:`plan_transmit` (re-checks
        the cut state, as a cut may have happened while in flight)."""
        self._deliver(receiver, frame)

    def _deliver(self, receiver: CableEndpoint, frame: EthernetFrame) -> None:
        if self._cut:  # cut while the frame was in flight
            self.frames_lost += 1
            release_frame(frame)
            return
        self.frames_delivered += 1
        self.bytes_delivered += frame.size_bytes
        receiver.receive_frame(frame)
        # Delivery complete: drop the wire claim.  Receivers that keep the
        # frame past this event (switch ingress, deferred CPU processing)
        # retained their own claim inside receive_frame.  release_frame
        # inlined (keep in sync): final delivery is usually the last
        # claim, and this runs once per unicast frame on the wire.
        claims = frame._claims
        if claims == 1:
            frame._claims = 0
            payload = frame.payload
            frame.payload = None
            if len(FRAME_POOL) < 256:  # == FRAME_POOL_MAX
                FRAME_POOL.append(frame)
            if type(payload) is IPPacket:
                pclaims = payload._claims
                if pclaims > 1:
                    payload._claims = pclaims - 1
                elif pclaims:
                    release_packet(payload)
        elif claims:
            frame._claims = claims - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "CUT" if self._cut else "up"
        return f"<Cable {self.name} {self.bandwidth_bps / 1e6:.0f}Mbps {state}>"
