"""Per-host IPv4 stack: interfaces, aliasing (VNICs), routing, demux.

IP aliasing is how the testbed gives both the primary and the backup the
shared ``serviceIP`` (paper Figure 2): the address is added as an alias on
each server's interface, so client packets flooded by the switch are
accepted and delivered up both servers' stacks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.net.addresses import IPAddress
from repro.net.arp import ArpTable
from repro.net.frame import EtherType, EthernetFrame
from repro.net.nic import Nic
from repro.net.packet import IPPacket
from repro.net.pool import FRAME_POOL, PACKET_POOL, demote_frame
from repro.sim.world import World

__all__ = ["Interface", "IpStack"]


class Interface:
    """A NIC plus its IP configuration (primary address + aliases)."""

    __slots__ = ("_world", "nic", "network", "prefix_len", "addresses",
                 "addr_values", "arp", "__weakref__")

    def __init__(self, world: World, nic: Nic, network: IPAddress,
                 prefix_len: int):
        self._world = world
        self.nic = nic
        self.network = network
        self.prefix_len = prefix_len
        self.addresses: list[IPAddress] = []
        # Raw values of `addresses`, kept in lockstep — owns() checks run
        # once per delivered packet, so membership must be one int-set hit.
        self.addr_values: set[int] = set()
        # A bound method, not a lambda: ArpTable holds this accessor for
        # the interface's lifetime, and world snapshots must pickle it.
        self.arp = ArpTable(world, nic, self._address_list,
                            name=f"{nic.name}.arp")

    def _address_list(self) -> list[IPAddress]:
        """Accessor handed to the ARP table (kept a method so it pickles)."""
        return self.addresses

    @property
    def primary_address(self) -> IPAddress:
        """The interface's machine address (first configured)."""
        if not self.addresses:
            raise NetworkError(f"{self.nic.name} has no IP address")
        return self.addresses[0]

    def add_address(self, ip: IPAddress) -> None:
        """Add an address; the first one added is the machine address, the
        rest are aliases (the paper's VNICs created via IP aliasing)."""
        if ip not in self.addresses:
            self.addresses.append(ip)
            self.addr_values.add(ip.value)
            self._world.route_epoch += 1

    def remove_address(self, ip: IPAddress) -> None:
        """Drop an address/alias from the interface."""
        if ip in self.addresses:
            self.addresses.remove(ip)
            self.addr_values.discard(ip.value)
            self._world.route_epoch += 1

    def on_link(self, ip: IPAddress) -> bool:
        """True if ``ip`` falls inside this interface's subnet."""
        return ip.in_subnet(self.network, self.prefix_len)


class IpStack:
    """Routing and protocol demultiplexing for one host.

    Hosts are end systems, not routers: packets addressed to someone else
    are dropped (counted in :attr:`packets_not_for_us`).
    """

    # Slots for the attributes the per-packet send/receive path reads,
    # plus ``__dict__`` so tests can still attach instrumentation.
    __slots__ = ("_world", "name", "interfaces", "_default_gateway",
                 "_protocols", "_send_cache", "_cache_route_epoch",
                 "_loopback_label", "_packet_taps", "_promiscuous_taps",
                 "packets_sent", "packets_received", "packets_not_for_us",
                 "packets_unroutable", "__dict__", "__weakref__")

    def __init__(self, world: World, name: str):
        self._world = world
        self.name = name
        self.interfaces: list[Interface] = []
        self._default_gateway: Optional[IPAddress] = None
        self._protocols: dict[str, Callable[[IPPacket], None]] = {}
        # Send-plan cache: (dst_value, src_value|None) -> either the
        # local-delivery marker or (nic, resolved next-hop MAC, src ip).
        # Keyed off World.route_epoch, which every routing-relevant mutation
        # bumps: interface address changes, default-gateway changes, NIC
        # fail/repair, and ARP table learns.  Saves the owns()/_route()/
        # ARP walk on every packet of an established flow.
        self._send_cache: dict = {}
        self._cache_route_epoch = -1
        self._loopback_label = f"{name}.loopback"
        # Optional observer of every accepted inbound packet (metrics hooks).
        self._packet_taps: list[Callable[[IPPacket], None]] = []
        # Promiscuous observers: see every IPv4 packet the NIC accepted,
        # including packets addressed to IPs we do not own (e.g. multicast
        # -tapped service traffic recorded by the Sec. 4.3 stream logger).
        self._promiscuous_taps: list[Callable[[IPPacket], None]] = []
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_not_for_us = 0
        self.packets_unroutable = 0

    # ------------------------------------------------------------- plumbing

    def add_interface(self, nic: Nic, addresses: list[IPAddress],
                      network: IPAddress, prefix_len: int = 24) -> Interface:
        """Register a NIC with its address list (first = machine address)."""
        iface = Interface(self._world, nic, network, prefix_len)
        for ip in addresses:
            iface.add_address(ip)
        self.interfaces.append(iface)
        self._world.route_epoch += 1
        return iface

    def register_protocol(self, protocol: str,
                          handler: Callable[[IPPacket], None]) -> None:
        """Install the handler for a transport protocol."""
        self._protocols[protocol] = handler

    def add_packet_tap(self, tap: Callable[[IPPacket], None]) -> None:
        """Observe every packet accepted by this stack (read-only)."""
        self._packet_taps.append(tap)

    def add_promiscuous_tap(self, tap: Callable[[IPPacket], None]) -> None:
        """Observe every IPv4 packet the NIC delivered, owned or not."""
        self._promiscuous_taps.append(tap)

    def local_addresses(self) -> set[IPAddress]:
        """Every address owned by any interface."""
        return {ip for iface in self.interfaces for ip in iface.addresses}

    def owns(self, ip: IPAddress) -> bool:
        """True if any interface carries ``ip`` (including aliases)."""
        value = ip._value
        for iface in self.interfaces:
            if value in iface.addr_values:
                return True
        return False

    @property
    def default_gateway(self) -> Optional[IPAddress]:
        """The default route's next hop (assignable)."""
        return self._default_gateway

    @default_gateway.setter
    def default_gateway(self, gateway: Optional[IPAddress]) -> None:
        self._default_gateway = gateway
        self._world.route_epoch += 1

    # ---------------------------------------------------------------- send

    def send(self, dst: IPAddress, protocol: str, payload: Any,
             src: Optional[IPAddress] = None) -> None:
        """Route and transmit one packet.

        Local-delivery shortcut: a packet to one of our own addresses never
        touches the wire.  Otherwise pick the interface whose subnet covers
        ``dst`` (or the default-gateway interface), ARP-resolve the next
        hop, and hand the frame to the NIC.
        """
        epoch = self._world.route_epoch
        if epoch != self._cache_route_epoch:
            self._send_cache.clear()
            self._cache_route_epoch = epoch
        plan = self._send_cache.get(
            (dst._value, src._value if src is not None else None))
        if plan is not None:
            nic, mac, src_ip = plan
            if nic is None:
                packet = IPPacket(src or dst, dst, protocol, payload)
                self._world.sim.post(0, self._deliver_up, packet,
                                     label=self._loopback_label)
                return
            self.packets_sent += 1
            if nic._failed or nic._cable is None or not nic.host_up:
                return
            # pool.acquire_packet / acquire_frame inlined (keep in sync):
            # one packet + one frame per data segment on an established
            # flow goes through here, so the wrappers come from the
            # recycle pools — no allocator traffic, no call frame.  Both
            # carry one creator claim that Cable.transmit consumes (it is
            # released on drop, or after final delivery, cascading
            # frame -> packet -> segment; see repro.net.pool).
            payload_size = getattr(payload, "size_bytes", None)
            if payload_size is None:
                payload_size = len(payload)
            if PACKET_POOL:
                packet = PACKET_POOL.pop()
                packet.src = src if src is not None else src_ip
                packet.dst = dst
                packet.protocol = protocol
                packet.payload = payload
                packet.ttl = 64
                packet.size_bytes = 20 + payload_size  # == IP_HEADER_BYTES
            else:
                packet = IPPacket(src if src is not None else src_ip,
                                  dst, protocol, payload)
            packet._claims = 1
            # Nic.send inlined (keep in sync): unusual NICs (injected
            # power gate) take the full method.
            if FRAME_POOL:
                frame = FRAME_POOL.pop()
                frame.dst = mac
                frame.src = nic.mac
                frame.ethertype = EtherType.IPV4
                frame.payload = packet
                size = 18 + packet.size_bytes  # == ETHERNET_HEADER_BYTES
                frame.size_bytes = size if size >= 64 else 64
            else:
                frame = EthernetFrame(mac, nic.mac, EtherType.IPV4, packet)
            frame._claims = 1
            if "transmit" in nic._cable.__dict__:
                # Per-instance stubbed transmit (tests drop/duplicate/
                # reorder frames at will): claim accounting cannot follow
                # the stub, so the chain leaves the managed regime.
                demote_frame(frame)
            if nic._power_gate is not None:
                nic.send(frame)
                return
            nic.frames_sent += 1
            nic.bytes_sent += frame.size_bytes
            probes = self._world.probes
            if probes.wants_map["nic.tx"]:
                probes.fire("nic.tx", nic.name, size=frame.size_bytes)
            nic._cable.transmit(nic, frame)
            return
        self._send_slow(dst, protocol, payload, src)

    def _send_slow(self, dst: IPAddress, protocol: str, payload: Any,
                   src: Optional[IPAddress]) -> None:
        """Full route + ARP walk; caches the resulting plan when it is
        deterministic (local delivery, or next hop already resolved)."""
        key = (dst._value, src._value if src is not None else None)
        if self.owns(dst):
            self._send_cache[key] = (None, None, None)
            packet = IPPacket(src or dst, dst, protocol, payload)
            self._world.sim.call_soon(self._deliver_up, packet,
                                      label=self._loopback_label)
            return
        iface, next_hop = self._route(dst, src)
        if iface is None or next_hop is None:
            self.packets_unroutable += 1
            self._world.trace.record("ip", self.name, "unroutable",
                                     dst=str(dst))
            return
        src_ip = src if src is not None else iface.primary_address
        packet = IPPacket(src_ip, dst, protocol, payload)
        self.packets_sent += 1
        nic = iface.nic
        mac = iface.arp.lookup(next_hop)
        if mac is not None:
            self._send_cache[key] = (nic, mac, src_ip)
            nic.send(EthernetFrame(mac, nic.mac, EtherType.IPV4, packet))
            return
        # Unresolved next hop: ARP asynchronously, don't cache (the plan
        # isn't known yet, and resolution order must stay as-is).
        iface.arp.resolve(
            next_hop,
            lambda mac: nic.send(
                EthernetFrame(mac, nic.mac, EtherType.IPV4, packet)))

    def _route(self, dst: IPAddress, src: Optional[IPAddress]
               ) -> tuple[Optional[Interface], Optional[IPAddress]]:
        candidates = self.interfaces
        if src is not None:
            owning = [i for i in candidates if src in i.addresses]
            if owning:
                candidates = owning
        for iface in candidates:
            if iface.on_link(dst) and iface.nic.is_up:
                return iface, dst
        if self.default_gateway is not None:
            for iface in candidates:
                if iface.on_link(self.default_gateway) and iface.nic.is_up:
                    return iface, self.default_gateway
        return None, None

    # ------------------------------------------------------------- receive

    def receive_frame(self, frame: EthernetFrame, iface: Interface) -> None:
        """Entry point wired to the NIC (possibly via the host CPU model)."""
        if frame.ethertype == EtherType.ARP:
            iface.arp.handle_frame(frame)
            return
        if frame.ethertype != EtherType.IPV4:
            return
        packet = frame.payload
        if type(packet) is not IPPacket and not isinstance(packet, IPPacket):
            return
        if self._promiscuous_taps:
            # Taps may retain what they observe (the stream logger, test
            # fixtures keep whole packets): demote the wrapper chain to
            # GC-owned so the pools never recycle an object a tap saw.
            if packet._claims:
                packet._claims = 0
                inner = packet.payload
                if getattr(inner, "_claims", 0):
                    inner._claims = 0
            for tap in self._promiscuous_taps:
                tap(packet)
        # owns() inlined (keep in sync): once per delivered packet.
        value = packet.dst._value
        for iface_ in self.interfaces:
            if value in iface_.addr_values:
                break
        else:
            # Not ours (unicast to someone else, or multicast-tapped
            # traffic for an IP we merely observe): count and drop.
            self.packets_not_for_us += 1
            return
        # _deliver_up inlined (keep in sync): this is the once-per-accepted
        # -packet path, and the helper frame is measurable at fleet scale.
        # The method itself stays for the loopback/local-delivery events.
        self.packets_received += 1
        if self._packet_taps:
            # Same demotion as the promiscuous taps above: tap observers
            # may keep the packet past this event, so it must not recycle.
            if packet._claims:
                packet._claims = 0
                inner = packet.payload
                if getattr(inner, "_claims", 0):
                    inner._claims = 0
            for tap in self._packet_taps:
                tap(packet)
        handler = self._protocols.get(packet.protocol)
        if handler is None:
            self._world.trace.record("ip", self.name, "no protocol handler",
                                     protocol=packet.protocol)
            return
        handler(packet)

    def _deliver_up(self, packet: IPPacket) -> None:
        self.packets_received += 1
        if self._packet_taps:
            if packet._claims:  # tap observers may retain: see receive_frame
                packet._claims = 0
                inner = packet.payload
                if getattr(inner, "_claims", 0):
                    inner._claims = 0
            for tap in self._packet_taps:
                tap(packet)
        handler = self._protocols.get(packet.protocol)
        if handler is None:
            self._world.trace.record("ip", self.name, "no protocol handler",
                                     protocol=packet.protocol)
            return
        handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IpStack {self.name} ifaces={len(self.interfaces)}>"
