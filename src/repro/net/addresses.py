"""Ethernet (MAC) and IPv4 addresses.

Both address types are small immutable value objects backed by integers, so
they hash fast and compare cheaply inside switch tables and ARP caches.
The multicast group bit of a MAC address (least-significant bit of the
first octet) is what lets the ST-TCP testbed flood client traffic to both
the primary and the backup (Figure 2 of the paper).
"""

from __future__ import annotations

import re
from functools import total_ordering

from repro.errors import AddressError

__all__ = ["MacAddress", "IPAddress", "BROADCAST_MAC"]

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


@total_ordering
class MacAddress:
    """A 48-bit Ethernet address.

    Construct from a string (``"02:00:00:00:00:01"``) or an int.  The
    *multicast bit* is bit 0 of the first transmitted octet; frames sent to
    a multicast address are flooded by the switch to every port.
    """

    __slots__ = ("_value",)

    def __init__(self, value: "str | int | MacAddress"):
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise AddressError(f"MAC integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise AddressError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise AddressError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The raw integer value of the address."""
        return self._value

    @property
    def is_multicast(self) -> bool:
        """True if the group (multicast) bit is set — includes broadcast."""
        return bool((self._value >> 40) & 0x01)

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == (1 << 48) - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")


@total_ordering
class IPAddress:
    """An IPv4 address (dotted quad or int)."""

    __slots__ = ("_value",)

    def __init__(self, value: "str | int | IPAddress"):
        if isinstance(value, IPAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise AddressError(f"IPv4 integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            match = _IP_RE.match(value)
            if not match:
                raise AddressError(f"malformed IPv4 address: {value!r}")
            octets = [int(g) for g in match.groups()]
            if any(o > 255 for o in octets):
                raise AddressError(f"IPv4 octet out of range: {value!r}")
            self._value = (octets[0] << 24 | octets[1] << 16
                           | octets[2] << 8 | octets[3])
        else:
            raise AddressError(f"cannot build IPAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The raw integer value of the address."""
        return self._value

    def in_subnet(self, network: "IPAddress", prefix_len: int) -> bool:
        """True if this address lies inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"bad prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (network._value & mask)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPAddress) and self._value == other._value

    def __lt__(self, other: "IPAddress") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPAddress('{self}')"
