"""Fault injection: every single-failure scenario of the paper's Table 1."""

from repro.faults.faults import (
    AppCrashWithCleanup,
    AppHang,
    CableCut,
    Fault,
    HwCrash,
    NicFailure,
    OsCrash,
    TransientLoss,
)
from repro.faults.injector import FaultInjector, InjectionRecord

__all__ = [
    "AppCrashWithCleanup",
    "AppHang",
    "CableCut",
    "Fault",
    "FaultInjector",
    "HwCrash",
    "InjectionRecord",
    "NicFailure",
    "OsCrash",
    "TransientLoss",
]
