"""Fault types — one per row of the paper's Table 1 (plus transient loss).

Each fault is a small object with an ``inject(testbed_like)`` method taking
the target component directly; the :class:`~repro.faults.injector.FaultInjector`
schedules them at virtual times.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.net.cable import Cable
from repro.net.nic import Nic
from repro.host.app import Application
from repro.host.host import Host

__all__ = [
    "Fault",
    "HwCrash",
    "OsCrash",
    "AppHang",
    "AppCrashWithCleanup",
    "NicFailure",
    "CableCut",
    "TransientLoss",
]


class Fault:
    """Base class: a single injectable failure."""

    description = "fault"

    def inject(self) -> None:
        """Apply this failure to its target."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.description


@dataclass
class HwCrash(Fault):
    """Table 1 row 1: hardware crash — instant total silence."""

    host: Host

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.host.crash_hw()

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"HW crash of {self.host.name}"


@dataclass
class OsCrash(Fault):
    """Table 1 row 1 variant: OS crash — same externally visible symptom."""

    host: Host

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.host.crash_os()

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"OS crash of {self.host.name}"


@dataclass
class AppHang(Fault):
    """Table 1 row 2 / Sec. 4.2.1: application failure *without* cleanup —
    the process wedges; no FIN is generated."""

    app: Application

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.app.crash(cleanup=False)

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"application hang (no FIN) of {self.app.name}"


@dataclass
class AppCrashWithCleanup(Fault):
    """Table 1 row 3 / Sec. 4.2.2: application crash *with* OS cleanup —
    the OS closes the socket, generating a FIN."""

    app: Application

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.app.crash(cleanup=True)

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"application crash with cleanup (FIN) of {self.app.name}"


@dataclass
class NicFailure(Fault):
    """Table 1 row 4: NIC failure — the card goes deaf and mute while the
    host (and its serial port) stay alive."""

    nic: Nic

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.nic.fail()

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"NIC failure of {self.nic.name}"


@dataclass
class CableCut(Fault):
    """Table 1 row 4 variant: cable failure — same symptom as a dead NIC."""

    cable: Cable

    def inject(self) -> None:
        """Apply this failure to its target."""
        self.cable.cut()

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return f"cable cut: {self.cable.name}"


@dataclass
class TransientLoss(Fault):
    """Table 1 row 5: temporary network failure — a burst of packet loss on
    one cable (buffer overflow, flaky transceiver...)."""

    cable: Cable
    loss_rate: float = 1.0

    def inject(self) -> None:
        """Apply this failure to its target."""
        self._previous = self.cable.loss_rate
        self.cable.loss_rate = self.loss_rate

    def clear(self) -> None:
        """End the burst (restore the previous loss rate)."""
        self.cable.loss_rate = getattr(self, "_previous", 0.0)

    @property
    def description(self) -> str:
        """Human-readable description used in traces and reports."""
        return (f"transient loss burst ({self.loss_rate:.0%}) on "
                f"{self.cable.name}")
