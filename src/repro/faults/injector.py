"""Schedules faults at virtual times and records what was injected when."""

from __future__ import annotations

from typing import Optional

from repro.sim.world import World
from repro.faults.faults import Fault, TransientLoss

__all__ = ["FaultInjector", "InjectionRecord"]


class InjectionRecord:
    """Bookkeeping for one scheduled fault."""

    def __init__(self, fault: Fault, at_ns: int):
        self.fault = fault
        self.at_ns = at_ns
        self.injected = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "injected" if self.injected else "pending"
        return f"<Injection {self.fault} @{self.at_ns / 1e9:.3f}s {state}>"


class FaultInjector:
    """Deterministic fault scheduler for experiments."""

    def __init__(self, world: World):
        self._world = world
        self.records: list[InjectionRecord] = []

    def at(self, time_ns: int, fault: Fault) -> InjectionRecord:
        """Inject ``fault`` at absolute virtual time ``time_ns``."""
        record = InjectionRecord(fault, time_ns)
        self.records.append(record)
        self._world.sim.schedule_at(time_ns, self._fire, record,
                                    label="fault-inject")
        return record

    def after(self, delay_ns: int, fault: Fault) -> InjectionRecord:
        """Inject ``fault`` ``delay_ns`` from now."""
        return self.at(self._world.sim.now + delay_ns, fault)

    def loss_burst(self, start_ns: int, duration_ns: int,
                   fault: TransientLoss) -> InjectionRecord:
        """A transient loss episode: injected at ``start_ns``, cleared at
        ``start_ns + duration_ns`` (Table 1 row 5)."""
        record = self.at(start_ns, fault)
        self._world.sim.schedule_at(start_ns + duration_ns, fault.clear,
                                    label="fault-clear")
        return record

    def _fire(self, record: InjectionRecord) -> None:
        self._world.probes.fire("fault.inject", "injector",
                                record.fault.description)
        record.fault.inject()
        record.injected = True

    @property
    def injected_count(self) -> int:
        """How many scheduled faults have fired so far."""
        return sum(1 for r in self.records if r.injected)

    def first_injection_time(self) -> Optional[int]:
        """Virtual time of the earliest fired fault (None if none)."""
        injected = [r.at_ns for r in self.records if r.injected]
        return min(injected) if injected else None
