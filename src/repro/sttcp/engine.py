"""Shared machinery for the primary and backup ST-TCP engines.

Each server runs one engine.  The base class owns the plumbing common to
both roles: the dual-link heartbeat service, the control channel, the
serial-line demultiplexer (HB and control messages share the null-modem
cable), the gateway-ping scoreboard for NIC-failure disambiguation
(Sec. 4.3), the periodic detector tick, and STONITH.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.addresses import IPAddress
from repro.net.icmp import Pinger
from repro.net.serial_link import SerialPort
from repro.sim.core import millis
from repro.sim.timers import PeriodicTimer
from repro.sim.world import World
from repro.host.host import Host
from repro.host.power import PowerStrip
from repro.sttcp.config import SttcpConfig
from repro.sttcp.control import ControlChannel
from repro.sttcp.detector import PingScoreboard
from repro.sttcp.events import EngineEventLog, EventKind
from repro.sttcp.heartbeat import HeartbeatService
from repro.sttcp.state import ConnProgress, Heartbeat

__all__ = ["SttcpEngine", "MODE_FT", "MODE_NON_FT", "MODE_ACTIVE",
           "MODE_STOPPED"]

MODE_FT = "fault-tolerant"      # normal replicated operation
MODE_NON_FT = "non-fault-tolerant"  # primary alone (backup declared failed)
MODE_ACTIVE = "active"          # backup after takeover
MODE_STOPPED = "stopped"        # engine's own host is down


class SttcpEngine:
    """Base class: everything role-independent."""

    def __init__(self, world: World, host: Host, config: SttcpConfig,
                 role: str, local_ip: IPAddress, peer_ip: IPAddress,
                 service_ip: IPAddress, gateway_ip: IPAddress,
                 power_strip: PowerStrip, peer_host: Host,
                 serial_port: Optional[SerialPort] = None):
        config.validate()
        self.world = world
        self.host = host
        self.config = config
        self.role = role
        self.local_ip = local_ip
        self.peer_ip = peer_ip
        self.service_ip = service_ip
        self.gateway_ip = gateway_ip
        self.power_strip = power_strip
        self.peer_host = peer_host
        self.name = f"{host.name}.sttcp"
        self.mode = MODE_FT
        self.events = EngineEventLog()

        self.hb = HeartbeatService(world, config, role, host.udp, local_ip,
                                   peer_ip, serial_port, name=f"{self.name}.hb")
        self.hb.build_heartbeat = self._build_heartbeat
        self.hb.on_heartbeat = self._on_heartbeat
        self.control = ControlChannel(world, host.udp, local_ip, peer_ip,
                                      config.control_udp_port, serial_port,
                                      name=f"{self.name}.ctl")
        self.control.set_handler(self._on_control)
        self._serial = serial_port
        if serial_port is not None:
            serial_port.set_handler(self._on_serial_message)

        tick = max(config.hb_period_ns // 4, millis(10))
        self._tick_timer = PeriodicTimer(world.sim, self._tick, tick,
                                         label=f"{self.name}.tick")
        self.ping_board = PingScoreboard(config.ping_fail_threshold)
        self._pinger: Optional[Pinger] = None
        self._ping_timer: Optional[PeriodicTimer] = None
        self._probing = False
        self._last_ping_ok: Optional[bool] = None
        self._ip_was_up = True
        self._serial_was_up = True
        host.on_power_off.append(self._on_host_down)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin heartbeating and failure detection."""
        self.hb.start()
        self._tick_timer.start()

    def stop(self) -> None:
        """Stop heartbeating, detection and probing."""
        self.hb.stop()
        self._tick_timer.stop()
        self._stop_probing()

    def _on_host_down(self) -> None:
        self.mode = MODE_STOPPED
        self.stop()

    # ------------------------------------------------------- event plumbing

    def emit(self, kind: str, **detail: Any):
        """Record an engine event and fire its ``sttcp.<kind>`` probe (the
        bus mirrors it into the trace, as before).  Every
        :class:`~repro.sttcp.events.EventKind` has a registered probe, so
        an unregistered kind fails loudly instead of drifting."""
        event = self.events.emit(self.world.sim.now, kind, **detail)
        self.world.probes.fire(f"sttcp.{kind}", self.name, kind, **detail)
        return event

    def stonith_peer(self, reason: str) -> None:
        """Power the peer down (out-of-band) before acting alone."""
        self.emit(EventKind.STONITH, target=self.peer_host.name, reason=reason)
        self.power_strip.power_down(self.peer_host, initiator=self.name)

    # ----------------------------------------------------- serial demux

    def _on_serial_message(self, message: Any) -> None:
        if isinstance(message, Heartbeat):
            self.hb.deliver_from_serial(message)
        else:
            self.control.deliver_from_serial(message)

    # -------------------------------------------------------- HB assembly

    def _build_heartbeat(self) -> Heartbeat:
        return Heartbeat(self.role, 0, tuple(self.connection_progress()),
                         ping_probing=self._probing,
                         ping_ok=self._last_ping_ok)

    def connection_progress(self) -> list[ConnProgress]:
        """Role-specific: progress entries for every managed connection."""
        raise NotImplementedError

    def _on_heartbeat(self, hb: Heartbeat, link: str) -> None:
        """Role-specific HB processing; base handles the ping scoreboard."""
        if hb.ping_probing:
            self.ping_board.record_peer(hb.ping_ok)
        self.handle_peer_heartbeat(hb, link)

    def handle_peer_heartbeat(self, hb: Heartbeat, link: str) -> None:
        """Role-specific heartbeat processing."""
        raise NotImplementedError

    def _on_control(self, message: Any) -> None:
        raise NotImplementedError

    def _tick(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------- gateway-ping probing

    def _ensure_probing(self) -> None:
        """Start pinging the gateway (entered when the IP HB is down but the
        serial HB survives — paper Sec. 4.3)."""
        if self._probing:
            return
        self._probing = True
        self.emit(EventKind.PING_PROBING, gateway=str(self.gateway_ip))
        if self._pinger is None:
            self._pinger = Pinger(self.world, self.host.icmp, self.gateway_ip,
                                  timeout_ns=self.config.ping_interval_ns // 2,
                                  name=f"{self.name}.ping")
        self._ping_timer = PeriodicTimer(self.world.sim, self._do_ping,
                                         self.config.ping_interval_ns,
                                         label=f"{self.name}.ping")
        self._ping_timer.start(fire_immediately=True)

    def _stop_probing(self) -> None:
        if not self._probing:
            return
        self._probing = False
        self._last_ping_ok = None
        if self._ping_timer is not None:
            self._ping_timer.stop()
            self._ping_timer = None
        self.ping_board.reset()

    def _do_ping(self) -> None:
        if self._pinger is not None and self.host.is_up:
            self._pinger.ping(self._on_ping_result)

    def _on_ping_result(self, ok: bool) -> None:
        self._last_ping_ok = ok
        self.ping_board.record_local(ok)

    # ------------------------------------------------------- link watching

    def peer_evidence_time(self) -> Optional[int]:
        """Instant of the latest heartbeat from the peer on any link —
        the most recent proof the peer machine was alive."""
        ages = [age for age in (self.hb.last_rx_age_ns("ip"),
                                self.hb.last_rx_age_ns("serial"))
                if age is not None]
        if not ages:
            return None
        return self.world.sim.now - min(ages)

    def peer_hb_fresh(self) -> bool:
        """True when a heartbeat arrived recently enough (on either link)
        for the peer's progress counters to be meaningful.  The Sec. 4.2
        application-failure criteria only apply while "HB between the
        servers also stays up" — when HBs stop entirely, stale counters
        must not masquerade as application lag (that is a crash, row 1)."""
        ages = [age for age in (self.hb.last_rx_age_ns("ip"),
                                self.hb.last_rx_age_ns("serial"))
                if age is not None]
        if not ages:
            # No HB yet: fresh during the startup grace period.
            return True
        return min(ages) <= 2 * self.config.hb_period_ns

    def check_links(self) -> tuple[bool, bool]:
        """(ip_up, serial_up), emitting events on state transitions."""
        ip_up = self.hb.ip_link_up()
        serial_up = self.hb.serial_link_up()
        if ip_up != self._ip_was_up:
            if not ip_up:
                self.world.probes.fire("hb.miss", self.name, link="ip")
            self.emit(EventKind.HB_IP_LINK_DOWN if not ip_up
                      else EventKind.HB_LINK_RECOVERED, link="ip")
            self._ip_was_up = ip_up
        if serial_up != self._serial_was_up:
            if not serial_up:
                self.world.probes.fire("hb.miss", self.name, link="serial")
            self.emit(EventKind.HB_SERIAL_LINK_DOWN if not serial_up
                      else EventKind.HB_LINK_RECOVERED, link="serial")
            self._serial_was_up = serial_up
        return ip_up, serial_up

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} mode={self.mode}>"
