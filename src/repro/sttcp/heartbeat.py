"""The dual-link heartbeat service (paper Sec. 3).

Heartbeats flow between the servers over two *diverse* links — UDP on the
Ethernet fabric and a direct null-modem serial cable — so that no single
failure silences both.  The per-link freshness bookkeeping here is what the
failure detector reads:

* both links stale  → peer machine is dead (Table 1 row 1);
* IP stale, serial fresh → a local network (NIC/cable) failure
  (Table 1 row 4), triggering the gateway-ping disambiguation.

The service also tracks its *own* send health only implicitly — exactly
like the real system, a server cannot distinguish "my NIC dropped my
outbound HBs" from "the peer's NIC is deaf"; that asymmetry is resolved by
the Sec. 4.3 mechanisms, not here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import IPAddress
from repro.net.serial_link import SerialPort
from repro.net.udp import UdpLayer
from repro.sim.timers import PeriodicTimer
from repro.sim.world import World
from repro.sttcp.config import SttcpConfig
from repro.sttcp.state import Heartbeat

__all__ = ["HeartbeatService", "LINK_IP", "LINK_SERIAL"]

LINK_IP = "ip"
LINK_SERIAL = "serial"


class HeartbeatService:
    """Periodic HB transmission + per-link reception freshness."""

    def __init__(self, world: World, config: SttcpConfig, role: str,
                 udp: UdpLayer, local_ip: IPAddress, peer_ip: IPAddress,
                 serial_port: Optional[SerialPort] = None,
                 name: str = "hb"):
        self._world = world
        self._config = config
        self.role = role
        self._udp = udp
        self._local_ip = local_ip
        self._peer_ip = peer_ip
        self._serial = serial_port if config.use_serial_hb else None
        self.name = name
        # Callable returning the Heartbeat to send this tick (engine hook).
        self.build_heartbeat: Callable[[], Heartbeat] = (
            lambda: Heartbeat(role, 0))
        # Called on every received HB: (heartbeat, link_name).
        self.on_heartbeat: Callable[[Heartbeat, str], None] = (
            lambda hb, link: None)
        self._timer = PeriodicTimer(world.sim, self._tick,
                                    config.hb_period_ns, label=f"{name}.tick")
        self._seq = 0
        self._started_at: Optional[int] = None
        self._last_rx = {LINK_IP: None, LINK_SERIAL: None}
        self.sent = 0
        self.received = {LINK_IP: 0, LINK_SERIAL: 0}
        self.bytes_sent_serial = 0
        udp.bind(config.hb_udp_port, self._on_udp)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin periodic transmission and freshness tracking."""
        self._started_at = self._world.sim.now
        self._timer.start(fire_immediately=True)

    def stop(self) -> None:
        """Stop transmitting."""
        self._timer.stop()

    @property
    def running(self) -> bool:
        """True while the periodic sender is active."""
        return self._timer.running

    def send_now(self) -> None:
        """Out-of-schedule HB — the paper requires a server generating a
        FIN to "immediately communicate the FIN to the other server"."""
        self._tick(extra=True)

    # --------------------------------------------------------------- sending

    def _tick(self, extra: bool = False) -> None:
        self._seq += 1
        hb = self.build_heartbeat()
        hb = Heartbeat(self.role, self._seq, hb.connections,
                       hb.ping_probing, hb.ping_ok)
        self.sent += 1
        self._udp.send(self._peer_ip, self._config.hb_udp_port,
                       self._config.hb_udp_port, hb, src_ip=self._local_ip)
        if self._serial is not None:
            self._serial.send(hb)
            self.bytes_sent_serial += hb.size_bytes
        self._world.probes.fire("hb.send", self.name, "sent", seq=self._seq,
                                extra=extra)
        # Untraced payload tap: the invariant oracle reads the progress
        # counters off the Heartbeat object (a reference, so this costs
        # nothing to build).
        self._world.probes.fire("hb.state", self.name, hb=hb)

    # -------------------------------------------------------------- receiving

    def _on_udp(self, payload, src_ip: IPAddress, _src_port: int) -> None:
        if not isinstance(payload, Heartbeat) or src_ip != self._peer_ip:
            return
        self._receive(payload, LINK_IP)

    def deliver_from_serial(self, hb: Heartbeat) -> None:
        """Entry point for HBs that arrived on the serial mux."""
        self._receive(hb, LINK_SERIAL)

    def _receive(self, hb: Heartbeat, link: str) -> None:
        self._last_rx[link] = self._world.sim.now
        self.received[link] += 1
        self._world.probes.fire("hb.recv", self.name, "received", link=link,
                                seq=hb.seq)
        self.on_heartbeat(hb, link)

    # ------------------------------------------------------------- freshness

    def _stale_deadline_ns(self) -> int:
        return self._config.hb_miss_threshold * self._config.hb_period_ns

    def _link_fresh(self, link: str) -> bool:
        if self._started_at is None:
            return True  # not started: nothing can be judged stale
        last = self._last_rx[link]
        baseline = last if last is not None else self._started_at
        return (self._world.sim.now - baseline) <= self._stale_deadline_ns()

    def ip_link_up(self) -> bool:
        """IP-link HB freshness (paper: miss threshold x period)."""
        return self._link_fresh(LINK_IP)

    def serial_link_up(self) -> bool:
        """Serial link freshness; when the serial HB is disabled (ablation
        A2) this mirrors the IP link, reproducing the old single-channel
        failure-detection behaviour."""
        if self._serial is None:
            return self._link_fresh(LINK_IP)
        return self._link_fresh(LINK_SERIAL)

    @property
    def has_serial(self) -> bool:
        """True when a serial channel is configured."""
        return self._serial is not None

    def both_links_down(self) -> bool:
        """The Table-1 row-1 symptom: total HB silence."""
        return not self.ip_link_up() and not self.serial_link_up()

    def last_rx_age_ns(self, link: str) -> Optional[int]:
        """Age of the last HB on ``link`` (None before any)."""
        last = self._last_rx[link]
        return None if last is None else self._world.sim.now - last
