"""ST-TCP: Server fault-Tolerant TCP — the paper's contribution.

Public surface::

    from repro.sttcp import (
        SttcpConfig, SttcpPair, PrimaryEngine, BackupEngine,
        Heartbeat, ConnProgress, EventKind,
    )

See DESIGN.md for the architecture and the mapping from paper sections to
modules.
"""

from repro.sttcp.backup import BackupEngine, ManagedBackupConn
from repro.sttcp.config import SttcpConfig
from repro.sttcp.control import (
    AppFailureNotice,
    ConnClosed,
    ConnInit,
    ControlChannel,
    FetchReply,
    FetchRequest,
)
from repro.sttcp.detector import LagTracker, PingScoreboard
from repro.sttcp.engine import (
    MODE_ACTIVE,
    MODE_FT,
    MODE_NON_FT,
    MODE_STOPPED,
    SttcpEngine,
)
from repro.sttcp.events import EngineEvent, EngineEventLog, EventKind
from repro.sttcp.heartbeat import LINK_IP, LINK_SERIAL, HeartbeatService
from repro.sttcp.logger import LOGGER_UDP_PORT, LoggedConnection, StreamLogger
from repro.sttcp.manager import SttcpPair
from repro.sttcp.primary import ManagedPrimaryConn, PrimaryEngine
from repro.sttcp.state import (
    ROLE_BACKUP,
    ROLE_PRIMARY,
    ConnKey,
    ConnProgress,
    Heartbeat,
)

__all__ = [
    "AppFailureNotice",
    "BackupEngine",
    "ConnClosed",
    "ConnInit",
    "ConnKey",
    "ConnProgress",
    "ControlChannel",
    "EngineEvent",
    "EngineEventLog",
    "EventKind",
    "FetchReply",
    "FetchRequest",
    "Heartbeat",
    "HeartbeatService",
    "LINK_IP",
    "LINK_SERIAL",
    "LOGGER_UDP_PORT",
    "LoggedConnection",
    "LagTracker",
    "MODE_ACTIVE",
    "MODE_FT",
    "MODE_NON_FT",
    "MODE_STOPPED",
    "ManagedBackupConn",
    "ManagedPrimaryConn",
    "PingScoreboard",
    "PrimaryEngine",
    "ROLE_BACKUP",
    "ROLE_PRIMARY",
    "SttcpConfig",
    "SttcpEngine",
    "SttcpPair",
    "StreamLogger",
]
