"""Structured events emitted by the ST-TCP engines.

Tests and benchmarks assert on these rather than parsing traces: each
engine appends to its :class:`EngineEventLog`, and the Table-1 benchmark
prints the observed symptom/recovery pairs straight from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EngineEvent", "EngineEventLog", "EventKind"]


class EventKind:
    """Event vocabulary (kept flat and string-y for easy filtering)."""

    HB_IP_LINK_DOWN = "hb-ip-link-down"
    HB_SERIAL_LINK_DOWN = "hb-serial-link-down"
    HB_LINK_RECOVERED = "hb-link-recovered"
    PEER_CRASH_DETECTED = "peer-crash-detected"           # Table 1 row 1
    APP_FAILURE_DETECTED = "app-failure-detected"         # rows 2-3
    NIC_FAILURE_DETECTED = "nic-failure-detected"         # row 4
    TAKEOVER = "takeover"
    NON_FT_MODE = "non-ft-mode"
    STONITH = "stonith"
    CONN_REPLICATED = "conn-replicated"
    FIN_HELD = "fin-held"
    FIN_RELEASED = "fin-released"
    FIN_SUPPRESSED = "fin-suppressed"
    FETCH_REQUESTED = "fetch-requested"
    FETCH_RECOVERED = "fetch-recovered"
    UNRECOVERABLE = "unrecoverable"
    RETAIN_OVERFLOW = "retain-overflow"
    PING_PROBING = "ping-probing"


@dataclass(frozen=True)
class EngineEvent:
    """One timestamped engine decision."""

    time: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Event time in (float) seconds."""
        return self.time / 1_000_000_000

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time_s:10.6f}s] {self.kind}" + (f" {extra}" if extra else "")


class EngineEventLog:
    """Append-only, queryable event history for one engine."""

    def __init__(self) -> None:
        self._events: list[EngineEvent] = []

    def emit(self, time: int, kind: str, **detail: Any) -> EngineEvent:
        """Append an event at the given instant."""
        event = EngineEvent(time, kind, detail)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> list[EngineEvent]:
        """Copy of all events so far."""
        return list(self._events)

    def of_kind(self, kind: str) -> list[EngineEvent]:
        """All events of one kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def first(self, kind: str) -> Optional[EngineEvent]:
        """Earliest event of a kind (None if none)."""
        matches = self.of_kind(kind)
        return matches[0] if matches else None

    def last(self, kind: str) -> Optional[EngineEvent]:
        """Latest event of a kind (None if none)."""
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def has(self, kind: str) -> bool:
        """True if any event of the kind was emitted."""
        return any(e.kind == kind for e in self._events)
