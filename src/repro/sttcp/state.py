"""Replicated per-connection state and the heartbeat message.

The heartbeat carries, per connection, exactly the four counters the paper
lists in Sec. 3 — ``LastByteReceived``, ``LastAckReceived``,
``LastAppByteWritten``, ``LastAppByteRead`` — plus FIN/RST generation
notices (Sec. 4.2.2) and, while a NIC failure is being disambiguated, the
latest gateway-ping outcome (Sec. 4.3).

All counters are *stream offsets* (0 = first data byte).  They compare
directly between primary and backup because ST-TCP forces both replicas to
use the same ISN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ConnKey", "ConnProgress", "Heartbeat",
           "ROLE_PRIMARY", "ROLE_BACKUP",
           "HEARTBEAT_BASE_BYTES", "PER_CONNECTION_BYTES"]

ROLE_PRIMARY = "primary"
ROLE_BACKUP = "backup"

# The paper: "The HB is less than 20 bytes per TCP connection".
PER_CONNECTION_BYTES = 20
HEARTBEAT_BASE_BYTES = 8

# (client_ip_value, client_port) — the varying half of the 4-tuple; the
# service IP and port are fixed per ST-TCP pair.
ConnKey = tuple


@dataclass(frozen=True)
class ConnProgress:
    """One connection's progress counters as carried in a heartbeat."""

    key: ConnKey
    last_byte_received: int       # in-order client bytes received by TCP
    last_ack_received: int        # our bytes the client has acked
    last_app_byte_written: int    # bytes the app wrote to the send buffer
    last_app_byte_read: int       # bytes the app read from the recv buffer
    fin_generated: bool = False   # app/OS closed the socket (FIN queued/held)
    rst_generated: bool = False   # app aborted the socket (RST held)

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size."""
        return PER_CONNECTION_BYTES


@dataclass(frozen=True)
class Heartbeat:
    """One heartbeat message (sent over both the IP and serial links)."""

    sender_role: str
    seq: int
    connections: tuple[ConnProgress, ...] = ()
    # Gateway-ping exchange, active only while diagnosing a NIC failure.
    ping_probing: bool = False
    ping_ok: Optional[bool] = None

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size."""
        return (HEARTBEAT_BASE_BYTES
                + PER_CONNECTION_BYTES * len(self.connections))

    def progress_for(self, key: ConnKey) -> Optional[ConnProgress]:
        """This heartbeat's entry for one connection key (or None)."""
        for progress in self.connections:
            if progress.key == key:
                return progress
        return None
