"""Server-to-server control protocol.

Three message types ride between the ST-TCP engines, separate from the
heartbeat:

* :class:`ConnInit` — primary → backup at accept time: "a connection was
  established with this client; use this ISN".  This is the simulated
  analogue of the kernel mechanism by which "the backup changes its
  initial sequence number to match that of the primary" (paper Sec. 2).
  Sent over both the IP link and the serial link for robustness.
* :class:`FetchRequest` / :class:`FetchReply` — the backup retrieving
  client bytes it missed from the primary's extra receive buffer
  (paper Sec. 4.3, "temporary local network failures").
* :class:`ConnClosed` — primary → backup: the live connection is fully
  closed; dispose of the replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.addresses import IPAddress
from repro.net.serial_link import SerialPort
from repro.net.udp import UdpLayer
from repro.sim.world import World
from repro.sttcp.state import ConnKey

__all__ = ["ConnInit", "FetchRequest", "FetchReply", "ConnClosed",
           "AppFailureNotice", "ControlChannel"]


@dataclass(frozen=True)
class ConnInit:
    """Replicate-this-connection order (primary → backup)."""

    key: ConnKey            # (client_ip_value, client_port)
    service_port: int
    isn: int                # the primary's ISN — the backup must match it

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size of the message."""
        return 16


@dataclass(frozen=True)
class FetchRequest:
    """Backup → primary: please re-supply these client-byte ranges."""

    key: ConnKey
    ranges: tuple[tuple[int, int], ...]   # [start, end) stream offsets

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size of the message."""
        return 8 + 8 * len(self.ranges)


@dataclass(frozen=True)
class FetchReply:
    """Primary → backup: the requested bytes (or an unavailability notice,
    which the paper classes as unrecoverable for non-logged applications)."""

    key: ConnKey
    offset: int
    data: bytes = field(repr=False, default=b"")
    unavailable: bool = False

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size of the message."""
        return 12 + len(self.data)


@dataclass(frozen=True)
class AppFailureNotice:
    """Watchdog extension (paper Sec. 4.2.2): an application-layer
    watchdog on one server suspects its local application has failed and
    tells the peer's engine directly — closing the detection gap for idle
    connections where TCP-layer counters carry no signal."""

    location: str   # "primary" or "backup": where the failure is

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size of the message."""
        return 8


@dataclass(frozen=True)
class ConnClosed:
    """Primary → backup: connection finished; drop the replica."""

    key: ConnKey

    @property
    def size_bytes(self) -> int:
        """Modelled on-wire size of the message."""
        return 8


class ControlChannel:
    """UDP-based control endpoint with optional serial mirroring.

    ``send(msg, also_serial=True)`` duplicates small critical messages
    (ConnInit) over the serial link so a lossy IP path cannot leave the
    backup without an ISN.  The receiving engine deduplicates naturally —
    replicate orders are idempotent.
    """

    def __init__(self, world: World, udp: UdpLayer, local_ip: IPAddress,
                 peer_ip: IPAddress, port: int,
                 serial_port: Optional[SerialPort] = None,
                 name: str = "control"):
        self._world = world
        self._udp = udp
        self._local_ip = local_ip
        self._peer_ip = peer_ip
        self._port = port
        self._serial = serial_port
        self.name = name
        self._handler: Optional[Callable[[Any], None]] = None
        self.messages_sent = 0
        self.messages_received = 0
        udp.bind(port, self._on_udp)

    def set_handler(self, handler: Callable[[Any], None]) -> None:
        """Install the receive callback."""
        self._handler = handler

    def send(self, message: Any, also_serial: bool = False) -> None:
        """Transmit to the peer over UDP (and optionally serial)."""
        self.messages_sent += 1
        self._udp.send(self._peer_ip, self._port, self._port, message,
                       src_ip=self._local_ip)
        if also_serial and self._serial is not None:
            self._serial.send(message)

    def deliver_from_serial(self, message: Any) -> None:
        """Entry point for control messages that arrived on the serial mux."""
        self._dispatch(message)

    def _on_udp(self, payload: Any, src_ip: IPAddress, _src_port: int) -> None:
        if src_ip != self._peer_ip:
            return  # only the paired server may speak this protocol
        self._dispatch(payload)

    def _dispatch(self, message: Any) -> None:
        self.messages_received += 1
        if self._handler is not None:
            self._handler(message)
