"""The backup-side ST-TCP engine.

The backup *taps* the client→server traffic (the switch floods it, because
the client's static ARP maps serviceIP to a multicast Ethernet address) and
runs a full replica of each service connection:

* client segments destined to a not-yet-replicated flow are buffered until
  the primary's ConnInit names the ISN; the replica connection is then
  created with that ISN and the buffered segments are replayed;
* every segment the replica's TCP generates is *suppressed* — generated,
  counted, dropped — so congestion/retransmission state stays warm while
  nothing reaches the wire (paper Sec. 2);
* client ACKs genuinely arrive (multicast) and drive the replica's send
  side; acks for bytes the slightly-lagging replica application has not
  produced yet are tolerated and applied on write;
* missed client bytes are fetched from the primary's extra receive buffer
  (Table 1 row 5);
* failures of the primary — machine crash, application lag, NIC failure —
  trigger takeover: power the primary down, stop suppressing, and let the
  already-running TCP machinery resume the stream with the same IP, port
  and sequence numbers (paper Secs. 2, 4).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.addresses import IPAddress
from repro.sim.timers import Timer
from repro.tcp.connection import TcpConnection
from repro.tcp.segment import TcpSegment, release_segment
from repro.tcp.sockets import Socket
from repro.sttcp.control import (AppFailureNotice, ConnClosed, ConnInit,
                                 FetchReply, FetchRequest)
from repro.sttcp.detector import LagTracker
from repro.sttcp.engine import MODE_ACTIVE, MODE_FT, SttcpEngine
from repro.sttcp.events import EventKind
from repro.sttcp.state import ConnKey, ConnProgress, Heartbeat, ROLE_BACKUP

__all__ = ["BackupEngine", "ManagedBackupConn"]

# Bound on buffered pre-ConnInit segments per flow (SYN + early data).
_MAX_BUFFERED_SEGMENTS = 256


class ManagedBackupConn:
    """Backup-side per-connection replica state."""

    def __init__(self, engine: "BackupEngine", conn: TcpConnection,
                 socket: Socket, key: ConnKey):
        self.engine = engine
        self.conn = conn
        self.socket = socket
        self.key = key
        config = engine.config
        world = engine.world
        self.primary_progress: Optional[ConnProgress] = None
        self.suppressed_segments = 0
        self.suppressed_fin = False
        self.original_transmit = conn.transmit
        # Primary application-failure trackers (Sec. 4.2.1, backup side).
        self.read_tracker = LagTracker(world, config.app_max_lag_bytes,
                                       config.app_max_lag_time_ns,
                                       config.app_lag_confirm_ns,
                                       name=f"{key}:app-read")
        self.write_tracker = LagTracker(world, config.app_max_lag_bytes,
                                        config.app_max_lag_time_ns,
                                        config.app_lag_confirm_ns,
                                        name=f"{key}:app-write")
        # Primary NIC-failure tracker (Sec. 4.3): client bytes the primary
        # reports receiving vs what we receive directly off the wire.
        self.nic_rx_tracker = LagTracker(world, config.nic_max_lag_bytes,
                                         config.nic_max_lag_time_ns,
                                         config.nic_lag_confirm_ns,
                                         name=f"{key}:nic-rx")
        self.primary_fin_seen = False
        # Missed-byte fetch state.
        self.fetch_outstanding = False
        self.fetch_expected_end = 0
        self.fetch_lag_since: Optional[int] = None
        self.fetch_retry_timer = Timer(world.sim, self._fetch_retry,
                                       label="fetch-retry")
        self.recovering_via_logger = False
        self.last_round_at: Optional[int] = None
        # Post-takeover gap bookkeeping (output-commit handling).
        self.gap_since: Optional[int] = None
        self.last_logger_fetch = 0

    def progress(self) -> ConnProgress:
        """Snapshot of this replica's HB progress counters."""
        conn = self.conn
        return ConnProgress(
            key=self.key,
            last_byte_received=conn.last_byte_received,
            last_ack_received=conn.last_ack_received,
            last_app_byte_written=conn.last_app_byte_written,
            last_app_byte_read=conn.last_app_byte_read,
            fin_generated=conn.fin_queued,
            rst_generated=conn.rst_sent)

    def update_trackers_from_primary(self, progress: ConnProgress) -> None:
        """Fold the primary's latest HB entry into the lag trackers."""
        self.primary_progress = progress
        conn = self.conn
        self.read_tracker.update(conn.last_app_byte_read,
                                 progress.last_app_byte_read)
        self.write_tracker.update(conn.last_app_byte_written,
                                  progress.last_app_byte_written)
        self.nic_rx_tracker.update(conn.last_byte_received,
                                   progress.last_byte_received)
        if progress.fin_generated and not self.primary_fin_seen:
            self.primary_fin_seen = True

    def app_failure_verdict(self, evidence_time) -> Optional[str]:
        """Combined read/write lag verdict (None if healthy)."""
        return (self.read_tracker.verdict(evidence_time)
                or self.write_tracker.verdict(evidence_time))

    def _fetch_retry(self) -> None:
        self.fetch_outstanding = False
        self.engine.check_fetch(self)


class BackupEngine(SttcpEngine):
    """ST-TCP on the backup server."""

    LOGGER_REPLY_PORT = 7080

    def __init__(self, *args, **kwargs):
        super().__init__(*args, role=ROLE_BACKUP, **kwargs)
        self.conns: dict[ConnKey, ManagedBackupConn] = {}
        self._pending_segments: dict[ConnKey, list[TcpSegment]] = {}
        self.host.tcp.segment_filter = self._segment_filter
        self.takeover_at: Optional[int] = None
        self.takeover_reason: Optional[str] = None
        # Optional logger fallback (paper Sec. 4.3: the output-commit
        # problem).  When set, bytes the primary can no longer re-supply
        # are fetched from the stream logger instead.
        self.logger_ip: Optional[IPAddress] = None
        self._logger_port: Optional[int] = None

    def use_logger(self, logger_ip, logger_port: int = 7079) -> None:
        """Enable the Sec. 4.3 logger fallback for missed-byte recovery."""
        self.logger_ip = IPAddress(logger_ip)
        self._logger_port = logger_port
        self.host.udp.bind(self.LOGGER_REPLY_PORT, self._on_logger_reply)

    def _on_host_down(self) -> None:
        super()._on_host_down()
        for mc in self.conns.values():
            mc.fetch_retry_timer.stop()

    # ---------------------------------------------------------- tap filter

    def _segment_filter(self, segment: TcpSegment, src_ip: IPAddress,
                        dst_ip: IPAddress) -> bool:
        """Swallow service-port segments that have no replica yet.

        Once the replica exists, normal stack demux delivers segments to
        it; after takeover the filter disengages entirely so new clients
        are accepted by the (now live) listener."""
        if self.mode != MODE_FT:
            return False
        if segment.dst_port != self.config.service_port:
            return False
        if dst_ip != self.service_ip:
            return False
        key: ConnKey = (src_ip.value, segment.src_port)
        if self.host.tcp.has_connection(dst_ip, segment.dst_port,
                                        src_ip, segment.src_port):
            return False
        queue = self._pending_segments.setdefault(key, [])
        if len(queue) < _MAX_BUFFERED_SEGMENTS:
            # The tap buffer keeps the segment until the replica exists
            # (or the key is disposed): claim pooled segments
            # (pool.retain inlined), released on replay/dispose.
            claims = segment._claims
            if claims:
                segment._claims = claims + 1
            queue.append(segment)
        return True

    # -------------------------------------------------------------- control

    def _on_control(self, message: Any) -> None:
        if isinstance(message, ConnInit):
            self._on_conn_init(message)
        elif isinstance(message, FetchReply):
            self._on_fetch_reply(message)
        elif isinstance(message, ConnClosed):
            self._dispose(message.key)
        elif isinstance(message, AppFailureNotice):
            if message.location == "primary" and self.mode == MODE_FT:
                self.emit(EventKind.APP_FAILURE_DETECTED, location="primary",
                          symptom="application watchdog report from primary")
                self.take_over("primary application failure "
                               "(watchdog report)")

    def attach_watchdog(self, app, period_ns: int = 100_000_000,
                        miss_threshold: int = 3):
        """Sec. 4.2.2 extension: a watchdog on the backup's replica
        application; on suspicion the primary is told to run non-FT."""
        from repro.apps.watchdog import ApplicationWatchdog

        def on_suspicion(_app):
            """Relay the watchdog's suspicion to the primary."""
            if self.mode != MODE_FT:
                return
            self.control.send(AppFailureNotice("backup"), also_serial=True)

        watchdog = ApplicationWatchdog(self.world, app, on_suspicion,
                                       period_ns=period_ns,
                                       miss_threshold=miss_threshold)
        watchdog.start()
        return watchdog

    def _on_conn_init(self, init: ConnInit) -> None:
        if self.mode != MODE_FT or init.key in self.conns:
            return  # duplicate (IP + serial copies) or engine not tapping
        client_ip = IPAddress(init.key[0])
        client_port = init.key[1]
        listener = self.host.tcp.find_listener(self.service_ip,
                                               init.service_port)
        if listener is None:
            # Replica application is not listening: nothing to attach the
            # connection to.  The primary will keep re-announcing; the app
            # may simply not have started yet.
            return
        # The replica must never trim client data the primary accepted:
        # the client obeys the *primary's* advertised window, and during
        # missed-byte recovery the backup's rcv_next can lag by up to the
        # retain allowance.  Size the tap connection's receive buffer to
        # cover both.
        import copy as _copy
        tap_config = _copy.deepcopy(listener.config
                                    or self.host.tcp.config)
        tap_config.recv_buffer_bytes += self.config.retain_buffer_bytes
        conn, socket = self.host.tcp.create_tap_connection(
            self.service_ip, init.service_port, client_ip, client_port,
            isn=init.isn, config=tap_config)
        mc = ManagedBackupConn(self, conn, socket, init.key)
        self.conns[init.key] = mc
        conn.transmit = self._suppressor(mc)
        conn.stt_tolerate_future_acks = True
        self.emit(EventKind.CONN_REPLICATED, key=init.key, isn=init.isn)
        # Hand the socket to the replica application, then replay whatever
        # the tap buffered (starting with the client's SYN).
        listener.accepted_count += 1
        listener.on_accept(socket)
        for segment in self._pending_segments.pop(init.key, []):
            conn.segment_arrived(segment)
            release_segment(segment)  # the tap buffer's claim

    def _suppressor(self, mc: ManagedBackupConn):
        def suppress(segment: TcpSegment) -> None:
            """Count and drop one replica-generated segment."""
            mc.suppressed_segments += 1
            self.world.probes.fire("sttcp.suppress", self.name,
                                   len=len(segment.payload))
            if segment.fin and not mc.suppressed_fin:
                mc.suppressed_fin = True
                self.emit(EventKind.FIN_SUPPRESSED, key=mc.key)
            # The suppressor stands in for the wire: drop the creator
            # claim the transmit path would otherwise consume, so the
            # replica's pooled segments recycle instead of piling up.
            release_segment(segment)
        return suppress

    # ----------------------------------------------------------- heartbeat

    def connection_progress(self) -> list[ConnProgress]:
        """HB payload: one entry per managed replica."""
        return [mc.progress() for mc in self.conns.values()]

    def handle_peer_heartbeat(self, hb: Heartbeat, link: str) -> None:
        """Process a heartbeat from the primary."""
        if hb.sender_role == ROLE_BACKUP:
            return
        for progress in hb.connections:
            mc = self.conns.get(progress.key)
            if mc is not None:
                mc.update_trackers_from_primary(progress)
                self.check_fetch(mc)

    # --------------------------------------------------- missed-byte fetch

    def check_fetch(self, mc: ManagedBackupConn) -> None:
        """Request client bytes the primary has but we are missing
        (Table 1 row 5: temporary local network failure at the backup)."""
        if self.mode != MODE_FT or mc.fetch_outstanding:
            return
        progress = mc.primary_progress
        if progress is None:
            return
        rcv = mc.conn.recv_buffer
        lagging = (progress.last_byte_received > rcv.rcv_next
                   or rcv.has_gap)
        if not lagging:
            mc.fetch_lag_since = None
            return
        now = self.world.sim.now
        if not rcv.has_gap:
            # Pure tail lag may just be data in flight: debounce one HB
            # period before asking.  A *hole* below buffered OOO data is
            # never in flight (the client has moved past it) — fetch it
            # immediately.
            if mc.fetch_lag_since is None:
                mc.fetch_lag_since = now
                return
            if now - mc.fetch_lag_since < self.config.hb_period_ns:
                return
        # Gaps below buffered out-of-order data, then the tail between our
        # highest buffered byte and the primary's high-water mark, up to
        # the per-round budget (catch-up bandwidth).
        budget = self.config.fetch_max_bytes_per_round
        ranges = []
        for start, end in rcv.missing_ranges():
            if budget <= 0:
                break
            take = min(end - start, budget)
            ranges.append((start, start + take))
            budget -= take
        tail_start = rcv.highest_received
        if progress.last_byte_received > tail_start and budget > 0:
            tail_end = min(progress.last_byte_received, tail_start + budget)
            ranges.append((tail_start, tail_end))
        if not ranges:
            return
        interval = self.config.fetch_round_interval_ns
        if interval and mc.last_round_at is not None:
            elapsed = now - mc.last_round_at
            if elapsed < interval:
                # Throttled: let the retry timer re-trigger this check.
                if not mc.fetch_retry_timer.armed:
                    mc.fetch_retry_timer.start(interval - elapsed)
                return
        mc.last_round_at = now
        mc.fetch_outstanding = True
        mc.fetch_expected_end = max(end for _start, end in ranges)
        mc.fetch_retry_timer.start(self.config.fetch_retry_ns)
        self.emit(EventKind.FETCH_REQUESTED, key=mc.key,
                  ranges=tuple(ranges))
        self.control.send(FetchRequest(mc.key, tuple(ranges)))

    def _on_fetch_reply(self, reply: FetchReply) -> None:
        mc = self.conns.get(reply.key)
        if mc is None:
            return
        if reply.unavailable:
            # Paper Sec. 4.3: bytes already acked to the client and gone
            # from the primary — unrecoverable for this connection.
            mc.fetch_retry_timer.stop()
            mc.fetch_outstanding = False
            self.emit(EventKind.UNRECOVERABLE, key=reply.key,
                      reason="primary cannot re-supply missed bytes")
            return
        before = mc.conn.recv_buffer.rcv_next
        mc.conn.inject_stream_bytes(reply.offset, reply.data)
        after = mc.conn.recv_buffer.rcv_next
        if after > before:
            self.emit(EventKind.FETCH_RECOVERED, key=reply.key,
                      offset=reply.offset, bytes=len(reply.data),
                      advanced=after - before)
        mc.fetch_lag_since = None
        # The round completes when the last requested byte is on board;
        # the retry timer backstops lost replies.
        if mc.conn.recv_buffer.highest_received >= mc.fetch_expected_end:
            mc.fetch_retry_timer.stop()
            mc.fetch_outstanding = False
            self.check_fetch(mc)

    # ----------------------------------------------------------- detection

    def _tick(self) -> None:
        if self.mode == MODE_ACTIVE:
            self._manage_post_takeover_gaps()
            return
        if self.mode != MODE_FT:
            return
        ip_up, serial_up = self.check_links()
        if not ip_up and not serial_up:
            # Table 1 row 1: the primary machine crashed.
            self.emit(EventKind.PEER_CRASH_DETECTED,
                      symptom="HB failure on both links")
            self.take_over("primary HB failure on both links")
            return
        if not ip_up and serial_up:
            # Sec. 4.3 mode: app-lag detection suspended (divergence is the
            # expected symptom of a NIC failure; pings and client-byte lag
            # decide whose NIC it is).
            self._ensure_probing()
            if self._diagnose_primary_nic():
                return
        else:
            self._stop_probing()
            self._check_primary_app_failure()
        self._collect_closed()

    def _diagnose_primary_nic(self) -> bool:
        evidence = self.peer_evidence_time()
        for mc in self.conns.values():
            if mc.primary_progress is not None:
                mc.nic_rx_tracker.update(
                    mc.conn.last_byte_received,
                    mc.primary_progress.last_byte_received)
            verdict = mc.nic_rx_tracker.verdict(evidence)
            if verdict is not None:
                self.emit(EventKind.NIC_FAILURE_DETECTED, key=mc.key,
                          symptom=verdict)
                self.take_over(f"primary NIC failure: {verdict}")
                return True
        if self.ping_board.peer_nic_failed():
            self.emit(EventKind.NIC_FAILURE_DETECTED,
                      symptom="primary gateway pings failing, ours succeed")
            self.take_over("primary NIC failure: gateway ping asymmetry")
            return True
        return False

    def _check_primary_app_failure(self) -> None:
        if not self.peer_hb_fresh():
            return  # silence is the crash detector's evidence, not ours
        evidence = self.peer_evidence_time()
        for mc in self.conns.values():
            if mc.primary_progress is not None:
                mc.update_trackers_from_primary(mc.primary_progress)
            verdict = mc.app_failure_verdict(evidence)
            if verdict is not None:
                self.emit(EventKind.APP_FAILURE_DETECTED, key=mc.key,
                          symptom=verdict, location="primary")
                self.take_over(f"primary application failure: {verdict}")
                return

    def _collect_closed(self) -> None:
        for key in [k for k, mc in self.conns.items()
                    if mc.conn.state.value == "CLOSED"]:
            self._dispose(key)

    def _dispose(self, key: ConnKey) -> None:
        mc = self.conns.pop(key, None)
        if mc is not None:
            mc.fetch_retry_timer.stop()
            if mc.conn.state.value != "CLOSED":
                # Drop the replica quietly: suppressed, so nothing reaches
                # the client.
                mc.conn.transmit = lambda seg: None
                mc.conn.abort()
        for segment in self._pending_segments.pop(key, ()):
            release_segment(segment)  # the tap buffer's claim

    # ------------------------------------------------------------ takeover

    def take_over(self, reason: str) -> None:
        """Become the live server (Table 1 recovery action).

        Order per paper Sec. 2: power the primary down *first* (no dual
        active servers), then stop suppressing output.  By default the TCP
        stream restarts at the next (backed-off) retransmission — exactly
        the behaviour Demo 2 measures; ``kick_on_takeover`` forces an
        immediate retransmit instead.
        """
        if self.mode != MODE_FT:
            return
        self.mode = MODE_ACTIVE
        self.takeover_at = self.world.sim.now
        self.takeover_reason = reason
        self.stonith_peer(reason)
        unrecoverable = []
        for mc in self.conns.values():
            gap = (mc.primary_progress is not None
                   and mc.primary_progress.last_byte_received
                   > mc.conn.recv_buffer.rcv_next)
            if gap or mc.conn.recv_buffer.has_gap:
                if self.logger_ip is not None:
                    # Sec. 4.3 extension: recover the acked-but-missed
                    # bytes from the stream logger, then go live.
                    mc.recovering_via_logger = True
                    self._fetch_from_logger(mc)
                    continue
                # Paper Sec. 4.3: primary died while we were still missing
                # bytes it had acked — unrecoverable for this connection.
                unrecoverable.append(mc)
                continue
            mc.conn.transmit = mc.original_transmit
            if self.config.kick_on_takeover:
                mc.conn.kick_output()
        self.emit(EventKind.TAKEOVER, reason=reason,
                  connections=len(self.conns),
                  unrecoverable=len(unrecoverable))
        for mc in unrecoverable:
            self.emit(EventKind.UNRECOVERABLE, key=mc.key,
                      reason="missed bytes unavailable after primary crash")
            mc.conn.transmit = mc.original_transmit
            mc.conn.abort()
        self.hb.stop()
        self._stop_probing()
        self.host.tcp.segment_filter = None

    def _manage_post_takeover_gaps(self) -> None:
        """After takeover, a hole below the dead primary's ack point can
        never be filled by client retransmission (the client's snd_una is
        past it).  With a logger we re-supply it; without one, the paper
        classes the connection as unrecoverable once the hole persists."""
        now = self.world.sim.now
        for mc in list(self.conns.values()):
            if mc.conn.state.value == "CLOSED":
                continue
            rcv = mc.conn.recv_buffer
            hole = (rcv.has_gap
                    or mc.conn.peer_data_high > rcv.highest_received
                    or mc.recovering_via_logger)
            if not hole:
                mc.gap_since = None
                continue
            if mc.gap_since is None:
                mc.gap_since = now
            if self.logger_ip is not None:
                if now - mc.last_logger_fetch >= self.config.fetch_retry_ns:
                    mc.last_logger_fetch = now
                    self._fetch_from_logger(mc)
            elif now - mc.gap_since >= self.config.unrecoverable_gap_ns:
                self.emit(EventKind.UNRECOVERABLE, key=mc.key,
                          reason="receive gap below the dead primary's ack "
                                 "point (output-commit problem)")
                mc.conn.abort()

    # ------------------------------------------------- logger fallback

    def _fetch_from_logger(self, mc: ManagedBackupConn) -> None:
        """Ask the stream logger for everything we are missing."""
        rcv = mc.conn.recv_buffer
        ranges = list(rcv.missing_ranges())
        target = max(
            mc.primary_progress.last_byte_received
            if mc.primary_progress is not None else rcv.rcv_next,
            mc.conn.peer_data_high)
        if target > rcv.highest_received:
            ranges.append((rcv.highest_received, target))
        if not ranges:
            self._finish_logger_recovery(mc)
            return
        self.emit(EventKind.FETCH_REQUESTED, key=mc.key,
                  ranges=tuple(ranges), via="logger")
        self.host.udp.send(self.logger_ip, self._logger_port,
                           self.LOGGER_REPLY_PORT,
                           FetchRequest(mc.key, tuple(ranges)),
                           src_ip=self.local_ip)

    def _on_logger_reply(self, payload, _src_ip, _src_port) -> None:
        if not isinstance(payload, FetchReply):
            return
        mc = self.conns.get(payload.key)
        if mc is None:
            return
        if payload.unavailable:
            self.emit(EventKind.UNRECOVERABLE, key=payload.key,
                      reason="logger cannot re-supply missed bytes")
            if getattr(mc, "recovering_via_logger", False):
                mc.recovering_via_logger = False
                mc.conn.transmit = mc.original_transmit
                mc.conn.abort()
            return
        before = mc.conn.recv_buffer.rcv_next
        mc.conn.inject_stream_bytes(payload.offset, payload.data)
        after = mc.conn.recv_buffer.rcv_next
        if after > before:
            self.emit(EventKind.FETCH_RECOVERED, key=payload.key,
                      offset=payload.offset, bytes=len(payload.data),
                      advanced=after - before, via="logger")
            if not mc.recovering_via_logger:
                # Connection already live: tell the client where we are.
                mc.conn.kick_output()
        self._finish_logger_recovery(mc)

    def _finish_logger_recovery(self, mc: ManagedBackupConn) -> None:
        """Once the stream is whole again, let the replica go live (if a
        takeover was waiting on this recovery)."""
        if not getattr(mc, "recovering_via_logger", False):
            return
        rcv = mc.conn.recv_buffer
        target = (mc.primary_progress.last_byte_received
                  if mc.primary_progress is not None else rcv.rcv_next)
        if rcv.has_gap or rcv.rcv_next < target:
            return  # more replies still in flight
        mc.recovering_via_logger = False
        mc.conn.transmit = mc.original_transmit
        mc.conn.kick_output()
        self.emit(EventKind.TAKEOVER, key=mc.key,
                  reason="logger recovery complete", connections=1,
                  unrecoverable=0)
