"""The logger extension (paper Sec. 4.3, referencing [2]).

The one unrecoverable single failure in base ST-TCP: the primary crashes
*while the backup is still fetching client bytes the primary had already
acknowledged* — the client will never retransmit them (they were acked)
and the only copy died with the primary.  "For critical applications, a
logger can be added to the system to address this output commit problem."

:class:`StreamLogger` is that component: a third machine on the LAN whose
NIC also subscribes to ``multiEA``, passively recording the in-order
client byte stream of every service connection.  The backup's fetch
protocol falls back to the logger when the primary cannot answer.

The logger is deliberately dumb — no ST-TCP engine, no TCP endpoint of its
own — just per-connection reassembly of the tapped segments plus a tiny
UDP query protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import IPAddress
from repro.net.packet import IPPacket
from repro.tcp.buffers import ReceiveBuffer
from repro.tcp.segment import TcpSegment
from repro.tcp.seq import seq_add, seq_sub
from repro.host.host import Host
from repro.sttcp.control import FetchReply, FetchRequest
from repro.sttcp.state import ConnKey

__all__ = ["StreamLogger", "LoggedConnection", "LOGGER_UDP_PORT"]

LOGGER_UDP_PORT = 7079


@dataclass
class LoggedConnection:
    """Reassembled client→server byte stream of one tapped connection."""

    key: ConnKey
    client_isn: int
    buffer: ReceiveBuffer = field(
        default_factory=lambda: ReceiveBuffer(capacity=1 << 30))
    # The logger never releases bytes (a real one would spool to disk); we
    # additionally keep the full stream for range queries after reads.
    stream: bytearray = field(default_factory=bytearray)

    def record(self, segment: TcpSegment) -> None:
        """Fold one tapped segment into the reassembled stream."""
        if not segment.payload:
            return
        offset = seq_sub(segment.seq, seq_add(self.client_isn, 1))
        if offset < 0:
            return
        newly = self.buffer.receive(offset, segment.payload)
        if newly:
            self.stream.extend(self.buffer.read(newly))

    @property
    def bytes_logged(self) -> int:
        """Contiguous client bytes recorded so far."""
        return len(self.stream)

    def get_range(self, start: int, end: int) -> Optional[bytes]:
        """Recorded bytes in [start, end) (empty past the end)."""
        if start >= len(self.stream):
            return b""
        return bytes(self.stream[start:end])


class StreamLogger:
    """A passive recorder of client→service traffic with a fetch service.

    Attach it to a host whose NIC is subscribed to the testbed's multicast
    Ethernet address (the scenario builder's ``add_logger`` helper does
    this), then point the backup engine's fallback at
    ``logger_ip``/:data:`LOGGER_UDP_PORT`.
    """

    def __init__(self, host: Host, service_ip: IPAddress, service_port: int,
                 name: str = "logger"):
        self.host = host
        self.service_ip = service_ip
        self.service_port = service_port
        self.name = name
        self.connections: dict[ConnKey, LoggedConnection] = {}
        self.fetches_served = 0
        self.fetches_unavailable = 0
        host.ip.add_promiscuous_tap(self._on_packet)
        host.udp.bind(LOGGER_UDP_PORT, self._on_fetch)

    # ------------------------------------------------------------ recording

    def _on_packet(self, packet: IPPacket) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        if packet.dst != self.service_ip:
            return
        if segment.dst_port != self.service_port:
            return
        key: ConnKey = (packet.src.value, segment.src_port)
        if segment.syn and not segment.ack_flag:
            # New connection: the client's ISN anchors the offsets.
            self.connections[key] = LoggedConnection(key, segment.seq)
            return
        logged = self.connections.get(key)
        if logged is not None:
            logged.record(segment)

    # ---------------------------------------------------------- fetch serving

    def _on_fetch(self, payload, src_ip: IPAddress, src_port: int) -> None:
        if not isinstance(payload, FetchRequest):
            return
        logged = self.connections.get(payload.key)
        for start, end in payload.ranges:
            if logged is None:
                self.fetches_unavailable += 1
                self.host.udp.send(src_ip, src_port, LOGGER_UDP_PORT,
                                   FetchReply(payload.key, start,
                                              unavailable=True))
                continue
            data = logged.get_range(start, end)
            if not data:
                self.fetches_unavailable += 1
                self.host.udp.send(src_ip, src_port, LOGGER_UDP_PORT,
                                   FetchReply(payload.key, start,
                                              unavailable=True))
                continue
            self.fetches_served += 1
            offset = start
            while offset < start + len(data):
                chunk = data[offset - start:offset - start + 4096]
                self.host.udp.send(src_ip, src_port, LOGGER_UDP_PORT,
                                   FetchReply(payload.key, offset, chunk))
                offset += len(chunk)

    def bytes_logged(self, key: ConnKey) -> int:
        """Contiguous client bytes recorded so far."""
        logged = self.connections.get(key)
        return logged.bytes_logged if logged else 0
