"""High-level API: wire a primary/backup pair of hosts into ST-TCP.

:class:`SttcpPair` is the public entry point most users want: given two
hosts that already share a LAN and (optionally) a serial cable, it creates
and starts both engines.  The service application itself stays ordinary —
it just calls ``host.tcp.listen(service_port, on_accept)`` on *both*
machines; ST-TCP does the rest.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.addresses import IPAddress
from repro.net.serial_link import SerialLink, SerialPort
from repro.sim.world import World
from repro.host.host import Host
from repro.host.power import PowerStrip
from repro.sttcp.backup import BackupEngine
from repro.sttcp.config import SttcpConfig
from repro.sttcp.primary import PrimaryEngine

__all__ = ["SttcpPair"]


class SttcpPair:
    """One replicated TCP service: a primary engine and a backup engine."""

    def __init__(self, world: World, primary_host: Host, backup_host: Host,
                 primary_ip: "IPAddress | str", backup_ip: "IPAddress | str",
                 service_ip: "IPAddress | str",
                 gateway_ip: "IPAddress | str",
                 power_strip: PowerStrip,
                 config: Optional[SttcpConfig] = None,
                 serial_link: Optional[SerialLink] = None,
                 primary_serial: Optional[SerialPort] = None,
                 backup_serial: Optional[SerialPort] = None):
        self.world = world
        self.config = config or SttcpConfig()
        self.config.validate()
        primary_ip = IPAddress(primary_ip)
        backup_ip = IPAddress(backup_ip)
        service_ip = IPAddress(service_ip)
        gateway_ip = IPAddress(gateway_ip)
        if self.config.use_serial_hb and (primary_serial is None
                                          or backup_serial is None):
            raise ConfigurationError(
                "use_serial_hb=True requires serial ports on both hosts "
                "(pass primary_serial/backup_serial, or set "
                "use_serial_hb=False for the single-link ablation)")
        self.serial_link = serial_link
        self.primary = PrimaryEngine(
            world, primary_host, self.config,
            local_ip=primary_ip, peer_ip=backup_ip, service_ip=service_ip,
            gateway_ip=gateway_ip, power_strip=power_strip,
            peer_host=backup_host,
            serial_port=primary_serial if self.config.use_serial_hb else None)
        self.backup = BackupEngine(
            world, backup_host, self.config,
            local_ip=backup_ip, peer_ip=primary_ip, service_ip=service_ip,
            gateway_ip=gateway_ip, power_strip=power_strip,
            peer_host=primary_host,
            serial_port=backup_serial if self.config.use_serial_hb else None)

    def start(self) -> None:
        """Begin heartbeating and failure detection on both servers."""
        self.primary.start()
        self.backup.start()

    def stop(self) -> None:
        """Stop both engines."""
        self.primary.stop()
        self.backup.stop()

    @property
    def failover_happened(self) -> bool:
        """True once the backup has taken over."""
        return self.backup.takeover_at is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SttcpPair primary={self.primary.mode} "
                f"backup={self.backup.mode}>")
