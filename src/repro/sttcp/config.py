"""ST-TCP configuration.

Every tunable named in the paper appears here under the paper's name:

* heartbeat period (Demo 2 sweeps 200 ms / 500 ms / 1 s);
* ``AppMaxLagBytes`` and ``AppMaxLagTime`` (Sec. 4.2.1);
* ``MaxDelayFIN`` (Sec. 4.2.2, "e.g., 1 minute");
* NIC-failure thresholds and gateway-ping parameters (Sec. 4.3);
* the primary's extra receive-buffer size (Sec. 2 / 4.3);
* ablation switches for the old architecture and single-link heartbeat
  (Sec. 3 discusses why both were abandoned).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.sim.core import millis, seconds

__all__ = ["SttcpConfig"]


@dataclass
class SttcpConfig:
    """Tunables for one primary/backup ST-TCP pair."""

    # The TCP port whose connections are replicated.
    service_port: int = 80

    # --- heartbeat (paper Sec. 3) ---
    hb_period_ns: int = millis(200)
    hb_miss_threshold: int = 3          # missed periods before a link is down
    use_serial_hb: bool = True          # ablation A2: False = UDP-only HB

    # --- application-failure detection (paper Sec. 4.2.1) ---
    app_max_lag_bytes: int = 16384      # AppMaxLagBytes
    app_max_lag_time_ns: int = seconds(2)   # AppMaxLagTime
    app_lag_confirm_ns: int = millis(500)   # byte-lag must persist this long

    # --- FIN disagreement handling (paper Sec. 4.2.2) ---
    max_delay_fin_ns: int = seconds(60)     # MaxDelayFIN

    # --- missed-byte recovery (paper Sec. 2 / 4.3) ---
    # The primary's extra receive buffer must absorb one heartbeat period
    # of client traffic at line rate (the backup's confirmations are one
    # period stale): 100 Mbps x 200 ms = 2.5 MB, with headroom.
    retain_buffer_bytes: int = 8 * 1024 * 1024
    fetch_retry_ns: int = millis(100)
    fetch_chunk_bytes: int = 4096       # per FetchReply message
    fetch_max_bytes_per_round: int = 262144   # per FetchRequest
    # Minimum spacing between fetch rounds (0 = pipeline immediately).
    # Raising it models a recovery path slower than the client's upload —
    # the regime where the primary's extra buffer fills and the backup is
    # declared failed (paper Sec. 4.3).
    fetch_round_interval_ns: int = 0
    # Post-takeover: a receive gap that the (dead) primary can no longer
    # fill and no logger can supply is the paper's unrecoverable case;
    # declare it after this long.
    unrecoverable_gap_ns: int = seconds(5)

    # --- local network (NIC) failure detection (paper Sec. 4.3) ---
    nic_max_lag_bytes: int = 8192
    nic_max_lag_time_ns: int = seconds(2)
    nic_lag_confirm_ns: int = millis(500)
    ping_interval_ns: int = millis(200)
    ping_fail_threshold: int = 3        # consecutive failures

    # --- transport endpoints for server-to-server messages ---
    hb_udp_port: int = 7078
    control_udp_port: int = 7077

    # --- ablations ---
    # Old architecture (paper Sec. 3): the backup also receives and
    # processes all primary->client traffic (switch port mirroring).
    tap_primary_client_traffic: bool = False
    # Accelerated takeover: retransmit immediately instead of waiting for
    # the next backed-off retransmission (the paper's system waits).
    kick_on_takeover: bool = False

    def validate(self) -> None:
        """Raise ConfigurationError on inconsistent settings."""
        if not 0 < self.service_port < 65536:
            raise ConfigurationError(f"bad service port {self.service_port}")
        if self.hb_period_ns <= 0:
            raise ConfigurationError("hb_period_ns must be positive")
        if self.hb_miss_threshold < 1:
            raise ConfigurationError("hb_miss_threshold must be >= 1")
        if self.app_max_lag_bytes <= 0 or self.app_max_lag_time_ns <= 0:
            raise ConfigurationError("app lag thresholds must be positive")
        if self.max_delay_fin_ns <= 0:
            raise ConfigurationError("max_delay_fin_ns must be positive")
        if self.retain_buffer_bytes <= 0:
            raise ConfigurationError("retain_buffer_bytes must be positive")
        if self.hb_udp_port == self.control_udp_port:
            raise ConfigurationError("HB and control ports must differ")

    def with_hb_period(self, period_ns: int) -> "SttcpConfig":
        """Copy with a different heartbeat period (Demo 2 sweeps this)."""
        return replace(self, hb_period_ns=period_ns)

    @property
    def detection_time_ns(self) -> int:
        """Nominal crash-detection latency: miss threshold x HB period."""
        return self.hb_miss_threshold * self.hb_period_ns
