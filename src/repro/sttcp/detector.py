"""Failure-detection primitives.

:class:`LagTracker` implements the two criteria of paper Sec. 4.2.1 for
one progress counter:

1. **byte lag** — the peer lags the local replica by at least
   ``AppMaxLagBytes``, continuously for a short confirmation window;
2. **time lag** — a particular byte processed locally has not been
   processed by the peer for ``AppMaxLagTime``.

The same class, with different thresholds, powers the NIC-failure
detection of Sec. 4.3 (client-byte and client-ack lag).

:class:`PingScoreboard` tracks the gateway-ping exchange of Sec. 4.3:
consecutive local successes vs consecutive peer failures.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.world import World

__all__ = ["LagTracker", "PingScoreboard"]


class LagTracker:
    """Watches one (local, peer) counter pair for pathological lag."""

    def __init__(self, world: World, max_lag_bytes: int, max_lag_time_ns: int,
                 confirm_ns: int = 0, name: str = "lag"):
        self._world = world
        self.max_lag_bytes = max_lag_bytes
        self.max_lag_time_ns = max_lag_time_ns
        self.confirm_ns = confirm_ns
        self.name = name
        self._local = 0
        self._peer = 0
        # Byte-lag window: opened when the lag first exceeds the threshold;
        # the peer "clears" it by covering the distance the local replica
        # had when the window opened.  Heartbeat snapshots are one period
        # stale, so raw (local - peer) exceeds any reasonable threshold
        # permanently during fast bulk transfer — progress against a fixed
        # target is what distinguishes *slow* from *dead*.
        self._byte_lag_since: Optional[int] = None
        self._byte_lag_target = 0
        # When the peer counter last advanced while still behind the local.
        self._stalled_since: Optional[int] = None
        # Edge-trigger for the detect.verdict probe: fire once per episode.
        self._verdict_fired = False

    def update(self, local: int, peer: int) -> None:
        """Feed the latest counters (local from the live connection, peer
        from the most recent heartbeat)."""
        now = self._world.sim.now
        if peer > self._peer:
            self._peer = peer
            self._stalled_since = None
        self._local = max(self._local, local)
        lag = self._local - self._peer
        if self._byte_lag_since is not None and self._peer >= self._byte_lag_target:
            self._byte_lag_since = None  # peer covered the window's target
        if lag >= self.max_lag_bytes:
            if self._byte_lag_since is None:
                self._byte_lag_since = now
                self._byte_lag_target = self._local
        else:
            self._byte_lag_since = None
        if lag > 0:
            if self._stalled_since is None:
                self._stalled_since = now
        else:
            self._stalled_since = None

    @property
    def lag_bytes(self) -> int:
        """Current local-minus-peer counter difference."""
        return self._local - self._peer

    def verdict(self, evidence_time: Optional[int] = None) -> Optional[str]:
        """Reason string if a failure criterion is met, else None.

        ``evidence_time`` is the instant of the latest proof that the peer
        *machine* is alive (its last heartbeat).  A lag window only
        matures if the peer demonstrated liveness for the whole window
        while still failing to progress — otherwise a crashed peer's
        frozen counters would masquerade as application lag and preempt
        the (row 1) crash detector."""
        now = self._world.sim.now
        matured_by = min(now, evidence_time) if evidence_time is not None \
            else now
        if (self._byte_lag_since is not None
                and matured_by - self._byte_lag_since >= self.confirm_ns):
            return self._verdict_reached(
                f"{self.name}: peer lags by {self.lag_bytes} bytes "
                f">= AppMaxLagBytes={self.max_lag_bytes}")
        if (self._stalled_since is not None
                and matured_by - self._stalled_since >= self.max_lag_time_ns):
            return self._verdict_reached(
                f"{self.name}: byte {self._peer} unprocessed by peer for "
                f">= AppMaxLagTime ({self.max_lag_time_ns / 1e9:.1f}s)")
        self._verdict_fired = False
        return None

    def _verdict_reached(self, reason: str) -> str:
        """Fire the ``detect.verdict`` probe once per verdict episode."""
        if not self._verdict_fired:
            self._verdict_fired = True
            self._world.probes.fire("detect.verdict", self.name,
                                    reason=reason, lag=self.lag_bytes)
        return reason

    def reset(self) -> None:
        """Clear all windows/streaks."""
        self._byte_lag_since = None
        self._byte_lag_target = 0
        self._stalled_since = None
        self._verdict_fired = False


class PingScoreboard:
    """Gateway-ping outcomes: ours (direct) and the peer's (via serial HB)."""

    def __init__(self, fail_threshold: int):
        self.fail_threshold = fail_threshold
        self._local_ok_streak = 0
        self._local_fail_streak = 0
        self._peer_ok_streak = 0
        self._peer_fail_streak = 0

    def record_local(self, ok: bool) -> None:
        """Record the outcome of one of our own gateway pings."""
        if ok:
            self._local_ok_streak += 1
            self._local_fail_streak = 0
        else:
            self._local_fail_streak += 1
            self._local_ok_streak = 0

    def record_peer(self, ok: Optional[bool]) -> None:
        """Record the peer's latest reported ping outcome."""
        if ok is None:
            return
        if ok:
            self._peer_ok_streak += 1
            self._peer_fail_streak = 0
        else:
            self._peer_fail_streak += 1
            self._peer_ok_streak = 0

    @property
    def latest_local_ok(self) -> Optional[bool]:
        """Most recent local ping outcome (None before any)."""
        if self._local_ok_streak == 0 and self._local_fail_streak == 0:
            return None
        return self._local_ok_streak > 0

    def peer_nic_failed(self) -> bool:
        """True when we reach the gateway but the peer repeatedly cannot —
        the Sec. 4.3 criterion for 'the failure is at the peer'."""
        return (self._local_ok_streak >= self.fail_threshold
                and self._peer_fail_streak >= self.fail_threshold)

    def reset(self) -> None:
        """Clear all windows/streaks."""
        self._local_ok_streak = self._local_fail_streak = 0
        self._peer_ok_streak = self._peer_fail_streak = 0
