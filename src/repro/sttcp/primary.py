"""The primary-side ST-TCP engine.

Responsibilities (paper Secs. 2-4):

* replicate every accepted service connection to the backup (ConnInit with
  the chosen ISN, so the backup's replica is byte-aligned);
* copy in-order client bytes into the *extra receive buffer* and release
  them only once the backup's heartbeat confirms receipt; serve the
  backup's missed-byte fetches from it (Sec. 2, Sec. 4.3);
* intercept application/OS socket closes and delay the FIN per the
  MaxDelayFIN disagreement rules (Sec. 4.2.2);
* detect backup failures — machine crash (both HB links silent), backup
  application lag (AppMaxLagBytes / AppMaxLagTime), backup NIC failure
  (IP HB down + client-byte/ack lag or gateway-ping asymmetry), retain
  buffer exhaustion — and respond by powering the backup down and running
  in non-fault-tolerant mode (Table 1).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.timers import Timer
from repro.tcp.buffers import RetainBuffer
from repro.tcp.connection import TcpConnection
from repro.tcp.sockets import Listener, Socket
from repro.sttcp.control import (AppFailureNotice, ConnClosed, ConnInit,
                                 FetchReply, FetchRequest)
from repro.sttcp.detector import LagTracker
from repro.sttcp.engine import MODE_FT, MODE_NON_FT, SttcpEngine
from repro.sttcp.events import EventKind
from repro.sttcp.state import ConnKey, ConnProgress, Heartbeat, ROLE_PRIMARY

__all__ = ["PrimaryEngine", "ManagedPrimaryConn"]


class ManagedPrimaryConn:
    """Primary-side per-connection replication state."""

    def __init__(self, engine: "PrimaryEngine", conn: TcpConnection,
                 socket: Socket, key: ConnKey):
        self.engine = engine
        self.conn = conn
        self.socket = socket
        self.key = key
        config = engine.config
        world = engine.world
        self.retain = RetainBuffer(config.retain_buffer_bytes)
        self.backup_progress: Optional[ConnProgress] = None
        self.created_at = world.sim.now
        self.init_resent = 0
        # Backup application-failure trackers (Sec. 4.2.1, primary side).
        self.read_tracker = LagTracker(world, config.app_max_lag_bytes,
                                       config.app_max_lag_time_ns,
                                       config.app_lag_confirm_ns,
                                       name=f"{key}:app-read")
        self.write_tracker = LagTracker(world, config.app_max_lag_bytes,
                                        config.app_max_lag_time_ns,
                                        config.app_lag_confirm_ns,
                                        name=f"{key}:app-write")
        # Backup NIC-failure trackers (Sec. 4.3) — consulted only while the
        # IP HB is down and the serial HB is alive.
        self.nic_rx_tracker = LagTracker(world, config.nic_max_lag_bytes,
                                         config.nic_max_lag_time_ns,
                                         config.nic_lag_confirm_ns,
                                         name=f"{key}:nic-rx")
        self.nic_ack_tracker = LagTracker(world, config.nic_max_lag_bytes,
                                          config.nic_max_lag_time_ns,
                                          config.nic_lag_confirm_ns,
                                          name=f"{key}:nic-ack")
        # FIN/RST disagreement state (Sec. 4.2.2).
        self.close_requested = False        # app or OS asked to close
        self.abort_requested = False
        self.fin_held = False
        self.fin_release_timer = Timer(world.sim, self._fin_deadline,
                                       label="max-delay-fin")
        self.backup_fin_seen = False
        self.backup_fin_seen_at: Optional[int] = None

    # ------------------------------------------------------------- progress

    def progress(self) -> ConnProgress:
        """Snapshot of the live connection's HB progress counters."""
        conn = self.conn
        return ConnProgress(
            key=self.key,
            last_byte_received=conn.last_byte_received,
            last_ack_received=conn.last_ack_received,
            last_app_byte_written=conn.last_app_byte_written,
            last_app_byte_read=conn.last_app_byte_read,
            fin_generated=self.close_requested or conn.fin_queued,
            rst_generated=self.abort_requested or conn.rst_sent)

    def update_trackers_from_backup(self, progress: ConnProgress) -> None:
        """Fold the backup's latest HB entry into trackers and release retained bytes."""
        self.backup_progress = progress
        conn = self.conn
        self.read_tracker.update(conn.last_app_byte_read,
                                 progress.last_app_byte_read)
        self.write_tracker.update(conn.last_app_byte_written,
                                  progress.last_app_byte_written)
        self.nic_rx_tracker.update(conn.last_byte_received,
                                   progress.last_byte_received)
        self.nic_ack_tracker.update(conn.last_ack_received,
                                    progress.last_ack_received)
        # Release retained client bytes the backup has confirmed.
        self.retain.release_to(progress.last_byte_received)
        if progress.fin_generated and not self.backup_fin_seen:
            self.backup_fin_seen = True
            self.backup_fin_seen_at = self.engine.world.sim.now
            if self.fin_held:
                # Both sides generated a FIN: normal socket closure.
                self.engine.release_fin(self, "backup also generated FIN")

    # --------------------------------------------------- FIN gate internals

    def _fin_deadline(self) -> None:
        # MaxDelayFIN expired without a failure verdict: assume our own
        # behaviour is correct and let the FIN out (Sec. 4.2.2).
        self.engine.release_fin(self, "MaxDelayFIN expired")

    def app_failure_verdict(self, evidence_time) -> Optional[str]:
        """Combined read/write lag verdict (None if healthy)."""
        return (self.read_tracker.verdict(evidence_time)
                or self.write_tracker.verdict(evidence_time))

    def nic_failure_verdict(self, evidence_time) -> Optional[str]:
        """Combined client-byte/ack lag verdict (None if healthy)."""
        return (self.nic_rx_tracker.verdict(evidence_time)
                or self.nic_ack_tracker.verdict(evidence_time))


class PrimaryEngine(SttcpEngine):
    """ST-TCP on the primary server."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, role=ROLE_PRIMARY, **kwargs)
        self.conns: dict[ConnKey, ManagedPrimaryConn] = {}
        self.host.tcp.on_connection_accepted.append(self._on_accepted)

    def _on_host_down(self) -> None:
        super()._on_host_down()
        for mc in self.conns.values():
            mc.fin_release_timer.stop()

    # -------------------------------------------------------------- accept

    def _on_accepted(self, conn: TcpConnection, socket: Socket,
                     listener: Listener) -> None:
        if conn.local_port != self.config.service_port:
            return
        if self.mode != MODE_FT:
            return
        key: ConnKey = (conn.remote_ip.value, conn.remote_port)
        mc = ManagedPrimaryConn(self, conn, socket, key)
        self.conns[key] = mc

        def retain_tap(offset: int, data: bytes, mc=mc) -> None:
            """Copy in-order client bytes into the retain buffer (and let
            observers count them via the sttcp.retain probe)."""
            mc.retain.append(offset, data)
            self.world.probes.fire("sttcp.retain", self.name,
                                   off=offset, len=len(data))

        conn.inorder_tap = retain_tap
        socket.close_interceptor = lambda sock, m=mc: self._intercept_close(m)
        socket.abort_interceptor = lambda sock, m=mc: self._intercept_abort(m)
        self.emit(EventKind.CONN_REPLICATED, key=key, isn=conn.iss)
        self._send_conn_init(mc)

    def _send_conn_init(self, mc: ManagedPrimaryConn) -> None:
        self.control.send(ConnInit(mc.key, self.config.service_port,
                                   mc.conn.iss), also_serial=True)

    # ----------------------------------------------------------- heartbeat

    def connection_progress(self) -> list[ConnProgress]:
        """HB payload: one entry per managed connection."""
        return [mc.progress() for mc in self.conns.values()]

    def handle_peer_heartbeat(self, hb: Heartbeat, link: str) -> None:
        """Process a heartbeat from the backup."""
        if hb.sender_role == ROLE_PRIMARY:
            return  # misconfiguration guard
        for progress in hb.connections:
            mc = self.conns.get(progress.key)
            if mc is not None:
                mc.update_trackers_from_backup(progress)

    # -------------------------------------------------------------- control

    def _on_control(self, message: Any) -> None:
        if isinstance(message, FetchRequest):
            self._serve_fetch(message)
        elif isinstance(message, AppFailureNotice):
            if message.location == "backup" and self.mode == MODE_FT:
                self.emit(EventKind.APP_FAILURE_DETECTED, location="backup",
                          symptom="application watchdog suspicion")
                self.enter_non_ft("backup application failure "
                                  "(watchdog report)")

    def attach_watchdog(self, app, period_ns: int = 100_000_000,
                        miss_threshold: int = 3):
        """Sec. 4.2.2 extension: monitor the local service application
        with a watchdog; on suspicion, notify the backup directly so it
        can take over even when the connection is idle."""
        from repro.apps.watchdog import ApplicationWatchdog

        def on_suspicion(_app):
            """Broadcast the watchdog's suspicion to the backup."""
            if self.mode != MODE_FT:
                return
            self.emit(EventKind.APP_FAILURE_DETECTED, location="primary",
                      symptom="application watchdog suspicion (local)")
            self.control.send(AppFailureNotice("primary"), also_serial=True)

        watchdog = ApplicationWatchdog(self.world, app, on_suspicion,
                                       period_ns=period_ns,
                                       miss_threshold=miss_threshold)
        watchdog.start()
        return watchdog

    def _serve_fetch(self, request: FetchRequest) -> None:
        """Re-supply client bytes from the extra receive buffer."""
        mc = self.conns.get(request.key)
        if mc is None:
            self.control.send(FetchReply(request.key, 0, unavailable=True))
            return
        for start, end in request.ranges:
            # Retained bytes are released only when the backup's own HB
            # confirms it holds them, so a range start below the retain
            # base means this request raced such a heartbeat: the backup
            # already has [start, base).  Serve the still-retained suffix
            # instead of declaring the whole range unavailable (which
            # would falsely mark the connection unrecoverable).
            offset = max(start, mc.retain.base_offset)
            while offset < end:
                length = min(self.config.fetch_chunk_bytes, end - offset)
                data = mc.retain.get_range(offset, length)
                if data is None or data == b"":
                    # Released or never received: cannot re-supply.
                    self.control.send(FetchReply(request.key, offset,
                                                 unavailable=True))
                    break
                self.control.send(FetchReply(request.key, offset, data))
                offset += len(data)

    # ------------------------------------------------------ FIN intercepts

    def _intercept_close(self, mc: ManagedPrimaryConn) -> bool:
        """Socket.close() gate: implement the Sec. 4.2.2 decision table.

        Returns True when the close (FIN) is being *held*; False lets the
        socket proceed to a normal TCP close immediately.
        """
        if self.mode != MODE_FT:
            return False
        if mc.close_requested:
            return True  # already being handled
        mc.close_requested = True
        # "a server generating a FIN should immediately communicate the FIN
        # to the other server through the HB"
        self.hb.send_now()
        if mc.conn.peer_fin_consumed:
            # "the primary always immediately sends out a FIN if it has
            # already received a FIN from the client"
            return False
        if mc.backup_fin_seen:
            # Both sides agree: normal closure, no delay.
            return False
        mc.fin_held = True
        mc.fin_release_timer.start(self.config.max_delay_fin_ns)
        self.emit(EventKind.FIN_HELD, key=mc.key,
                  max_delay_s=self.config.max_delay_fin_ns / 1e9)
        return True

    def _intercept_abort(self, mc: ManagedPrimaryConn) -> bool:
        """Socket.abort() gate: RSTs get the same disagreement treatment."""
        if self.mode != MODE_FT:
            return False
        if mc.abort_requested:
            return True
        mc.abort_requested = True
        self.hb.send_now()
        if mc.backup_progress is not None and mc.backup_progress.rst_generated:
            return False
        mc.fin_held = True  # reuse the same hold machinery
        mc.fin_release_timer.start(self.config.max_delay_fin_ns)
        self.emit(EventKind.FIN_HELD, key=mc.key, kind="rst")
        return True

    def release_fin(self, mc: ManagedPrimaryConn, reason: str) -> None:
        """Let a held FIN/RST out to the client."""
        if not mc.fin_held:
            return
        mc.fin_held = False
        mc.fin_release_timer.stop()
        self.emit(EventKind.FIN_RELEASED, key=mc.key, reason=reason)
        if mc.abort_requested:
            mc.conn.abort()
        else:
            mc.conn.close()

    # ----------------------------------------------------------- detection

    def _tick(self) -> None:
        if self.mode != MODE_FT:
            return
        ip_up, serial_up = self.check_links()
        if not ip_up and not serial_up:
            # Table 1 row 1 (backup side): backup machine crashed.
            self.emit(EventKind.PEER_CRASH_DETECTED,
                      symptom="HB failure on both links")
            self.enter_non_ft("backup HB failure on both links")
            return
        if not ip_up and serial_up:
            # Table 1 row 4: a local network failure somewhere; find whose.
            # Application-lag detection is suspended while the IP link is
            # down — progress divergence is the *expected* symptom of a NIC
            # failure, and Sec. 4.3's own criteria decide whose it is.
            self._ensure_probing()
            if self._diagnose_backup_nic():
                return
        else:
            self._stop_probing()
            self._check_backup_app_failure()
        self._check_retain_overflow()
        self._resend_missing_inits()
        self._collect_closed()

    def _diagnose_backup_nic(self) -> bool:
        evidence = self.peer_evidence_time()
        for mc in self.conns.values():
            # Keep NIC trackers current even between backup HBs: our own
            # counters advance as the client keeps sending.
            if mc.backup_progress is not None:
                mc.nic_rx_tracker.update(
                    mc.conn.last_byte_received,
                    mc.backup_progress.last_byte_received)
                mc.nic_ack_tracker.update(
                    mc.conn.last_ack_received,
                    mc.backup_progress.last_ack_received)
            verdict = mc.nic_failure_verdict(evidence)
            if verdict is not None:
                self.emit(EventKind.NIC_FAILURE_DETECTED, key=mc.key,
                          symptom=verdict)
                self.enter_non_ft(f"backup NIC failure: {verdict}")
                return True
        if self.ping_board.peer_nic_failed():
            self.emit(EventKind.NIC_FAILURE_DETECTED,
                      symptom="backup gateway pings failing, ours succeed")
            self.enter_non_ft("backup NIC failure: gateway ping asymmetry")
            return True
        return False

    def _check_backup_app_failure(self) -> None:
        if not self.peer_hb_fresh():
            return  # silence is the crash detector's evidence, not ours
        evidence = self.peer_evidence_time()
        for mc in self.conns.values():
            if mc.backup_progress is not None:
                mc.update_trackers_from_backup(mc.backup_progress)
            verdict = mc.app_failure_verdict(evidence)
            if verdict is not None:
                self.emit(EventKind.APP_FAILURE_DETECTED, key=mc.key,
                          symptom=verdict, location="backup")
                self.enter_non_ft(f"backup application failure: {verdict}")
                return
            # Sec. 4.2.2 case "backup generates FIN, primary does not":
            # resolve at MaxDelayFIN if no failure verdict arrived earlier.
            if (mc.backup_fin_seen and not mc.close_requested
                    and not mc.conn.fin_queued
                    and mc.backup_fin_seen_at is not None
                    and (self.world.sim.now - mc.backup_fin_seen_at
                         >= self.config.max_delay_fin_ns)):
                self.emit(EventKind.APP_FAILURE_DETECTED, key=mc.key,
                          symptom="backup FIN without primary FIN, "
                                  "unresolved at MaxDelayFIN",
                          location="backup")
                self.enter_non_ft("backup FIN disagreement at MaxDelayFIN")
                return

    def _check_retain_overflow(self) -> None:
        for mc in self.conns.values():
            if mc.retain.overflowed:
                # Sec. 4.3: the backup cannot catch up and the extra buffer
                # filled; the primary considers the backup failed.
                self.emit(EventKind.RETAIN_OVERFLOW, key=mc.key)
                self.enter_non_ft("retain buffer exhausted: backup "
                                  "cannot catch up")
                return

    def _resend_missing_inits(self) -> None:
        """Re-announce connections the backup's HBs never mention."""
        now = self.world.sim.now
        for mc in self.conns.values():
            if (mc.backup_progress is None and mc.init_resent < 5
                    and now - mc.created_at
                    > (mc.init_resent + 2) * self.config.hb_period_ns):
                mc.init_resent += 1
                self._send_conn_init(mc)

    def _collect_closed(self) -> None:
        for key in [k for k, mc in self.conns.items()
                    if mc.conn.state.value == "CLOSED"]:
            self.control.send(ConnClosed(key))
            mc = self.conns.pop(key)
            mc.fin_release_timer.stop()

    # ------------------------------------------------------------ non-FT

    def enter_non_ft(self, reason: str) -> None:
        """Backup declared failed: shut it down, carry on alone (Table 1)."""
        if self.mode != MODE_FT:
            return
        self.mode = MODE_NON_FT
        self.emit(EventKind.NON_FT_MODE, reason=reason)
        self.stonith_peer(reason)
        self.stop()
        # Any held FINs are no longer waiting on backup agreement.
        for mc in list(self.conns.values()):
            if mc.fin_held:
                self.release_fin(mc, f"non-FT mode: {reason}")
            mc.conn.inorder_tap = None  # no more retained copies needed
            mc.socket.close_interceptor = None
            mc.socket.abort_interceptor = None
