"""``python -m repro`` — run the paper's demonstrations."""

import sys

from repro.cli import main

sys.exit(main())
