"""ASCII figures for benchmark output.

The paper's Demo 2 is naturally a figure (failover time vs HB period);
these helpers render such series as terminal bar/line charts so the
benchmark output shows the *shape*, not just numbers.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["bar_chart", "sparkline", "step_series"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(empty chart)"
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = value / peak * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}} "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line sparkline (resampled to ``width`` if given)."""
    if not values:
        return ""
    if width is not None and len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    ramp = "▁▂▃▄▅▆▇█"
    return "".join(ramp[int((v - low) / span * (len(ramp) - 1))]
                   for v in values)


def step_series(points: Sequence[tuple[float, float]], width: int = 60,
                height: int = 10) -> str:
    """A small scatter/step plot of (x, y) points — used for the client
    progress curve around a failover (the 'pie chart over time')."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_low) / x_span * (width - 1))
        row = int((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_low:g}, {x_high:g}]   y: [{y_low:g}, {y_high:g}]")
    return "\n".join(lines)
