"""Failover timelines: fault → detection → takeover → resumption.

Assembles one coherent record per experiment from the three observation
points (fault injector, engine event logs, client stream monitor); this is
what Demo 1/2/4/5 report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.monitor import ClientStreamMonitor
from repro.sttcp.events import EngineEventLog, EventKind

__all__ = ["FailoverTimeline", "build_timeline"]


@dataclass
class FailoverTimeline:
    """All the instants that matter, in nanoseconds of virtual time."""

    fault_at: Optional[int] = None
    detected_at: Optional[int] = None
    detection_kind: Optional[str] = None
    takeover_at: Optional[int] = None
    non_ft_at: Optional[int] = None
    stonith_at: Optional[int] = None
    client_resumed_at: Optional[int] = None

    @property
    def detection_latency_ns(self) -> Optional[int]:
        """Fault-to-detection latency (None if incomplete)."""
        if self.fault_at is None or self.detected_at is None:
            return None
        return self.detected_at - self.fault_at

    @property
    def failover_time_ns(self) -> Optional[int]:
        """The paper's headline number: fault to client-visible resumption
        (detection time + residual TCP retransmission backoff)."""
        if self.fault_at is None or self.client_resumed_at is None:
            return None
        return self.client_resumed_at - self.fault_at

    @property
    def backoff_residue_ns(self) -> Optional[int]:
        """Time between takeover and resumption — the retransmission wait
        the paper's Demo 2 discussion highlights."""
        if self.takeover_at is None or self.client_resumed_at is None:
            return None
        return self.client_resumed_at - self.takeover_at

    def describe(self) -> str:
        """One-line human-readable summary of the timeline."""
        def fmt(ns: Optional[int]) -> str:
            """Format an optional instant as seconds."""
            return "-" if ns is None else f"{ns / 1e9:.3f}s"
        return (f"fault={fmt(self.fault_at)} detected={fmt(self.detected_at)} "
                f"({self.detection_kind or '-'}) "
                f"takeover={fmt(self.takeover_at)} "
                f"resumed={fmt(self.client_resumed_at)} "
                f"failover={fmt(self.failover_time_ns)}")


_DETECTION_KINDS = (EventKind.PEER_CRASH_DETECTED,
                    EventKind.APP_FAILURE_DETECTED,
                    EventKind.NIC_FAILURE_DETECTED)


def build_timeline(fault_at: Optional[int],
                   backup_events: Optional[EngineEventLog],
                   primary_events: Optional[EngineEventLog] = None,
                   monitor: Optional[ClientStreamMonitor] = None
                   ) -> FailoverTimeline:
    """Collate a timeline from the experiment's observation points.

    Every observation point is optional: a baseline run (no ST-TCP
    engines) passes ``None`` for both event logs and still gets the fault
    marker and the monitor-derived resumption instant."""
    timeline = FailoverTimeline(fault_at=fault_at)
    for log in (backup_events, primary_events):
        if log is None:
            continue
        for kind in _DETECTION_KINDS:
            event = log.first(kind)
            if event is not None and (timeline.detected_at is None
                                      or event.time < timeline.detected_at):
                timeline.detected_at = event.time
                timeline.detection_kind = kind
        stonith = log.first(EventKind.STONITH)
        if stonith is not None and timeline.stonith_at is None:
            timeline.stonith_at = stonith.time
    if backup_events is not None:
        takeover = backup_events.first(EventKind.TAKEOVER)
        if takeover is not None:
            timeline.takeover_at = takeover.time
    if primary_events is not None:
        non_ft = primary_events.first(EventKind.NON_FT_MODE)
        if non_ft is not None:
            timeline.non_ft_at = non_ft.time
    if monitor is not None and fault_at is not None:
        # The client-visible resumption is the end of the big stall, not
        # the first post-fault arrival (in-flight data still drains for a
        # few hundred microseconds after the fault).
        stall = monitor.largest_gap_after(fault_at)
        if stall is not None:
            timeline.client_resumed_at = stall[1]
        else:
            timeline.client_resumed_at = monitor.resume_time_after(fault_at)
    return timeline
