"""Measurement: stream monitors, failover timelines, report formatting."""

from repro.metrics.figures import bar_chart, sparkline, step_series
from repro.metrics.monitor import ClientStreamMonitor
from repro.metrics.report import banner, format_duration, format_table
from repro.metrics.timeline import FailoverTimeline, build_timeline

__all__ = [
    "ClientStreamMonitor",
    "bar_chart",
    "FailoverTimeline",
    "banner",
    "build_timeline",
    "format_duration",
    "format_table",
    "sparkline",
    "step_series",
]
