"""Client-side stream observation — the headless pie chart.

:class:`ClientStreamMonitor` records every arrival instant, so experiments
can quantify exactly what the paper's demo audience *sees*: smooth
progress, a glitch at failover, and resumption — or, for the baseline, a
connection reset.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.world import World

__all__ = ["ClientStreamMonitor"]


class ClientStreamMonitor:
    """Timestamped byte-arrival log with gap (glitch) analysis."""

    def __init__(self, world: World, name: str = "client-monitor"):
        self._world = world
        self.name = name
        self.samples: list[tuple[int, int]] = []   # (time_ns, total_bytes)
        self.events: list[tuple[int, str]] = []    # (time_ns, kind)
        self.total_bytes = 0

    # ------------------------------------------------------------ recording

    def on_bytes(self, n: int) -> None:
        """Record an arrival of ``n`` bytes at the current instant."""
        self.total_bytes += n
        self.samples.append((self._world.sim.now, self.total_bytes))

    def note_event(self, kind: str) -> None:
        """Record a lifecycle event (connect, reset, complete...)."""
        self.events.append((self._world.sim.now, kind))

    # -------------------------------------------------------------- queries

    @property
    def first_byte_at(self) -> Optional[int]:
        """Instant of the first arrival (None if none)."""
        return self.samples[0][0] if self.samples else None

    @property
    def last_byte_at(self) -> Optional[int]:
        """Instant of the latest arrival (None if none)."""
        return self.samples[-1][0] if self.samples else None

    def events_of(self, kind: str) -> list[int]:
        """Times of all recorded events of the given kind."""
        return [t for t, k in self.events if k == kind]

    def max_gap_ns(self, after_ns: int = 0,
                   before_ns: Optional[int] = None) -> int:
        """Largest inter-arrival gap within the window — the glitch size."""
        window = [t for t, _total in self.samples
                  if t >= after_ns and (before_ns is None or t <= before_ns)]
        if len(window) < 2:
            return 0
        return max(b - a for a, b in zip(window, window[1:]))

    def gap_at(self, instant_ns: int) -> Optional[tuple[int, int, int]]:
        """The stall straddling ``instant_ns``.

        Returns ``(last_before, first_after, gap)`` or None if the stream
        never resumed after ``instant_ns``."""
        before = [t for t, _ in self.samples if t <= instant_ns]
        after = [t for t, _ in self.samples if t > instant_ns]
        if not after:
            return None
        last_before = before[-1] if before else instant_ns
        return (last_before, after[0], after[0] - last_before)

    def largest_gap_after(self, instant_ns: int
                          ) -> Optional[tuple[int, int, int]]:
        """The biggest inter-arrival stall starting at or after
        ``instant_ns``: returns ``(stall_start, stall_end, gap)``.

        For failover experiments this is the client-visible service
        interruption — the data in flight at the instant of the fault
        still drains, so the stall begins slightly *after* the fault."""
        window = [t for t, _total in self.samples if t >= instant_ns]
        before = [t for t, _total in self.samples if t < instant_ns]
        if before:
            window.insert(0, before[-1])
        if len(window) < 2:
            return None
        best = None
        for a, b in zip(window, window[1:]):
            if best is None or b - a > best[2]:
                best = (a, b, b - a)
        return best

    def resume_time_after(self, instant_ns: int) -> Optional[int]:
        """First arrival after ``instant_ns`` (stream resumption)."""
        for t, _total in self.samples:
            if t > instant_ns:
                return t
        return None

    def bytes_before(self, instant_ns: int) -> int:
        """Cumulative bytes received at or before ``instant_ns``."""
        total = 0
        for t, cumulative in self.samples:
            if t > instant_ns:
                break
            total = cumulative
        return total

    def throughput_mbps(self) -> Optional[float]:
        """Mean goodput over the active interval."""
        if len(self.samples) < 2:
            return None
        duration = self.samples[-1][0] - self.samples[0][0]
        if duration <= 0:
            return None
        return self.total_bytes * 8 * 1e9 / duration / 1e6

    def progress_series(self, resolution_ns: int
                        ) -> list[tuple[float, int]]:
        """Downsampled (time_s, bytes) curve for plotting/reporting."""
        if not self.samples:
            return []
        series = []
        next_t = self.samples[0][0]
        for t, total in self.samples:
            if t >= next_t:
                series.append((t / 1e9, total))
                next_t = t + resolution_ns
        if series[-1] != (self.samples[-1][0] / 1e9, self.total_bytes):
            series.append((self.samples[-1][0] / 1e9, self.total_bytes))
        return series
