"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "format_duration", "banner"]


def format_duration(ns: Optional[int]) -> str:
    """Human-friendly duration: picks ms or s."""
    if ns is None:
        return "-"
    if ns < 1_000_000:
        return f"{ns / 1_000:.0f}us"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.1f}ms"
    return f"{ns / 1_000_000_000:.3f}s"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table (the benches print these)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        """Render one row with column padding."""
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render(cells[0]), separator]
    lines.extend(render(row) for row in cells[1:])
    return "\n".join(lines)


def banner(title: str, width: int = 72) -> str:
    """Section banner for benchmark output."""
    pad = max(0, width - len(title) - 2)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {title} {'=' * right}"
