"""ST-TCP — Server fault-Tolerant TCP (DSN 2005), reproduced in full on a
deterministic discrete-event network simulator.

The package layers exactly as the paper's system does:

- :mod:`repro.sim` — deterministic event kernel (int-ns clock, trace, RNG);
- :mod:`repro.net` — Ethernet switch/NICs/cables, ARP (static + dynamic),
  IP with aliasing, ICMP, UDP, RS-232 serial link;
- :mod:`repro.tcp` — a full TCP (handshake, Reno, RTO backoff, FIN/RST);
- :mod:`repro.host` — machines, OS, applications, CPU, power (STONITH);
- :mod:`repro.sttcp` — **the contribution**: dual-link heartbeat, replica
  tap with output suppression, ISN matching, retain-buffer + missed-byte
  fetch, Table-1 failure detection, seamless takeover;
- :mod:`repro.faults` — injection of every Table-1 single failure;
- :mod:`repro.apps` — deterministic demo applications;
- :mod:`repro.scenarios` — the Figure-2 testbed and experiment runners;
- :mod:`repro.metrics` — stream monitors, failover timelines, reports.

Quickstart::

    from repro.scenarios import build_testbed
    from repro.apps import StreamServer, StreamClient
    from repro.faults import HwCrash
    from repro.sim import seconds

    tb = build_testbed(seed=1)
    StreamServer(tb.primary, "srv-p").start()   # the service...
    StreamServer(tb.backup, "srv-b").start()    # ...and its replica
    tb.pair.start()                             # ST-TCP on
    client = StreamClient(tb.client, "c", tb.service_ip,
                          total_bytes=50_000_000)
    client.start()
    tb.inject.at(seconds(2), HwCrash(tb.primary))
    tb.run_until(30)
    assert client.received == client.total_bytes   # seamless failover
"""

__version__ = "1.0.0"

from repro.errors import (
    ConfigurationError,
    ReproError,
    SttcpError,
    TcpConnectionReset,
    TcpError,
    UnrecoverableFailureError,
)

__all__ = [
    "ConfigurationError",
    "ReproError",
    "SttcpError",
    "TcpConnectionReset",
    "TcpError",
    "UnrecoverableFailureError",
    "__version__",
]
