"""Ablation A4 — takeover retransmission policy.

The paper's system waits for the next (exponentially backed-off)
retransmission after takeover: "there is still a delay until the next
client or backup retransmission before the TCP stream gets re-started".
``kick_on_takeover`` retransmits immediately instead.  This ablation
quantifies how much of Demo 2's failover time that residue contributes.
"""

from repro.faults.faults import HwCrash
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import millis
from repro.sttcp.config import SttcpConfig

from _util import emit, once

PERIODS_MS = (200, 1000)


def run_ablation():
    results = {}
    for period_ms in PERIODS_MS:
        for kick in (False, True):
            config = SttcpConfig(hb_period_ns=millis(period_ms),
                                 kick_on_takeover=kick)
            results[(period_ms, kick)] = run_failover_experiment(
                lambda tb, sp, sb: HwCrash(tb.primary),
                total_bytes=30_000_000, fault_at_s=2.0,
                options=RunOptions(seed=3, run_until_s=60), config=config)
    return results


def render(results) -> str:
    rows = []
    for period_ms in PERIODS_MS:
        for kick in (False, True):
            timeline = results[(period_ms, kick)].timeline
            rows.append([
                f"{period_ms} ms",
                "immediate retransmit" if kick else "wait for RTO (paper)",
                format_duration(timeline.detection_latency_ns),
                format_duration(timeline.backoff_residue_ns),
                format_duration(timeline.failover_time_ns)])
    table = format_table(
        ["HB period", "takeover policy", "detection", "residue",
         "failover time"], rows)
    return "\n".join([
        banner("Ablation: takeover retransmission policy"),
        table, "",
        "Kicking the retransmission at takeover removes the backoff",
        "residue, leaving detection time as the whole failover cost.",
    ])


def test_ablation_takeover_kick(benchmark):
    results = once(benchmark, run_ablation)
    emit("ablation_takeover_kick", render(results))
    for period_ms in PERIODS_MS:
        waited = results[(period_ms, False)].timeline
        kicked = results[(period_ms, True)].timeline
        assert kicked.failover_time_ns <= waited.failover_time_ns
        assert kicked.backoff_residue_ns < waited.backoff_residue_ns
        assert results[(period_ms, True)].stream_intact
