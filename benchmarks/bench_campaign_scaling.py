"""Campaign-engine scale-out: trials/sec at jobs=1/2/4/8.

The single-process hot path (``BENCH_core_throughput.json``) is one
rung of the perf ladder; this benchmark measures the next one —
fan-out across cores via :func:`repro.campaign.run_campaign`.  Every
jobs level runs the *same* campaign (same seed, same grid), and the
script also asserts the canonical aggregates are byte-identical across
levels, so the scaling numbers can never come from trials quietly
diverging.

Usage::

    python benchmarks/bench_campaign_scaling.py                # measure
    python benchmarks/bench_campaign_scaling.py --record       # + update json
    python benchmarks/bench_campaign_scaling.py --quick        # CI smoke

The committed ``BENCH_campaign_scaling.json`` at the repo root records
one machine's numbers with its ``cpus`` count — scaling is physically
bounded by the cores actually available, so always read the speedups
against that field (a 1-CPU container shows ~1x at every jobs level no
matter how well the engine scales; the 4-core CI runner class is where
the >=3x-at-jobs=4 target is meaningful).  ``--quick`` runs a smaller
grid at jobs=1/2 only, writes
``benchmarks/results/BENCH_campaign_scaling_quick.json``, and exits
non-zero on any failed trial or any cross-jobs output divergence — the
CI gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_JSON = REPO_ROOT / "BENCH_campaign_scaling.json"
QUICK_JSON = pathlib.Path(__file__).parent / "results" / \
    "BENCH_campaign_scaling_quick.json"

# Each trial: a 2 MB stream through a primary HW crash at t=0.1s —
# large enough that the stream spans the fault (failover time is real),
# small enough that one trial is ~0.3 s of wall clock.
FULL = dict(grid_hb_period_ms=(100, 200, 500), trials=8,
            total_bytes=2_000_000, fault_at_s=0.1, run_until_s=6.0,
            jobs_levels=(1, 2, 4, 8))
QUICK = dict(grid_hb_period_ms=(100, 200), trials=2,
             total_bytes=2_000_000, fault_at_s=0.1, run_until_s=6.0,
             jobs_levels=(1, 2))


def build_spec(params: dict, seed: int = 3):
    from repro.campaign import CampaignSpec
    from repro.scenarios.options import RunOptions

    return CampaignSpec(
        scenario="failover",
        base={"total_bytes": params["total_bytes"],
              "fault_at_s": params["fault_at_s"]},
        grid={"hb_period_ms": list(params["grid_hb_period_ms"])},
        trials=params["trials"], seed=seed,
        options=RunOptions(run_until_s=params["run_until_s"]),
        timeout_s=300.0)


def measure(params: dict, seed: int = 3) -> dict:
    """Run the campaign at every jobs level; returns the measurement."""
    from repro.campaign import run_campaign

    spec = build_spec(params, seed=seed)
    levels = {}
    aggregates = set()
    failed = 0
    for jobs in params["jobs_levels"]:
        result = run_campaign(spec, jobs=jobs)
        aggregates.add(result.to_json())
        failed += len(result.failed)
        levels[str(jobs)] = {
            "wall_s": round(result.wall_s, 3),
            "trials_per_sec": round(result.trials_per_sec, 3),
        }
        print(f"  jobs={jobs}: {result.wall_s:.2f}s wall, "
              f"{result.trials_per_sec:.2f} trials/sec", flush=True)
    base = levels[str(params["jobs_levels"][0])]["trials_per_sec"]
    for jobs, entry in levels.items():
        entry["speedup"] = round(entry["trials_per_sec"] / base, 2)
    record = {
        "date": datetime.date.today().isoformat(),
        "cpus": os.cpu_count(),
        "trials": len(build_trials(spec)),
        "failed_trials": failed,
        "jobs_invariant_output": len(aggregates) == 1,
        "jobs": levels,
    }
    if "4" in levels:
        record["speedup_at_jobs4"] = levels["4"]["speedup"]
    return record


def build_trials(spec):
    from repro.campaign import expand

    return expand(spec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down CI smoke run (jobs=1/2)")
    parser.add_argument("--record", action="store_true",
                        help="store this measurement in "
                             "BENCH_campaign_scaling.json")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    params = QUICK if args.quick else FULL
    print(f"campaign scaling ({os.cpu_count()} CPU(s) visible):")
    record = measure(params, seed=args.seed)
    print(json.dumps({"workload": {k: list(v) if isinstance(v, tuple) else v
                                   for k, v in params.items()},
                      "result": record}, indent=2))

    ok = record["failed_trials"] == 0 and record["jobs_invariant_output"]
    if not record["jobs_invariant_output"]:
        print("FAIL: aggregated output differed across jobs levels",
              file=sys.stderr)
    if record["failed_trials"]:
        print(f"FAIL: {record['failed_trials']} trial(s) failed",
              file=sys.stderr)

    if args.quick:
        QUICK_JSON.parent.mkdir(exist_ok=True)
        QUICK_JSON.write_text(json.dumps(
            {"benchmark": "campaign_scaling_quick", "result": record},
            indent=2) + "\n")
        print(f"\nquick results -> {QUICK_JSON}")
        return 0 if ok else 1

    if args.record:
        data = (json.loads(RESULT_JSON.read_text())
                if RESULT_JSON.exists() else
                {"benchmark": "campaign_scaling",
                 "workload": {k: list(v) if isinstance(v, tuple) else v
                              for k, v in FULL.items()},
                 "trajectory": []})
        data.setdefault("trajectory", []).append(record)
        RESULT_JSON.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nrecorded -> {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
