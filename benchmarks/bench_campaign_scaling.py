"""Campaign-engine scale-out: trials/sec at jobs=1/2/4/8.

The single-process hot path (``BENCH_core_throughput.json``) is one
rung of the perf ladder; this benchmark measures the next one —
fan-out across cores via :func:`repro.campaign.run_campaign`.  Every
jobs level runs the *same* campaign (same seed, same grid), and the
script also asserts the canonical aggregates are byte-identical across
levels, so the scaling numbers can never come from trials quietly
diverging.

What is measured, per entry:

* **jobs=1, repeated.**  Wall clock on shared VMs jitters ±15-20 %
  between identical passes, so the serial run is repeated
  (``--repeats``, pyperf-style) and the *best* pass is reported — the
  best pass is the closest observable to the code's noise-free cost.
  Every pass is kept in the entry (``passes``) so the spread is
  visible, not hidden.
* **Setup-vs-run split.**  The warm testbed cache
  (:mod:`repro.campaign.warm`) accounts wall time spent building or
  thawing testbeds separately from running trials; the jobs=1 entry
  reports builds/restores, setup seconds, and the setup fraction.
* **Warm-vs-cold A/B.**  One extra jobs=1 pass with the warm cache
  disabled (``run_campaign(..., warm=False)``); its aggregate must be
  byte-identical to the warm ones.
* **cpus, prominently.**  Scaling is physically bounded by the cores
  actually available.  When only one CPU is visible the script REFUSES
  to headline a speedup figure — a 1-CPU container shows ~1x at every
  jobs level no matter how well the engine scales — and headlines
  jobs=1 trials/sec instead.  Speedups (and ``speedup_at_jobs4``) are
  only emitted when ``cpus > 1``.

Usage::

    python benchmarks/bench_campaign_scaling.py                # measure
    python benchmarks/bench_campaign_scaling.py --record       # + update json
    python benchmarks/bench_campaign_scaling.py --quick        # CI smoke

``--quick`` runs a smaller grid at jobs=1/2 only, writes
``benchmarks/results/BENCH_campaign_scaling_quick.json``, and exits
non-zero on any failed trial, any cross-jobs (or warm/cold) output
divergence, or — with ``--min-tps`` — a jobs=1 throughput below the
floor: the CI gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_JSON = REPO_ROOT / "BENCH_campaign_scaling.json"
QUICK_JSON = pathlib.Path(__file__).parent / "results" / \
    "BENCH_campaign_scaling_quick.json"

# Each trial: a 2 MB stream through a primary HW crash at t=0.1s —
# large enough that the stream spans the fault (failover time is real),
# small enough that one trial is ~0.3 s of wall clock.
FULL = dict(grid_hb_period_ms=(100, 200, 500), trials=8,
            total_bytes=2_000_000, fault_at_s=0.1, run_until_s=6.0,
            jobs_levels=(1, 2, 4, 8), repeats=5)
QUICK = dict(grid_hb_period_ms=(100, 200), trials=2,
             total_bytes=2_000_000, fault_at_s=0.1, run_until_s=6.0,
             jobs_levels=(1, 2), repeats=2)


def build_spec(params: dict, seed: int = 3):
    from repro.campaign import CampaignSpec
    from repro.scenarios.options import RunOptions

    return CampaignSpec(
        scenario="failover",
        base={"total_bytes": params["total_bytes"],
              "fault_at_s": params["fault_at_s"]},
        grid={"hb_period_ms": list(params["grid_hb_period_ms"])},
        trials=params["trials"], seed=seed,
        options=RunOptions(run_until_s=params["run_until_s"]),
        timeout_s=300.0)


def _measure_jobs1(spec, repeats: int, aggregates: set) -> tuple[dict, int]:
    """Repeated warm jobs=1 passes; returns (level entry, failed count).

    Each pass starts from an empty warm cache so the setup split always
    covers one build per grid point plus one restore per later trial.
    """
    from repro.campaign import run_campaign, warm

    failed = 0
    passes = []
    best = None
    for _ in range(max(1, repeats)):
        warm.get_cache().clear()
        warm.reset_stats()
        result = run_campaign(spec, jobs=1)
        stats = dict(warm.get_cache().stats)
        aggregates.add(result.to_json())
        failed += len(result.failed)
        setup_s = stats["build_s"] + stats["restore_s"]
        entry = {
            "wall_s": round(result.wall_s, 3),
            "trials_per_sec": round(result.trials_per_sec, 3),
            "setup_s": round(setup_s, 4),
            "run_s": round(result.wall_s - setup_s, 3),
            "builds": stats["builds"],
            "restores": stats["restores"],
        }
        passes.append(entry)
        print(f"  jobs=1: {entry['wall_s']:.2f}s wall "
              f"({entry['setup_s'] * 1000:.1f}ms setup), "
              f"{entry['trials_per_sec']:.2f} trials/sec", flush=True)
        if best is None or entry["trials_per_sec"] > best["trials_per_sec"]:
            best = entry
    n_trials = len(result.records)
    level = {
        "wall_s": best["wall_s"],
        "trials_per_sec": best["trials_per_sec"],
        "setup_split": {
            "builds": best["builds"],
            "restores": best["restores"],
            "setup_s": best["setup_s"],
            "run_s": best["run_s"],
            "setup_ms_per_trial": round(
                best["setup_s"] * 1000 / n_trials, 3) if n_trials else 0.0,
            "setup_fraction": round(
                best["setup_s"] / best["wall_s"], 5) if best["wall_s"]
                else 0.0,
        },
        "passes": passes,
    }
    return level, failed


def _measure_cold_ab(spec, warm_tps: float, aggregates: set) -> tuple[dict, int]:
    """One cold (warm cache off) jobs=1 pass; the A/B record."""
    from repro.campaign import run_campaign

    cold = run_campaign(spec, jobs=1, warm=False)
    identical = cold.to_json() in aggregates
    aggregates.add(cold.to_json())
    ab = {
        "warm_trials_per_sec": warm_tps,
        "cold_wall_s": round(cold.wall_s, 3),
        "cold_trials_per_sec": round(cold.trials_per_sec, 3),
        "identical_output": identical,
    }
    print(f"  jobs=1 (cold): {cold.wall_s:.2f}s wall, "
          f"{cold.trials_per_sec:.2f} trials/sec, "
          f"identical={identical}", flush=True)
    return ab, len(cold.failed)


def measure(params: dict, seed: int = 3) -> dict:
    """Run the campaign at every jobs level; returns the measurement."""
    from repro.campaign import run_campaign

    spec = build_spec(params, seed=seed)
    aggregates: set = set()
    levels = {}
    levels["1"], failed = _measure_jobs1(
        spec, params.get("repeats", 1), aggregates)
    ab, ab_failed = _measure_cold_ab(
        spec, levels["1"]["trials_per_sec"], aggregates)
    failed += ab_failed
    for jobs in params["jobs_levels"]:
        if jobs == 1:
            continue
        result = run_campaign(spec, jobs=jobs)
        aggregates.add(result.to_json())
        failed += len(result.failed)
        levels[str(jobs)] = {
            "wall_s": round(result.wall_s, 3),
            "trials_per_sec": round(result.trials_per_sec, 3),
        }
        print(f"  jobs={jobs}: {result.wall_s:.2f}s wall, "
              f"{result.trials_per_sec:.2f} trials/sec", flush=True)

    cpus = os.cpu_count() or 1
    record = {
        "date": datetime.date.today().isoformat(),
        "cpus": cpus,
        "trials": len(build_trials(spec)),
        "failed_trials": failed,
        "jobs_invariant_output": len(aggregates) == 1,
        "repeats_jobs1": max(1, params.get("repeats", 1)),
        "warm_vs_cold": ab,
        "jobs": levels,
    }
    if cpus > 1:
        base = levels["1"]["trials_per_sec"]
        for jobs, entry in levels.items():
            entry["speedup"] = round(entry["trials_per_sec"] / base, 2)
        if "4" in levels:
            record["speedup_at_jobs4"] = levels["4"]["speedup"]
        record["headline"] = {
            "metric": "speedup_at_jobs4" if "4" in levels else "speedup",
            "value": record.get("speedup_at_jobs4"),
        }
    else:
        # One visible CPU: a speedup figure would measure the container,
        # not the engine.  Headline single-process throughput instead.
        record["headline"] = {
            "metric": "jobs1_trials_per_sec",
            "value": levels["1"]["trials_per_sec"],
            "why": "cpus=1: fan-out speedup is not measurable on one "
                   "core; the honest figure is serial throughput",
        }
    return record


def build_trials(spec):
    from repro.campaign import expand

    return expand(spec)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down CI smoke run (jobs=1/2)")
    parser.add_argument("--record", action="store_true",
                        help="store this measurement in "
                             "BENCH_campaign_scaling.json")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=None,
                        help="jobs=1 passes (best reported; default "
                             f"{FULL['repeats']} full / {QUICK['repeats']} "
                             "quick)")
    parser.add_argument("--min-tps", type=float, default=None,
                        help="fail unless the jobs=1 run reaches this many "
                             "trials/sec (CI regression floor)")
    args = parser.parse_args(argv)

    params = dict(QUICK if args.quick else FULL)
    if args.repeats is not None:
        params["repeats"] = args.repeats
    print(f"campaign scaling ({os.cpu_count()} CPU(s) visible):")
    record = measure(params, seed=args.seed)
    print(json.dumps({"workload": {k: list(v) if isinstance(v, tuple) else v
                                   for k, v in params.items()},
                      "result": record}, indent=2))

    ok = record["failed_trials"] == 0 and record["jobs_invariant_output"]
    if not record["jobs_invariant_output"]:
        print("FAIL: aggregated output differed across jobs levels "
              "or warm/cold paths", file=sys.stderr)
    if record["failed_trials"]:
        print(f"FAIL: {record['failed_trials']} trial(s) failed",
              file=sys.stderr)
    if args.min_tps is not None:
        tps = record["jobs"]["1"]["trials_per_sec"]
        if tps < args.min_tps:
            print(f"FAIL: jobs=1 ran at {tps:.2f} trials/sec, below the "
                  f"--min-tps floor of {args.min_tps:g}", file=sys.stderr)
            ok = False

    if args.quick:
        QUICK_JSON.parent.mkdir(exist_ok=True)
        QUICK_JSON.write_text(json.dumps(
            {"benchmark": "campaign_scaling_quick", "result": record},
            indent=2) + "\n")
        print(f"\nquick results -> {QUICK_JSON}")
        return 0 if ok else 1

    if args.record:
        data = (json.loads(RESULT_JSON.read_text())
                if RESULT_JSON.exists() else
                {"benchmark": "campaign_scaling",
                 "workload": {k: list(v) if isinstance(v, tuple) else v
                              for k, v in FULL.items()},
                 "trajectory": []})
        data.setdefault("trajectory", []).append(record)
        RESULT_JSON.write_text(json.dumps(data, indent=2) + "\n")
        print(f"\nrecorded -> {RESULT_JSON}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
