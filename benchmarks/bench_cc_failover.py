"""Failover behaviour per congestion-control algorithm.

The paper's takeover argument is congestion-control-agnostic: the backup's
suppressed connection runs the same CC machinery as the primary, so its
window is warm at takeover whatever the algorithm.  This benchmark checks
that claim end to end — one campaign sweeping ``cc`` over every registered
algorithm, measuring per algorithm:

* **takeover latency** — fault instant to the backup's takeover;
* **post-handoff recovery** — takeover to the client's first resumed byte
  (the window-warmth signal: a cold algorithm would stall here);
* goodput over the run and stream intactness.

All four algorithms must keep the stream intact, and the detection path
(heartbeats, not data) must give CC-independent takeover latency.
"""

from repro.campaign import CampaignSpec, run_campaign
from repro.metrics.report import banner, format_table
from repro.scenarios.options import RunOptions
from repro.tcp.congestion import cc_names

from _util import emit, once
from bench_demo2_hb_frequency import campaign_jobs

SPEC = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 30_000_000, "fault_at_s": 2.0},
    grid={"cc": list(cc_names())},
    trials=1, seed=3,
    options=RunOptions(run_until_s=60.0))


def run_matrix():
    result = run_campaign(SPEC, jobs=campaign_jobs())
    return result.records


def _ms(ns):
    return f"{ns / 1e6:.3f}" if ns is not None else "-"


def render(records) -> str:
    rows = []
    for record in sorted(records, key=lambda r: r["params"]["cc"]):
        takeover = record["failover_time_ns"]
        resumed = record["client_resumed_at_ns"]
        takeover_at = record["takeover_at_ns"]
        recovery = (resumed - takeover_at
                    if resumed is not None and takeover_at is not None
                    else None)
        rows.append([
            record["params"]["cc"],
            _ms(takeover),
            _ms(recovery),
            f"{record['goodput_bytes_per_s'] / 1e6:.3f}",
            "yes" if record["stream_intact"] else "NO",
        ])
    table = format_table(
        ["cc", "takeover (ms)", "post-handoff recovery (ms)",
         "goodput (MB/s)", "stream intact"], rows)
    return "\n".join([banner("Failover by congestion-control algorithm"),
                      table])


def test_cc_failover_matrix(benchmark):
    records = once(benchmark, run_matrix)
    emit("cc_failover", render(records))
    takeovers = set()
    for record in records:
        cc = record["params"]["cc"]
        assert record["status"] == "ok", (cc, record.get("error"))
        assert record["stream_intact"], cc
        takeovers.add(record["failover_time_ns"])
    # Detection rides on heartbeats, not data: takeover latency must not
    # depend on the congestion-control algorithm.
    assert len(takeovers) == 1, takeovers
