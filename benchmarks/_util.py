"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and both
prints it and writes it under ``benchmarks/results/`` so the reproduction
is inspectable after a captured pytest run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it to results/<name>.txt."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
