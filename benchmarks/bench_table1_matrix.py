"""Table 1 — the complete single-failure scenario matrix.

Regenerates the paper's table: failure, location, observed symptom, and
recovery action taken, for every row and both locations.
"""

from repro.faults.faults import (AppCrashWithCleanup, AppHang, HwCrash,
                                 NicFailure)
from repro.metrics.report import banner, format_table
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.sttcp.events import EventKind

from _util import emit, once

CONFIG = SttcpConfig(max_delay_fin_ns=seconds(5))

SCENARIOS = [
    ("1", "HW/OS crash", "Primary", lambda tb, sp, sb: HwCrash(tb.primary)),
    ("1", "HW/OS crash", "Backup", lambda tb, sp, sb: HwCrash(tb.backup)),
    ("2", "App failure (no FIN)", "Primary", lambda tb, sp, sb: AppHang(sp)),
    ("2", "App failure (no FIN)", "Backup", lambda tb, sp, sb: AppHang(sb)),
    ("3", "App failure (FIN)", "Primary",
     lambda tb, sp, sb: AppCrashWithCleanup(sp)),
    ("3", "App failure (FIN)", "Backup",
     lambda tb, sp, sb: AppCrashWithCleanup(sb)),
    ("4", "NIC failure", "Primary",
     lambda tb, sp, sb: NicFailure(tb.primary.nics[0])),
    ("4", "NIC failure", "Backup",
     lambda tb, sp, sb: NicFailure(tb.backup.nics[0])),
]

_DETECTIONS = (EventKind.PEER_CRASH_DETECTED,
               EventKind.APP_FAILURE_DETECTED,
               EventKind.NIC_FAILURE_DETECTED)


def run_matrix():
    results = []
    for row, failure, location, fault in SCENARIOS:
        result = run_failover_experiment(
            fault, total_bytes=30_000_000, fault_at_s=1.0, run_until_s=60,
            seed=3, config=CONFIG)
        results.append((row, failure, location, result))
    return results


def _observed_symptom(result):
    for log in (result.testbed.pair.backup.events,
                result.testbed.pair.primary.events):
        for kind in _DETECTIONS:
            event = log.first(kind)
            if event is not None:
                return kind
    return "-"


def _recovery_action(result):
    pair = result.testbed.pair
    if pair.backup.takeover_at is not None:
        return "backup takes over; primary shut down"
    if pair.primary.mode == "non-fault-tolerant":
        return "primary non-FT; backup shut down"
    return "-"


def render(results) -> str:
    rows = []
    for row, failure, location, result in results:
        rows.append([
            row, failure, location,
            _observed_symptom(result),
            _recovery_action(result),
            "yes" if result.stream_intact else "NO",
        ])
    table = format_table(
        ["#", "failure", "location", "observed symptom",
         "recovery action taken", "client unaffected"], rows)
    return "\n".join([banner("Table 1: single-failure scenarios"), table])


def test_table1_matrix(benchmark):
    results = once(benchmark, run_matrix)
    emit("table1_matrix", render(results))
    for _row, failure, location, result in results:
        assert result.stream_intact, f"{failure}@{location}"
