"""Table 1 — the complete single-failure scenario matrix.

Regenerates the paper's table: failure, location, observed symptom, and
recovery action taken, for every row and both locations.

The eight scenarios run as one campaign (:mod:`repro.campaign`) with
the fault name as the grid axis, fanned out over worker processes (see
``bench_demo2_hb_frequency.campaign_jobs``); each trial record carries
the detection kind and takeover/non-FT instants the table is rendered
from, so the output is identical at any jobs setting.
"""

from repro.campaign import CampaignSpec, run_campaign
from repro.metrics.report import banner, format_table
from repro.scenarios.options import RunOptions

from _util import emit, once
from bench_demo2_hb_frequency import campaign_jobs

# (paper row, failure label, location) per fault registry name.
ROWS = {
    "hw_crash_primary": ("1", "HW/OS crash", "Primary"),
    "hw_crash_backup": ("1", "HW/OS crash", "Backup"),
    "app_hang_primary": ("2", "App failure (no FIN)", "Primary"),
    "app_hang_backup": ("2", "App failure (no FIN)", "Backup"),
    "app_crash_fin_primary": ("3", "App failure (FIN)", "Primary"),
    "app_crash_fin_backup": ("3", "App failure (FIN)", "Backup"),
    "nic_failure_primary": ("4", "NIC failure", "Primary"),
    "nic_failure_backup": ("4", "NIC failure", "Backup"),
}

SPEC = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 30_000_000, "fault_at_s": 1.0,
          "max_delay_fin_s": 5.0},
    grid={"fault": list(ROWS)},
    trials=1, seed=3,
    options=RunOptions(run_until_s=60.0))


def run_matrix():
    result = run_campaign(SPEC, jobs=campaign_jobs())
    return result.records


def _recovery_action(record):
    if record["takeover_at_ns"] is not None:
        return "backup takes over; primary shut down"
    if record["non_ft_at_ns"] is not None:
        return "primary non-FT; backup shut down"
    return "-"


def render(records) -> str:
    rows = []
    for record in records:
        row, failure, location = ROWS[record["params"]["fault"]]
        rows.append([
            row, failure, location,
            record["detection_kind"] or "-",
            _recovery_action(record),
            "yes" if record["stream_intact"] else "NO",
        ])
    table = format_table(
        ["#", "failure", "location", "observed symptom",
         "recovery action taken", "client unaffected"], rows)
    return "\n".join([banner("Table 1: single-failure scenarios"), table])


def test_table1_matrix(benchmark):
    records = once(benchmark, run_matrix)
    emit("table1_matrix", render(records))
    for record in records:
        fault = record["params"]["fault"]
        assert record["status"] == "ok", (fault, record["error"])
        assert record["stream_intact"], fault
