"""Demo 2 — dependence of failover time on heartbeat frequency.

The paper tries HB periods of 200 ms, 500 ms and 1 s and measures failover
time, noting it decomposes into failure-detection time plus the residual
wait for the next (exponentially backed-off) retransmission.

The sweep runs on the campaign engine (:mod:`repro.campaign`): one grid
axis, per-trial seeds derived from the campaign seed, trials fanned out
over ``REPRO_CAMPAIGN_JOBS`` workers (default: the visible cores, capped
at 4) — the rendered table is identical at any jobs setting.
"""

import os

from repro.campaign import CampaignSpec, run_campaign
from repro.metrics.figures import bar_chart
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.options import RunOptions

from _util import emit, once

PERIODS_MS = (200, 500, 1000)


def campaign_jobs() -> int:
    """Worker count for benchmark campaigns (env-overridable)."""
    return int(os.environ.get("REPRO_CAMPAIGN_JOBS",
                              min(4, os.cpu_count() or 1)))


SPEC = CampaignSpec(
    scenario="failover",
    base={"fault": "hw_crash_primary", "total_bytes": 30_000_000,
          "fault_at_s": 2.0},
    grid={"hb_period_ms": list(PERIODS_MS)},
    trials=1, seed=3,
    options=RunOptions(run_until_s=60.0))


def run_sweep():
    result = run_campaign(SPEC, jobs=campaign_jobs())
    return {r["params"]["hb_period_ms"]: r for r in result.records}


def render(records) -> str:
    rows = []
    for period_ms in PERIODS_MS:
        record = records[period_ms]
        rows.append([
            f"{period_ms} ms",
            format_duration(record["detection_ns"]),
            format_duration(record["backoff_residue_ns"]),
            format_duration(record["failover_time_ns"]),
            "yes" if record["stream_intact"] else "NO",
        ])
    table = format_table(
        ["HB period", "detection time", "retransmission residue",
         "failover time", "stream intact"], rows)
    chart = bar_chart([f"{p} ms" for p in PERIODS_MS],
                      [records[p]["failover_time_ns"] / 1e9
                       for p in PERIODS_MS], unit="s")
    return "\n".join([
        banner("Demo 2: failover time vs heartbeat frequency"),
        table, "", chart, "",
        "failover time = detection (miss threshold x HB period) + residual",
        "wait until the next backed-off client/backup retransmission.",
    ])


def test_demo2_hb_frequency(benchmark):
    records = once(benchmark, run_sweep)
    emit("demo2_hb_frequency", render(records))
    times = [records[p]["failover_time_ns"] for p in PERIODS_MS]
    assert times[0] < times[1] < times[2]     # the paper's shape
    assert all(records[p]["stream_intact"] for p in PERIODS_MS)
