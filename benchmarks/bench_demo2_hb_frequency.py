"""Demo 2 — dependence of failover time on heartbeat frequency.

The paper tries HB periods of 200 ms, 500 ms and 1 s and measures failover
time, noting it decomposes into failure-detection time plus the residual
wait for the next (exponentially backed-off) retransmission.
"""

from repro.faults.faults import HwCrash
from repro.metrics.figures import bar_chart
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import millis
from repro.sttcp.config import SttcpConfig

from _util import emit, once

PERIODS_MS = (200, 500, 1000)


def run_sweep():
    results = {}
    for period_ms in PERIODS_MS:
        results[period_ms] = run_failover_experiment(
            lambda tb, sp, sb: HwCrash(tb.primary),
            total_bytes=30_000_000, fault_at_s=2.0, run_until_s=60, seed=3,
            config=SttcpConfig(hb_period_ns=millis(period_ms)))
    return results


def render(results) -> str:
    rows = []
    for period_ms in PERIODS_MS:
        timeline = results[period_ms].timeline
        rows.append([
            f"{period_ms} ms",
            format_duration(timeline.detection_latency_ns),
            format_duration(timeline.backoff_residue_ns),
            format_duration(timeline.failover_time_ns),
            "yes" if results[period_ms].stream_intact else "NO",
        ])
    table = format_table(
        ["HB period", "detection time", "retransmission residue",
         "failover time", "stream intact"], rows)
    chart = bar_chart([f"{p} ms" for p in PERIODS_MS],
                      [results[p].timeline.failover_time_ns / 1e9
                       for p in PERIODS_MS], unit="s")
    return "\n".join([
        banner("Demo 2: failover time vs heartbeat frequency"),
        table, "", chart, "",
        "failover time = detection (miss threshold x HB period) + residual",
        "wait until the next backed-off client/backup retransmission.",
    ])


def test_demo2_hb_frequency(benchmark):
    results = once(benchmark, run_sweep)
    emit("demo2_hb_frequency", render(results))
    times = [results[p].timeline.failover_time_ns for p in PERIODS_MS]
    assert times[0] < times[1] < times[2]     # the paper's shape
    assert all(results[p].stream_intact for p in PERIODS_MS)
