"""Demo 4 — application crash failures, both paper scenarios:

1. the primary's application crashes and hangs (socket stays open, no FIN);
2. the OS cleans up and closes the socket (a FIN is generated, which
   ST-TCP must intercept and hold for MaxDelayFIN).
"""

from repro.faults.faults import AppCrashWithCleanup, AppHang
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.sttcp.events import EventKind

from _util import emit, once

CONFIG = SttcpConfig(max_delay_fin_ns=seconds(5))


def run_demo4():
    hang = run_failover_experiment(
        lambda tb, sp, sb: AppHang(sp),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
    cleanup = run_failover_experiment(
        lambda tb, sp, sb: AppCrashWithCleanup(sp),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
    return hang, cleanup


def render(hang, cleanup) -> str:
    def row(name, result, fin_note):
        timeline = result.timeline
        return [name,
                format_duration(timeline.detection_latency_ns),
                format_duration(timeline.failover_time_ns),
                fin_note,
                "yes" if result.stream_intact else "NO"]

    held = cleanup.testbed.pair.primary.events.has(EventKind.FIN_HELD)
    rows = [
        row("crash without cleanup (no FIN)", hang, "no FIN generated"),
        row("crash with OS cleanup (FIN)", cleanup,
            "FIN held" if held else "FIN NOT held"),
    ]
    table = format_table(
        ["scenario", "detection", "failover time", "FIN handling",
         "stream intact"], rows)
    symptom = hang.testbed.pair.backup.events.first(
        EventKind.APP_FAILURE_DETECTED).detail["symptom"]
    return "\n".join([
        banner("Demo 4: application crash failures"),
        table, "",
        f"detection criterion observed: {symptom}",
    ])


def test_demo4_app_crash(benchmark):
    hang, cleanup = once(benchmark, run_demo4)
    emit("demo4_app_crash", render(hang, cleanup))
    assert hang.stream_intact and cleanup.stream_intact
    assert cleanup.testbed.pair.primary.events.has(EventKind.FIN_HELD)
