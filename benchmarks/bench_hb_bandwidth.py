"""Sec. 3 heartbeat bandwidth analysis.

Paper: "The HB is less than 20 bytes per TCP connection, and assuming a HB
every 200ms, this translates to a bandwidth of 0.8 kbps per TCP
connection.  Thus, the serial link provides enough bandwidth for around
100 simultaneous TCP connections."

This benchmark measures the actual serial-link HB traffic of a running
pair with N connections and reproduces the capacity estimate.
"""

from repro.apps.streaming import StreamClient, StreamServer
from repro.metrics.report import banner, format_table
from repro.net.serial_link import SERIAL_DEFAULT_BAUD
from repro.scenarios.builder import build_testbed
from repro.sttcp.state import PER_CONNECTION_BYTES

from _util import emit, once

N_CONNECTIONS = 8
MEASURE_S = 10.0


def run_measurement():
    tb = build_testbed(seed=17)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    clients = []
    for i in range(N_CONNECTIONS):
        client = StreamClient(tb.client, f"c{i}", tb.service_ip, port=80,
                              total_bytes=100_000_000,  # never finishes
                              request_chunk=4096)
        client.start()
        clients.append(client)
    tb.run_until(1.0)   # connections up and replicated
    bytes_before = tb.pair.primary.hb.bytes_sent_serial
    t_before = tb.world.sim.now
    tb.run_until(1.0 + MEASURE_S)
    bytes_sent = tb.pair.primary.hb.bytes_sent_serial - bytes_before
    elapsed_s = (tb.world.sim.now - t_before) / 1e9
    return tb, bytes_sent, elapsed_s


def render(tb, bytes_sent, elapsed_s) -> str:
    measured_bps = bytes_sent * 8 / elapsed_s
    per_conn_bps = measured_bps / N_CONNECTIONS
    # On-wire serial cost includes 8N1 framing (10 bits/byte).
    per_conn_wire_bps = per_conn_bps * 10 / 8
    capacity = SERIAL_DEFAULT_BAUD / per_conn_wire_bps if per_conn_wire_bps else 0
    rows = [
        ["HB bytes per connection", f"{PER_CONNECTION_BYTES} B",
         "< 20 B (paper)"],
        ["HB bandwidth per connection", f"{per_conn_bps / 1000:.2f} kbps",
         "0.8 kbps (paper)"],
        ["serial link capacity", f"{capacity:.0f} connections",
         "~100 (paper)"],
    ]
    table = format_table(["quantity", "measured", "paper"], rows)
    return "\n".join([
        banner("Sec. 3: heartbeat bandwidth on the serial link"),
        table, "",
        f"measured over {elapsed_s:.1f}s with {N_CONNECTIONS} replicated "
        f"connections ({bytes_sent} HB bytes on the serial line)",
    ])


def test_hb_bandwidth(benchmark):
    tb, bytes_sent, elapsed_s = once(benchmark, run_measurement)
    emit("hb_bandwidth", render(tb, bytes_sent, elapsed_s))
    per_conn_bps = bytes_sent * 8 / elapsed_s / N_CONNECTIONS
    # Paper: 0.8 kbps per connection (plus a little per-message base).
    assert 0.5 * 800 <= per_conn_bps <= 2 * 800
