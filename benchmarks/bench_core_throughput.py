"""Core simulator throughput on the 32-client workload.

Measures the discrete-event kernel end to end — scheduler, NIC/cable
frame handling, TCP, probe bus, pattern payloads — by timing the
standard many-connection failover workload and reporting events/sec and
wall-clock.  The committed ``BENCH_core_throughput.json`` at the repo
root keeps a dated ``trajectory`` list — one appended entry per
recorded measurement — so the perf history across changes stays
queryable instead of each record overwriting the last.  (The original
``before``/``after`` pair from the hot-path optimization pass is kept
verbatim and also seeds the first two trajectory entries.)

Usage::

    python benchmarks/bench_core_throughput.py                  # measure
    python benchmarks/bench_core_throughput.py --record <label> # + append json
    python benchmarks/bench_core_throughput.py --quick          # CI smoke

``--quick`` runs a scaled-down workload, writes its numbers to
``benchmarks/results/BENCH_core_throughput_quick.json`` and exits
non-zero if the run crashes or any connection loses its stream — the CI
smoke leg.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_JSON = REPO_ROOT / "BENCH_core_throughput.json"
QUICK_JSON = pathlib.Path(__file__).parent / "results" / \
    "BENCH_core_throughput_quick.json"

# The canonical measurement workload: 32 clients, 32 streaming
# connections with arrival churn, primary HW crash mid-run.  Runs on the
# faithful broadcast network (egress filtering off) so its events/sec is
# directly comparable with every older trajectory entry.
FULL = dict(num_clients=32, connections=32, bytes_per_conn=500_000,
            mean_interarrival_s=0.02, fault_at_s=1.0, run_until_s=45.0,
            egress_filtering=False)
QUICK = dict(num_clients=8, connections=8, bytes_per_conn=40_000,
             mean_interarrival_s=0.02, fault_at_s=0.5, run_until_s=20.0,
             egress_filtering=False)

# The fleet scaling curve (docs/performance.md).  32 clients stays on the
# faithful broadcast network; the 256/1024 points enable the switch's
# egress filtering (the IGMP-snooping analogue), without which flood
# fan-out work grows quadratically with the fleet.  Each point is
# labelled with its configuration — events/sec is only comparable
# between entries with the same num_clients + egress_filtering.
SCALING = [
    dict(FULL),
    dict(num_clients=256, connections=256, bytes_per_conn=60_000,
         mean_interarrival_s=0.005, fault_at_s=1.0, run_until_s=30.0,
         egress_filtering=True),
    dict(num_clients=1024, connections=1024, bytes_per_conn=15_000,
         mean_interarrival_s=0.002, fault_at_s=1.0, run_until_s=30.0,
         egress_filtering=True),
]


def run_workload(params: dict, seed: int = 3) -> dict:
    """One timed run; returns the measurement record."""
    from repro.scenarios.options import RunOptions
    from repro.workloads import WorkloadSpec, run_workload_failover

    from repro.sim import gcctl

    spec = WorkloadSpec(kind="stream",
                        connections=params["connections"],
                        bytes_per_conn=params["bytes_per_conn"],
                        mean_interarrival_s=params["mean_interarrival_s"])
    # Freeze the import graph *outside* the timed window so the runner's
    # gc_freeze collect below only scans the fresh testbed, not the
    # whole interpreter heap.
    gcctl.freeze_baseline()
    start = time.perf_counter()
    result = run_workload_failover(
        spec, num_clients=params["num_clients"],
        fault_at_s=params["fault_at_s"],
        # gc_freeze: the bench process exits after measuring, so the
        # testbed graph is frozen out of every safe-point collection.
        options=RunOptions(seed=seed, run_until_s=params["run_until_s"],
                           gc_freeze=True),
        egress_filtering=params.get("egress_filtering", False))
    wall_s = time.perf_counter() - start
    sim = result.testbed.world.sim
    return {
        "events": sim.events_processed,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(sim.events_processed / wall_s),
        "sim_seconds": round(sim.now / 1e9, 3),
        "all_intact": result.all_intact,
        "completed": result.engine.completed_count,
        "connections": len(result.records),
        "num_clients": params["num_clients"],
        "egress_filtering": params.get("egress_filtering", False),
    }


def measure(params: dict, repeats: int = 2) -> dict:
    """Best-of-N timing (the kernel is deterministic; wall clock is not)."""
    from repro.sim import gcctl

    runs = []
    for _ in range(repeats):
        runs.append(run_workload(params))
        # Each run froze its testbed into the permanent generation
        # (gc_freeze); thaw between repeats so dead testbeds are
        # reclaimed instead of accumulating for the process lifetime.
        gcctl.thaw_baseline()
    return min(runs, key=lambda r: r["wall_s"])


def run_churn_probe(params: dict, seed: int = 3) -> dict:
    """One *instrumented* (untimed) run: the memory-churn dimension.

    Runs the same workload under ``tracemalloc`` and reports what the
    allocator saw per processed event.  ``net_blocks_per_event`` is the
    growth of ``sys.getallocatedblocks()`` across the run divided by the
    event count — with the recycle pools and GC orchestration working it
    amortizes the one-time testbed build to a small constant, and any
    per-event retention regression (a holder that stops releasing, a
    path that stops recycling) shows up as a step.  Peak memory is
    reported both as tracemalloc's traced high-water mark and the
    process ``ru_maxrss``.  GC counter deltas and the pool depths ride
    along for the CI artifact.
    """
    import gc
    import resource
    import tracemalloc

    from repro.net import pool
    from repro.scenarios.options import RunOptions
    from repro.sim import gcctl
    from repro.workloads import WorkloadSpec, run_workload_failover

    spec = WorkloadSpec(kind="stream",
                        connections=params["connections"],
                        bytes_per_conn=params["bytes_per_conn"],
                        mean_interarrival_s=params["mean_interarrival_s"])
    pool.clear()
    gc.collect()
    gc_before = gcctl.stats()
    blocks_before = sys.getallocatedblocks()
    tracemalloc.start()
    result = run_workload_failover(
        spec, num_clients=params["num_clients"],
        fault_at_s=params["fault_at_s"],
        options=RunOptions(seed=seed, run_until_s=params["run_until_s"]),
        egress_filtering=params.get("egress_filtering", False))
    traced_current, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    blocks_after = sys.getallocatedblocks()
    gc_after = gcctl.stats()
    events = result.testbed.world.sim.events_processed
    return {
        "events": events,
        "net_blocks_per_event": round(
            (blocks_after - blocks_before) / max(events, 1), 4),
        "net_blocks": blocks_after - blocks_before,
        "traced_peak_kb": traced_peak // 1024,
        "traced_current_kb": traced_current // 1024,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "gc_collections": [a - b for a, b in
                           zip(gc_after["collections"],
                               gc_before["collections"])],
        "gc_collected": [a - b for a, b in
                         zip(gc_after["collected"], gc_before["collected"])],
        "safe_point_collects": (gc_after["safe_point_collects"]
                                - gc_before["safe_point_collects"]),
        "pools": gc_after["pools"],
    }


def seed_trajectory(data: dict) -> list:
    """The trajectory list, seeded from the legacy before/after pair."""
    if "trajectory" not in data:
        data["trajectory"] = [
            dict(label=label, **data[label])
            for label in ("before", "after") if label in data
        ]
    return data["trajectory"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down CI smoke run")
    parser.add_argument("--clients", type=int, metavar="N",
                        help="override the client count (with --quick: a "
                             "fleet-sized smoke run with egress filtering)")
    parser.add_argument("--scaling", action="store_true",
                        help="run the 32/256/1024 fleet scaling curve "
                             "(with --record: append one entry per point)")
    parser.add_argument("--record", metavar="LABEL",
                        help="append this measurement (dated, labelled) to "
                             "the trajectory in BENCH_core_throughput.json")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--floor", type=int, metavar="EVENTS_PER_SEC",
                        help="exit non-zero if the measured events/sec "
                             "falls below this floor (the CI regression "
                             "gate; calibrate per runner class)")
    parser.add_argument("--churn", action="store_true",
                        help="also run the instrumented memory-churn probe "
                             "(always on for --quick)")
    parser.add_argument("--churn-ceiling", type=float,
                        metavar="BLOCKS_PER_EVENT",
                        help="exit non-zero if net allocated blocks per "
                             "event exceeds this ceiling (the allocation "
                             "regression gate; implies the churn probe)")
    args = parser.parse_args(argv)

    if args.scaling:
        return run_scaling(args)

    params = dict(QUICK if args.quick else FULL)
    if args.clients:
        # Fleet-sized variant: scale the load with the fleet and turn on
        # the switch's egress filtering (the fleet configuration).
        params.update(num_clients=args.clients, connections=args.clients,
                      bytes_per_conn=20_000, mean_interarrival_s=0.005,
                      fault_at_s=0.5, run_until_s=20.0,
                      egress_filtering=True)
    record = measure(params, repeats=args.repeats)
    want_churn = (args.quick or args.churn or args.record
                  or args.churn_ceiling is not None)
    if want_churn:
        # The churn probe runs *after* (and outside) the timed repeats:
        # tracemalloc roughly halves throughput, so its run is never the
        # one that produces events/sec.
        record["churn"] = run_churn_probe(params)
    print(json.dumps({"workload": params, "result": record}, indent=2))

    if args.quick:
        out = QUICK_JSON
        if args.clients:  # fleet smoke: keep the default smoke's file
            out = out.with_name(
                f"BENCH_core_throughput_quick_{args.clients}c.json")
        out.parent.mkdir(exist_ok=True)
        out.write_text(json.dumps(
            {"benchmark": "core_throughput_quick", "workload": params,
             "result": record}, indent=2) + "\n")
        print(f"\nquick results -> {out}")
        if not record["all_intact"]:
            print("FAIL: not every connection kept its stream intact",
                  file=sys.stderr)
            return 1
        return (check_floor(record, args.floor)
                or check_churn(record, args.churn_ceiling))

    if args.record:
        append_trajectory(args.record, params, record)
    return (check_floor(record, args.floor)
            or check_churn(record, args.churn_ceiling))


def check_floor(record: dict, floor: "int | None") -> int:
    """The CI perf gate: best-of-N events/sec must clear ``floor``."""
    if floor is not None and record["events_per_sec"] < floor:
        print(f"FAIL: {record['events_per_sec']} events/sec is below the "
              f"perf floor of {floor}", file=sys.stderr)
        return 1
    return 0


def check_churn(record: dict, ceiling: "float | None") -> int:
    """The allocation regression gate: net blocks/event under ``ceiling``."""
    if ceiling is None:
        return 0
    per_event = record["churn"]["net_blocks_per_event"]
    if per_event > ceiling:
        print(f"FAIL: {per_event} net allocated blocks per event exceeds "
              f"the churn ceiling of {ceiling}", file=sys.stderr)
        return 1
    return 0


def append_trajectory(label: str, params: dict, record: dict) -> None:
    data = (json.loads(RESULT_JSON.read_text())
            if RESULT_JSON.exists() else
            {"benchmark": "core_throughput", "workload": params})
    trajectory = seed_trajectory(data)
    trajectory.append(dict(
        label=label,
        date=datetime.date.today().isoformat(),
        cpus=os.cpu_count(), **record))
    RESULT_JSON.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\nrecorded '{label}' -> {RESULT_JSON} "
          f"({len(trajectory)} trajectory entries)")


def run_scaling(args) -> int:
    """Measure every point of the fleet scaling curve."""
    failed = False
    for params in SCALING:
        record = measure(params, repeats=args.repeats)
        print(json.dumps({"workload": params, "result": record}, indent=2))
        failed = failed or not record["all_intact"]
        if args.record:
            suffix = "bcast" if not params["egress_filtering"] else "fleet"
            append_trajectory(
                f"{args.record}@{params['num_clients']}c-{suffix}",
                params, record)
    if failed:
        print("FAIL: not every connection kept its stream intact",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
