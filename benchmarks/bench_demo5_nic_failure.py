"""Demo 5 — NIC failure at the primary (part 1) and at the backup (part 2).

Both parts kill the HB on the IP link while the serial link survives; the
servers disambiguate using HB progress counters and gateway pings
(paper Sec. 4.3).
"""

from repro.faults.faults import NicFailure
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sttcp.events import EventKind

from _util import emit, once


def run_demo5():
    primary_nic = run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.primary.nics[0]),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))
    backup_nic = run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.backup.nics[0]),
        total_bytes=30_000_000, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))
    return primary_nic, backup_nic


def render(primary_nic, backup_nic) -> str:
    def diagnosis(result, engine):
        event = engine.events.first(EventKind.NIC_FAILURE_DETECTED)
        return event.detail.get("symptom", "-") if event else "-"

    rows = [
        ["primary NIC",
         diagnosis(primary_nic, primary_nic.testbed.pair.backup)[:48],
         "backup takes over; primary powered down",
         format_duration(primary_nic.timeline.failover_time_ns),
         "yes" if primary_nic.stream_intact else "NO"],
        ["backup NIC",
         diagnosis(backup_nic, backup_nic.testbed.pair.primary)[:48],
         "primary goes non-FT; backup powered down",
         format_duration(backup_nic.glitch_ns),
         "yes" if backup_nic.stream_intact else "NO"],
    ]
    table = format_table(
        ["failed NIC", "diagnosis", "recovery action",
         "client-visible stall", "stream intact"], rows)
    return "\n".join([banner("Demo 5: NIC failures"), table, "",
                      "Both diagnoses used the serial-link HB exchange "
                      "(IP HB down, serial HB up)."])


def test_demo5_nic_failure(benchmark):
    primary_nic, backup_nic = once(benchmark, run_demo5)
    emit("demo5_nic_failure", render(primary_nic, backup_nic))
    assert primary_nic.stream_intact and backup_nic.stream_intact
    assert primary_nic.testbed.pair.backup.takeover_at is not None
    assert backup_nic.testbed.pair.backup.takeover_at is None
    assert backup_nic.testbed.pair.primary.mode == "non-fault-tolerant"
