"""Ablation A2 (paper Sec. 3) — dual heartbeat links vs the original
single UDP channel.

The motivating bug: with HB over the IP link only, a *backup* NIC failure
silences the HB completely, so the backup concludes the *primary* died,
powers it down, and "takes over" — with a dead NIC, killing the service.
The dual-link design keeps the serial HB alive and diagnoses correctly.
"""

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import NicFailure
from repro.metrics.report import banner, format_table
from repro.scenarios.builder import build_testbed
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig

from _util import emit, once


def run_case(use_serial_hb: bool):
    config = SttcpConfig(use_serial_hb=use_serial_hb)
    tb = build_testbed(seed=9, config=config)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=30_000_000)
    client.start()
    tb.inject.at(seconds(1), NicFailure(tb.backup.nics[0]))
    tb.run_until(60)
    return tb, client


def run_ablation():
    return run_case(True), run_case(False)


def render(dual, single) -> str:
    def describe(tb, client, label):
        wrong = tb.power_strip.was_powered_down("primary")
        return [label,
                "yes" if tb.pair.backup.takeover_at is not None else "no",
                "primary (WRONG)" if wrong else "backup (correct)",
                f"{client.received:,}/{client.total_bytes:,}"]

    rows = [describe(*dual, "dual links (IP + serial)"),
            describe(*single, "single link (UDP only, old design)")]
    table = format_table(
        ["HB design", "backup took over", "server powered down",
         "bytes delivered"], rows)
    return "\n".join([
        banner("Ablation A2: dual vs single heartbeat link"),
        "Injected fault: backup NIC failure.", "", table, "",
        "With one HB channel the deaf backup kills the healthy primary —",
        "exactly the scenario that motivated the serial link (Sec. 3).",
    ])


def test_ablation_dual_hb(benchmark):
    dual, single = once(benchmark, run_ablation)
    emit("ablation_dual_hb", render(dual, single))
    tb_dual, client_dual = dual
    tb_single, _client_single = single
    # Correct behaviour with dual links...
    assert tb_dual.pair.backup.takeover_at is None
    assert not tb_dual.power_strip.was_powered_down("primary")
    assert client_dual.received == client_dual.total_bytes
    # ...and the historical failure mode with a single link.
    assert tb_single.pair.backup.takeover_at is not None
    assert tb_single.power_strip.was_powered_down("primary")
