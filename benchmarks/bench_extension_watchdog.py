"""Extension benchmark — the Sec. 4.2.2 application watchdog.

"To be able to detect application failures under all circumstances ...
an application can support a watchdog mechanism where the application
continually sends a heartbeat to a watchdog.  The watchdog monitors the
application health and informs ST-TCP in case of any failure suspicion."

The gap it closes: an application failure on an *idle* connection leaves
no TCP-layer signal.  This bench hangs the primary's application on an
idle connection with and without the watchdog and measures detection.
"""

from repro.apps.streaming import StreamClient, StreamServer
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds

from _util import emit, once

CRASH_AT_S = 2.0
OBSERVE_S = 20.0


def run_case(with_watchdog: bool):
    tb = build_testbed(seed=31)
    server_p = StreamServer(tb.primary, "srv-p", port=80)
    server_p.start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    if with_watchdog:
        tb.pair.primary.attach_watchdog(server_p, period_ns=millis(100))
    # Complete a small transfer, then leave the connection idle.
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=10_000, close_when_complete=False)
    client.start()
    tb.world.sim.schedule_at(seconds(CRASH_AT_S),
                             lambda: server_p.crash(cleanup=False))
    tb.run_until(OBSERVE_S)
    return tb


def run_bench():
    return run_case(False), run_case(True)


def render(without, with_watchdog) -> str:
    def describe(tb, label):
        takeover = tb.pair.backup.takeover_at
        latency = (takeover - seconds(CRASH_AT_S)) if takeover else None
        return [label,
                "yes" if takeover else f"no (within {OBSERVE_S:.0f}s)",
                format_duration(latency)]

    rows = [describe(without, "TCP-layer detection only (paper base)"),
            describe(with_watchdog, "with application watchdog")]
    table = format_table(
        ["configuration", "idle-app failure detected", "detection latency"],
        rows)
    return "\n".join([
        banner("Extension: application watchdog (Sec. 4.2.2)"),
        "Fault: primary application hangs on an IDLE connection.", "",
        table, "",
        "With no socket activity the AppMaxLag criteria carry no signal;",
        "the watchdog closes exactly the gap the paper describes.",
    ])


def test_extension_watchdog(benchmark):
    without, with_watchdog = once(benchmark, run_bench)
    emit("extension_watchdog", render(without, with_watchdog))
    assert without.pair.backup.takeover_at is None
    assert with_watchdog.pair.backup.takeover_at is not None
