"""Why the kernel is callback-event, not process-per-flow (simpy-style).

Process-based simulation frameworks (simpy being the canonical Python
one) model each flow as a coroutine/generator that ``yield``s timeouts;
the engine wraps every yielded timeout in an event object and resumes
the generator when it fires.  That API is pleasant, but each hop pays
for a generator suspend/resume plus an allocated timeout object on top
of the underlying queue operation.

This microbenchmark makes the comparison concrete *on the same ready
queue*: N concurrent flows each perform M timed hops, implemented

- as plain callbacks on ``repro.sim.core.Simulator`` (the repo's model),
- as generator processes driven by a minimal simpy-style engine built
  on the very same ``Simulator`` (so the queue cost is identical and
  the difference isolates the process-model overhead; no simpy import
  anywhere).

Run ``python benchmarks/bench_event_vs_process.py`` — it prints both
events/sec figures and the ratio quoted in docs/performance.md.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.core import Simulator  # noqa: E402

FLOWS = 2_000
HOPS = 200
DELAY_NS = 50_000


def run_callbacks() -> int:
    """Each flow is a callback that reschedules itself HOPS times."""
    sim = Simulator()
    done = [0]

    def hop(remaining: int) -> None:
        if remaining:
            sim.schedule(DELAY_NS, hop, remaining - 1)
        else:
            done[0] += 1

    for i in range(FLOWS):
        sim.schedule(i, hop, HOPS)
    sim.run()
    assert done[0] == FLOWS
    return sim.events_processed


def run_processes() -> int:
    """Each flow is a generator yielding timeouts, simpy-style."""
    sim = Simulator()
    done = [0]

    class Timeout:
        """What simpy allocates for every ``yield env.timeout(d)``."""
        __slots__ = ("delay",)

        def __init__(self, delay: int):
            self.delay = delay

    def resume(process) -> None:
        try:
            timeout = next(process)
        except StopIteration:
            done[0] += 1
            return
        sim.schedule(timeout.delay, resume, process)

    def flow():
        for _ in range(HOPS):
            yield Timeout(DELAY_NS)

    for i in range(FLOWS):
        sim.schedule(i, resume, flow())
    sim.run()
    assert done[0] == FLOWS
    return sim.events_processed


def measure(fn, repeats: int = 3) -> dict:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - start
        if best is None or wall < best["wall_s"]:
            best = {"events": events, "wall_s": round(wall, 3),
                    "events_per_sec": round(events / wall)}
    return best


def main() -> int:
    callbacks = measure(run_callbacks)
    processes = measure(run_processes)
    ratio = callbacks["events_per_sec"] / processes["events_per_sec"]
    print(json.dumps({
        "flows": FLOWS, "hops": HOPS,
        "callbacks": callbacks,
        "generator_processes": processes,
        "callback_speedup": round(ratio, 2),
    }, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
