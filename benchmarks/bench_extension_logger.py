"""Extension benchmark — the Sec. 4.3 stream logger and the output-commit
problem.

"If the primary crashes while the backup is retrieving missed bytes from
it, the backup has no way of obtaining these bytes, since the primary has
already acked them.  For critical applications, a logger can be added to
the system to address this output commit problem; for other applications,
ST-TCP treats this failure as unrecoverable."

This bench stages exactly that crash window — a loss burst at the backup
followed by a primary crash mid-burst — with and without the logger.
"""

from repro.apps.echo import EchoClient, EchoServer
from repro.faults.faults import HwCrash, TransientLoss
from repro.metrics.report import banner, format_table
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds
from repro.sttcp.events import EventKind

from _util import emit, once


def run_case(with_logger: bool):
    tb = build_testbed(seed=21)
    EchoServer(tb.primary, "e-p", port=80).start()
    EchoServer(tb.backup, "e-b", port=80).start()
    tb.pair.start()
    logger = None
    if with_logger:
        _host, logger = tb.add_logger()
    client = EchoClient(tb.client, "c", tb.service_ip, port=80,
                        message_size=4096, interval_ns=millis(4), count=2000)
    client.start()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.8))
    tb.inject.at(seconds(1) + millis(250), HwCrash(tb.primary))
    tb.run_until(120)
    return tb, client, logger


def run_bench():
    return run_case(False), run_case(True)


def render(without, with_logger) -> str:
    def describe(tb, client, logger, label):
        unrec = len(tb.pair.backup.events.of_kind(EventKind.UNRECOVERABLE))
        return [label,
                "yes" if unrec else "no",
                client.reset_count,
                f"{len(client.rtts_ns)}/{client.count}",
                logger.fetches_served if logger else "-"]

    rows = [describe(*without, "base ST-TCP (no logger)"),
            describe(*with_logger, "with stream logger")]
    table = format_table(
        ["configuration", "declared unrecoverable", "client resets",
         "echoes completed", "logger fetches"], rows)
    return "\n".join([
        banner("Extension: output-commit logger (Sec. 4.3)"),
        "Fault: loss burst at the backup, primary crash mid-recovery.", "",
        table, "",
        "Without a logger the acked-but-missed bytes died with the primary",
        "(the paper's documented unrecoverable case); the logger re-supplies",
        "them and the connection survives the compound failure.",
    ])


def test_extension_logger(benchmark):
    without, with_logger = once(benchmark, run_bench)
    emit("extension_logger", render(without, with_logger))
    tb_no, client_no, _ = without
    tb_yes, client_yes, logger = with_logger
    assert tb_no.pair.backup.events.has(EventKind.UNRECOVERABLE)
    assert client_no.reset_count >= 1
    assert not tb_yes.pair.backup.events.has(EventKind.UNRECOVERABLE)
    assert len(client_yes.rtts_ns) == client_yes.count
    assert logger.fetches_served > 0
