"""Demo 1 — client-transparent seamless failover (vs. the no-ST-TCP
hot-standby baseline).

Paper claim: with ST-TCP the primary's crash "at worst appears as a glitch
to the user"; without it "the failure of the server would lead to a
disruption in the service and the client would have to re-connect".
"""

from repro.faults.faults import HwCrash
from repro.metrics.report import banner, format_duration, format_table
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_baseline_failover, run_failover_experiment

from _util import emit, once

TOTAL = 30_000_000
FAULT_AT_S = 1.0


def run_demo1():
    sttcp = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=TOTAL, fault_at_s=FAULT_AT_S,
        options=RunOptions(seed=3, run_until_s=60))
    baseline = run_baseline_failover(
        total_bytes=TOTAL, fault_at_s=FAULT_AT_S, liveness_timeout_s=2.0,
        options=RunOptions(seed=3, run_until_s=60))
    return sttcp, baseline


def render(sttcp, baseline) -> str:
    rows = [
        ["ST-TCP",
         f"{sttcp.client.received:,}",
         sttcp.client.reset_count,
         0,
         format_duration(sttcp.glitch_ns),
         "yes" if sttcp.stream_intact else "NO"],
        ["hot standby, no ST-TCP",
         f"{baseline.client.received:,}",
         baseline.client.reset_count,
         baseline.client.reconnect_count,
         format_duration(baseline.disruption_ns),
         "n/a (app-level resume)"],
    ]
    table = format_table(
        ["system", "bytes delivered", "resets seen", "reconnects",
         "client-visible outage", "TCP stream intact"], rows)
    timeline = sttcp.timeline
    details = (f"ST-TCP timeline: {timeline.describe()}\n"
               f"  detection latency : "
               f"{format_duration(timeline.detection_latency_ns)}\n"
               f"  backoff residue   : "
               f"{format_duration(timeline.backoff_residue_ns)}\n"
               f"  total failover    : "
               f"{format_duration(timeline.failover_time_ns)}")
    return "\n".join([banner("Demo 1: client-transparent seamless failover"),
                      table, "", details])


def test_demo1_failover(benchmark):
    sttcp, baseline = once(benchmark, run_demo1)
    emit("demo1_failover", render(sttcp, baseline))
    assert sttcp.stream_intact
    assert baseline.client.reconnect_count >= 1
    assert sttcp.glitch_ns < baseline.disruption_ns
