"""Ablation A1 (paper Sec. 3) — new architecture (TCP state exchanged via
HB) vs old architecture (backup also receives all primary→client traffic).

With per-frame CPU cost on the backup, mirroring the primary→client stream
roughly doubles its processing load; the backup lags and is eventually
suspected as failed — "this leads to an overloaded NIC or/and CPU on the
backup server ... the backup starts lagging behind the primary".
"""

from repro.apps.streaming import StreamClient, StreamServer
from repro.metrics.report import banner, format_table
from repro.scenarios.builder import build_testbed

from _util import emit, once

FRAME_COST_NS = 80_000


def run_case(mirror: bool):
    tb = build_testbed(seed=9, mirror_to_backup=mirror,
                       backup_frame_cost_ns=FRAME_COST_NS)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=60_000_000)
    client.start()
    tb.run_until(90)
    return tb, client


def run_ablation():
    return run_case(False), run_case(True)


def render(new_arch, old_arch) -> str:
    def describe(tb, client, label):
        if tb.pair.primary.mode != "fault-tolerant":
            outcome = "backup declared failed"
        elif tb.pair.backup.mode != "fault-tolerant":
            outcome = "backup mistook lag for primary crash"
        else:
            outcome = "stayed fault-tolerant"
        # Utilization over the transfer itself, not the idle tail.
        active_ns = client.completed_at or tb.world.sim.now
        return [label,
                tb.backup.cpu.jobs_run,
                f"{tb.backup.cpu.utilization(active_ns):.0%}",
                outcome,
                f"{client.received:,}"]

    rows = [describe(*new_arch, "new (state via HB)"),
            describe(*old_arch, "old (tap primary->client)")]
    table = format_table(
        ["architecture", "backup frames processed", "backup CPU load",
         "outcome", "bytes delivered"], rows)
    return "\n".join([
        banner("Ablation A1: old vs new ST-TCP architecture"),
        f"backup per-frame CPU cost: {FRAME_COST_NS / 1000:.0f} us", "",
        table, "",
        "Mirroring the primary->client stream overloads the backup's CPU;",
        "it lags and is declared failed — the Sec. 3 problem the HB state",
        "exchange eliminated without extra hardware.",
    ])


def test_ablation_architecture(benchmark):
    new_arch, old_arch = once(benchmark, run_ablation)
    emit("ablation_architecture", render(new_arch, old_arch))
    tb_new, client_new = new_arch
    tb_old, client_old = old_arch
    assert tb_new.pair.primary.mode == "fault-tolerant"
    assert tb_new.pair.backup.mode == "fault-tolerant"
    degraded = (tb_old.pair.primary.mode != "fault-tolerant"
                or tb_old.pair.backup.mode != "fault-tolerant")
    assert degraded
    assert tb_old.backup.cpu.jobs_run > tb_new.backup.cpu.jobs_run
    # The service itself survived in both runs.
    assert client_new.received == client_new.total_bytes
    assert client_old.received == client_old.total_bytes
