"""Demo 3 — insignificant overhead during normal operation.

The paper transfers a ~100 MB file with ST-TCP enabled and disabled and
compares transfer times.
"""

from repro.apps.filetransfer import FileClient, FileServer
from repro.metrics.report import banner, format_table
from repro.scenarios.builder import build_testbed

from _util import emit, once

FILE_SIZE = 100_000_000   # the paper's "about 100 MB"


def transfer(enable_sttcp: bool):
    tb = build_testbed(seed=5, enable_sttcp=enable_sttcp)
    FileServer(tb.primary, "fs-p", port=80).start()
    if enable_sttcp:
        FileServer(tb.backup, "fs-b", port=80).start()
        tb.pair.start()
    target = tb.service_ip if enable_sttcp else tb.addresses.primary_ip
    client = FileClient(tb.client, "client", target, port=80,
                        file_size=FILE_SIZE)
    client.start()
    tb.run_until(60)
    assert client.received == FILE_SIZE and client.corrupt_at is None
    return client


def run_demo3():
    return transfer(True), transfer(False)


def render(with_sttcp, without_sttcp) -> str:
    t_on = with_sttcp.transfer_time_ns
    t_off = without_sttcp.transfer_time_ns
    overhead_pct = (t_on - t_off) / t_off * 100
    rows = [
        ["ST-TCP enabled", f"{t_on / 1e9:.4f} s",
         f"{with_sttcp.throughput_mbps:.1f} Mbps"],
        ["ST-TCP disabled", f"{t_off / 1e9:.4f} s",
         f"{without_sttcp.throughput_mbps:.1f} Mbps"],
    ]
    table = format_table(["configuration", "100 MB transfer time",
                          "goodput"], rows)
    return "\n".join([
        banner("Demo 3: overhead during failure-free operation"),
        table, "",
        f"ST-TCP overhead: {overhead_pct:+.2f}%  "
        f"(paper claim: negligible)",
    ])


def test_demo3_overhead(benchmark):
    with_sttcp, without_sttcp = once(benchmark, run_demo3)
    emit("demo3_overhead", render(with_sttcp, without_sttcp))
    overhead = (with_sttcp.transfer_time_ns
                - without_sttcp.transfer_time_ns) / without_sttcp.transfer_time_ns
    assert overhead < 0.02
