"""Table 1 row 5 — temporary network failure and missed-byte recovery.

The backup misses client bytes during a loss burst and retrieves them from
the primary's extra receive buffer; under sustained overload the primary
instead declares the backup failed (paper Sec. 4.3).
"""

from repro.apps.echo import EchoClient, EchoServer
from repro.faults.faults import TransientLoss
from repro.metrics.report import banner, format_table
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds
from repro.sttcp.events import EventKind

from _util import emit, once


def run_case(interval_ms: int, count: int, config=None):
    tb = build_testbed(seed=11, config=config)
    EchoServer(tb.primary, "echo-p", port=80).start()
    EchoServer(tb.backup, "echo-b", port=80).start()
    tb.pair.start()
    client = EchoClient(tb.client, "client", tb.service_ip, port=80,
                        message_size=4096, interval_ns=millis(interval_ms),
                        count=count)
    client.start()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.7))
    tb.run_until(60)
    return tb, client


def run_row5():
    from repro.sttcp.config import SttcpConfig

    moderate = run_case(interval_ms=8, count=1500)   # ~4 Mbps upload
    # "Unable to catch up": a deployment with a small extra receive buffer
    # and a slow fetch pipeline, hit by a fast upload.
    overload = run_case(
        interval_ms=2, count=3000,
        config=SttcpConfig(retain_buffer_bytes=786432,
                           fetch_max_bytes_per_round=16384,
                           fetch_round_interval_ns=millis(200)))
    return moderate, overload


def render(moderate, overload) -> str:
    def describe(tb, client, label):
        events = tb.pair.backup.events
        return [label,
                len(events.of_kind(EventKind.FETCH_REQUESTED)),
                len(events.of_kind(EventKind.FETCH_RECOVERED)),
                tb.pair.primary.mode,
                f"{len(client.rtts_ns)}/{client.count}"]

    tb_m, client_m = moderate
    tb_o, client_o = overload
    rows = [describe(tb_m, client_m, "moderate upload (4 Mbps)"),
            describe(tb_o, client_o,
                     "16 Mbps upload, slow fetch, small retain")]
    table = format_table(
        ["client upload", "fetch rounds", "chunks recovered",
         "primary mode after", "echoes completed"], rows)
    return "\n".join([
        banner("Table 1 row 5: temporary network failure at the backup"),
        table, "",
        "Moderate loss: the backup requests and receives missed bytes and",
        "the pair stays fault-tolerant.  Under sustained overload the",
        "backup cannot catch up and the primary (correctly, per Sec. 4.3)",
        "declares it failed and runs non-fault-tolerant.",
    ])


def test_table1_row5_recovery(benchmark):
    moderate, overload = once(benchmark, run_row5)
    emit("table1_row5_recovery", render(moderate, overload))
    tb_m, client_m = moderate
    tb_o, client_o = overload
    assert tb_m.pair.backup.events.has(EventKind.FETCH_RECOVERED)
    assert tb_m.pair.primary.mode == "fault-tolerant"
    assert tb_o.pair.primary.mode == "non-fault-tolerant"
    assert len(client_m.rtts_ns) == client_m.count
    assert len(client_o.rtts_ns) == client_o.count
