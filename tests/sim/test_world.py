"""Tests for the World container."""

from repro.sim.core import seconds
from repro.sim.world import World


def test_world_bundles_services():
    world = World(seed=5)
    assert world.rng.seed == 5
    assert world.now == 0
    world.trace.record("sim", "test", "hello")
    assert len(world.trace) == 1
    assert world.trace.records[0].time == 0


def test_run_and_run_for():
    world = World()
    fired = []
    world.sim.schedule(seconds(1), fired.append, 1)
    world.run_for(seconds(2))
    assert fired == [1]
    assert world.now == seconds(2)
    assert world.now_s == 2.0


def test_trace_clock_follows_sim():
    world = World()
    world.sim.schedule(100, lambda: world.trace.record("sim", "t", "later"))
    world.run()
    assert world.trace.records[0].time == 100


def test_trace_category_restriction():
    world = World(trace_categories={"fault"})
    world.trace.record("tcp", "x", "dropped")
    world.trace.record("fault", "x", "kept")
    assert len(world.trace) == 1
