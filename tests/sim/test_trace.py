"""Unit tests for the structured trace log."""

from repro.sim.core import Simulator
from repro.sim.trace import TraceLog


def make_log(enabled=None):
    sim = Simulator()
    return sim, TraceLog(lambda: sim.now, enabled_categories=enabled)


def test_records_carry_time_and_fields():
    sim, log = make_log()
    sim.schedule(100, lambda: log.record("tcp", "conn1", "sent", seq=5))
    sim.run()
    assert len(log) == 1
    record = log.records[0]
    assert record.time == 100
    assert record.category == "tcp"
    assert record.fields == {"seq": 5}


def test_category_filtering_drops_unlisted():
    _sim, log = make_log(enabled={"hb"})
    log.record("tcp", "x", "dropped")
    log.record("hb", "x", "kept")
    assert len(log) == 1
    assert log.records[0].category == "hb"


def test_filter_by_category_source_contains():
    _sim, log = make_log()
    log.record("tcp", "a", "sent data")
    log.record("tcp", "b", "sent data")
    log.record("hb", "a", "heartbeat out")
    assert len(log.filter(category="tcp")) == 2
    assert len(log.filter(source="a")) == 2
    assert len(log.filter(contains="heartbeat")) == 1
    assert len(log.filter(category="tcp", source="a")) == 1


def test_first_and_last():
    _sim, log = make_log()
    log.record("x", "s", "one")
    log.record("x", "s", "two")
    assert log.first(category="x").message == "one"
    assert log.last(category="x").message == "two"
    assert log.first(category="zzz") is None


def test_subscribe_sees_live_records():
    _sim, log = make_log()
    seen = []
    log.subscribe(seen.append)
    log.record("x", "s", "hello")
    assert len(seen) == 1


def test_set_enabled_categories_at_runtime():
    _sim, log = make_log()
    log.record("tcp", "s", "kept")
    log.set_enabled_categories({"hb"})
    log.record("tcp", "s", "dropped")
    assert len(log) == 1


def test_str_rendering_includes_fields():
    _sim, log = make_log()
    log.record("tcp", "conn", "sent", seq=3)
    text = str(log.records[0])
    assert "seq=3" in text and "tcp" in text


def test_dump_filters():
    _sim, log = make_log()
    log.record("a", "s", "m1")
    log.record("b", "s", "m2")
    assert "m1" in log.dump(category="a")
    assert "m2" not in log.dump(category="a")
