"""Unit tests for the deterministic RNG registry."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(seed=1)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_reproducible_across_registries():
    r1 = RngRegistry(seed=42)
    r2 = RngRegistry(seed=42)
    assert [r1.stream("x").random() for _ in range(5)] == \
           [r2.stream("x").random() for _ in range(5)]


def test_different_names_are_independent():
    registry = RngRegistry(seed=42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_request_order_does_not_matter():
    r1 = RngRegistry(seed=7)
    r2 = RngRegistry(seed=7)
    a1 = r1.stream("a")
    r1.stream("b")
    r2.stream("b")
    a2 = r2.stream("a")
    assert [a1.random() for _ in range(3)] == [a2.random() for _ in range(3)]


def test_different_seeds_differ():
    assert RngRegistry(seed=1).stream("x").random() != \
           RngRegistry(seed=2).stream("x").random()


def test_seed_property():
    assert RngRegistry(seed=99).seed == 99
