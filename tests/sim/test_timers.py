"""Unit tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.core import Simulator
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(100)
    sim.run()
    assert fired == [100]
    assert not timer.armed


def test_timer_restart_replaces_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(100)
    sim.run(until=50)
    timer.restart(100)  # now due at 150
    sim.run()
    assert fired == [150]


def test_timer_stop_prevents_fire():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(100)
    timer.stop()
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_stop_is_idempotent():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.stop()
    timer.stop()


def test_timer_deadline_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.deadline is None
    timer.start(100)
    assert timer.deadline == 100
    timer.stop()
    assert timer.deadline is None


def test_timer_can_rearm_from_callback():
    sim = Simulator()
    fired = []
    holder = {}

    def tick():
        fired.append(sim.now)
        if len(fired) < 3:
            holder["timer"].start(10)

    holder["timer"] = Timer(sim, tick)
    holder["timer"].start(10)
    sim.run()
    assert fired == [10, 20, 30]


def test_periodic_timer_ticks_at_period():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100)
    timer.start()
    sim.run(until=450)
    timer.stop()
    assert ticks == [100, 200, 300, 400]


def test_periodic_fire_immediately():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100)
    timer.start(fire_immediately=True)
    sim.run(until=250)
    timer.stop()
    assert ticks == [0, 100, 200]


def test_periodic_stop_halts_ticks():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100)
    timer.start()
    sim.run(until=250)
    timer.stop()
    sim.run(until=1000)
    assert ticks == [100, 200]
    assert not timer.running


def test_periodic_reschedule_takes_effect_next_tick():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100)
    timer.start()
    sim.run(until=150)
    timer.reschedule(50)
    sim.run(until=320)
    timer.stop()
    # tick at 100 (old period), then 200 (scheduled before change), then 250, 300
    assert ticks == [100, 200, 250, 300]


def test_periodic_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, lambda: None, period=0)
    timer = PeriodicTimer(sim, lambda: None, period=10)
    with pytest.raises(ValueError):
        timer.reschedule(-5)


def test_periodic_restart_resets_phase():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=100)
    timer.start()
    sim.run(until=150)
    timer.start()  # restart at t=150: next ticks 250, 350...
    sim.run(until=400)
    timer.stop()
    assert ticks == [100, 250, 350]


def test_periodic_reschedule_immediate_rearms_pending_deadline():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=1000)
    timer.start()                        # first tick would land at t=1000

    def change():
        timer.reschedule(200, immediate=True)

    sim.schedule(100, change)
    sim.run(until=800)
    timer.stop()
    # Re-armed at t=100: ticks at 300, 500, 700 — the stale 1000 ns
    # deadline never fires.
    assert ticks == [300, 500, 700]
    assert timer.period == 200


def test_periodic_reschedule_immediate_on_stopped_timer():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, lambda: ticks.append(sim.now), period=1000)
    timer.reschedule(250, immediate=True)    # not running: just store it
    assert not timer.running
    timer.start()
    sim.run(until=600)
    timer.stop()
    assert ticks == [250, 500]
