"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator, micros, millis, seconds


def test_time_helpers_are_exact_integers():
    assert seconds(1) == 1_000_000_000
    assert millis(1) == 1_000_000
    assert micros(1) == 1_000
    assert seconds(0.5) == 500_000_000
    assert isinstance(seconds(0.1), int)


def test_initial_time_is_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.now_s == 0.0


def test_schedule_and_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_timestamp_is_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(100, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_zero_delay_runs_after_already_queued_same_instant():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, order.append, "nested")

    sim.schedule(0, first)
    sim.schedule(0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "nested"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.schedule(300, fired.append, 2)
    sim.run(until=200)
    assert fired == [1]
    assert sim.now == 200  # advanced to the boundary even with queue empty
    sim.run(until=400)
    assert fired == [1, 2]


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run_for(500)
    assert sim.now == 500
    sim.run_for(250)
    assert sim.now == 750


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, 1)
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled
    assert not handle.fired


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, 1)
    sim.run()
    assert handle.fired
    handle.cancel()  # harmless
    assert fired == [1]


def test_handle_pending_lifecycle():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    assert handle.pending
    sim.run()
    assert not handle.pending
    assert handle.fired


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_float_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(1.5, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    results = []

    def chain(n):
        results.append(n)
        if n < 5:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert results == [0, 1, 2, 3, 4, 5]
    assert sim.now == 50


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, fired.append, i)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    h1.cancel()
    assert sim.peek_next_time() == 20


def test_pending_events_counts_live_only():
    sim = Simulator()
    h1 = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    h1.cancel()
    assert sim.pending_events == 1


def test_run_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, reenter)
    sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_exceptions_propagate():
    sim = Simulator()

    def boom():
        raise RuntimeError("bug in protocol code")

    sim.schedule(1, boom)
    with pytest.raises(RuntimeError):
        sim.run()


def test_cancel_churn_compacts_queue_tombstones():
    # Arm/cancel churn (a restarted retransmission timer) must not grow
    # the heap without bound: cancelled entries are compacted away once
    # they outnumber live ones in a non-trivial queue.
    sim = Simulator()
    live = sim.schedule(10_000_000, lambda: None)
    handle = None
    for _ in range(10_000):
        if handle is not None:
            handle.cancel()
        handle = sim.schedule(1_000_000, lambda: None)
    assert sim.queue_size <= 2 * Simulator.COMPACT_MIN_QUEUE
    assert sim.pending_events == 2
    assert live.pending and handle.pending


def test_compaction_preserves_order_and_fires_live_events():
    sim = Simulator()
    fired = []
    # Interleave live events with churned-and-cancelled ones so the
    # rebuilt heap must keep (time, insertion-order) ordering intact.
    for i in range(200):
        sim.schedule(1000 + i, fired.append, i)
        sim.schedule(500, lambda: None).cancel()
    sim.run()
    assert fired == list(range(200))
    assert sim._cancelled_in_queue == 0


def test_cancel_after_fire_does_not_corrupt_tombstone_count():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    sim.run(until=20)
    assert handle.fired
    handle.cancel()                      # no-op: already fired
    assert not handle.cancelled
    assert sim._cancelled_in_queue == 0
    handle2 = sim.schedule(30, lambda: None)
    handle2.cancel()
    handle2.cancel()                     # idempotent: counted once
    assert sim._cancelled_in_queue == 1
    sim.run(until=60)                    # pops the tombstone at t=50
    assert sim._cancelled_in_queue == 0


def test_small_queues_are_not_compacted():
    # Below COMPACT_MIN_QUEUE lazy deletion is cheaper than rebuilding.
    sim = Simulator()
    handles = [sim.schedule(100 + i, lambda: None) for i in range(10)]
    for h in handles:
        h.cancel()
    assert sim.queue_size == 10
    assert sim.pending_events == 0
