"""GC orchestration (`repro.sim.gcctl`): freeze/thaw, quiesce, stats.

The module's contract is behavioural, so the tests drive the real
CPython collector: freezing exempts the baseline graph from collection,
thawing reclaims it, quiesce suspends cyclic collection for exactly the
duration of the (possibly nested) drive and restores the prior state.
"""

import gc

import pytest

from repro.sim import gcctl


@pytest.fixture(autouse=True)
def restore_collector():
    """Whatever a test does, the collector leaves enabled and unfrozen."""
    yield
    gc.unfreeze()
    if not gc.isenabled():
        gc.enable()


class _Node:
    """A self-referencing object: dies only by cyclic collection."""

    def __init__(self):
        self.me = self


def test_freeze_baseline_exempts_survivors_from_collection():
    node = _Node()
    frozen = gcctl.freeze_baseline()
    assert frozen >= 1
    assert gc.get_freeze_count() == frozen
    # The frozen cycle is invisible to a full collect while referenced...
    del node
    # ...and even a dead frozen cycle stays pinned until a thaw.
    before = gc.get_freeze_count()
    gc.collect()
    assert gc.get_freeze_count() == before


def test_thaw_baseline_reclaims_dead_frozen_graphs():
    node = _Node()
    gcctl.freeze_baseline()
    del node
    gcctl.thaw_baseline()
    assert gc.get_freeze_count() == 0


def test_quiesce_disables_cyclic_collection_inside_only():
    assert gc.isenabled()
    with gcctl.quiesce():
        assert not gc.isenabled()
    assert gc.isenabled()


def test_quiesce_nests_as_one_suspension():
    with gcctl.quiesce():
        with gcctl.quiesce():
            assert not gc.isenabled()
        # Inner exit must NOT re-enable: the outer drive is still going.
        assert not gc.isenabled()
    assert gc.isenabled()


def test_quiesce_respects_a_collector_already_disabled():
    gc.disable()
    with gcctl.quiesce():
        assert not gc.isenabled()
    assert not gc.isenabled()   # restored to what the caller had
    gc.enable()


def test_quiesce_runs_bounded_collect_past_threshold():
    before = gcctl.stats()["safe_point_collects"]
    junk = []
    with gcctl.quiesce():
        # Pile up live container allocations past the safe-point
        # threshold (they must survive to the exit: freed objects
        # decrement the pending gen-0 count again).
        junk.extend([i] for i in range(gcctl.YOUNG_COLLECT_THRESHOLD + 100))
    assert gcctl.stats()["safe_point_collects"] == before + 1


def test_quiesce_skips_collect_below_threshold():
    gc.collect()                 # drain pending counts first
    before = gcctl.stats()["safe_point_collects"]
    with gcctl.quiesce():
        pass
    assert gcctl.stats()["safe_point_collects"] == before


def test_collect_full_is_counted():
    before = gcctl.stats()["manual_collects"]
    gcctl.collect_full()
    assert gcctl.stats()["manual_collects"] == before + 1


def test_stats_shape():
    stats = gcctl.stats()
    assert set(stats) >= {"enabled", "counts", "frozen", "frozen_baseline",
                          "manual_collects", "safe_point_collects",
                          "collections", "collected", "pools"}
    assert set(stats["pools"]) == {"frame_pool", "packet_pool",
                                   "segment_pool"}


def test_world_run_drives_under_quiesce():
    from repro.sim.world import World

    world = World(seed=1)
    seen = {}

    def probe():
        seen["enabled"] = gc.isenabled()

    world.sim.post(1_000, probe)
    world.run_for(2_000)        # duration is in nanoseconds
    assert seen["enabled"] is False   # the drive ran quiesced
    assert gc.isenabled()             # and restored the collector
