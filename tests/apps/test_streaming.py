"""Tests for the streaming server/client pair (the paper's demo app)."""

from repro.apps.base import pattern_bytes
from repro.apps.streaming import StreamClient, StreamServer
from repro.metrics.monitor import ClientStreamMonitor
from repro.sim.core import seconds


def serve(lan, **server_kwargs):
    server = StreamServer(lan.hosts[0], "server", port=80, **server_kwargs)
    server.start()
    return server


def test_basic_request_response(lan):
    server = serve(lan)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=100_000)
    client.start()
    lan.world.run(until=seconds(10))
    assert client.received == 100_000
    assert client.corrupt_at is None
    assert client.completed_at is not None
    assert server.bytes_served == 100_000


def test_chunked_requests(lan):
    serve(lan)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=100_000, request_chunk=10_000)
    client.start()
    lan.world.run(until=seconds(10))
    assert client.received == 100_000
    assert client.corrupt_at is None


def test_response_offsets_continue_across_requests(lan):
    """Chunked responses are one continuous pattern stream, so byte 50_000
    is identical whether requested in one GET or five."""
    serve(lan)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=50_000, request_chunk=10_000)
    client.start()
    lan.world.run(until=seconds(10))
    assert client.corrupt_at is None   # verify_pattern checked continuity


def test_two_servers_emit_identical_streams(lan3):
    """Determinism prerequisite of ST-TCP (paper Sec. 2): same input ->
    byte-identical output."""
    StreamServer(lan3.hosts[0], "s0", port=80).start()
    StreamServer(lan3.hosts[1], "s1", port=80).start()
    results = []
    for idx in range(2):
        client = StreamClient(lan3.hosts[2], f"c{idx}", lan3.ip(idx),
                              port=80, total_bytes=30_000)
        client.start()
    lan3.world.run(until=seconds(10))
    # Both clients verified the same deterministic pattern: no corruption.
    # (verify_pattern() inside the clients checks byte equality.)


def test_close_when_done_mode(lan):
    serve(lan, close_when_done=True)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=10_000, close_when_complete=False)
    client.start()
    lan.world.run(until=seconds(10))
    assert client.received == 10_000
    # Server closed the connection after the transfer.
    assert client.sock.connection.peer_fin_consumed


def test_malformed_request_ignored(lan):
    server = serve(lan)
    sock = lan.hosts[1].tcp.connect(lan.ip(0), 80)
    sock.send(b"BOGUS request\n")
    sock.send(b"GET notanumber\n")
    lan.world.run(until=seconds(5))
    assert server.bytes_served == 0


def test_split_request_line_reassembled(lan):
    server = serve(lan)
    received = []
    sock = lan.hosts[1].tcp.connect(lan.ip(0), 80)
    sock.on_data = lambda s: received.append(s.read())
    sock.on_connected = lambda s: s.send(b"GET 10")
    lan.world.run(until=seconds(1))
    sock.send(b"00\n")    # completes "GET 1000\n"
    lan.world.run(until=seconds(5))
    assert sum(len(r) for r in received) == 1000


def test_monitor_records_progress(lan):
    serve(lan)
    monitor = ClientStreamMonitor(lan.world)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=50_000, monitor=monitor)
    client.start()
    lan.world.run(until=seconds(10))
    assert monitor.total_bytes == 50_000
    assert monitor.events_of("connected")
    assert monitor.events_of("complete")
    assert client.progress == 1.0


def test_crashed_server_stops_serving(lan):
    server = serve(lan)
    client = StreamClient(lan.hosts[1], "client", lan.ip(0), port=80,
                          total_bytes=10_000_000)
    client.start()
    lan.world.run(until=seconds(0.2))
    server.crash(cleanup=False)
    received_at_crash = client.received
    lan.world.run(until=seconds(3))
    # A hung server sends (almost) nothing more: only data already in the
    # TCP send buffer drains.
    assert client.received <= received_at_crash + 65536
