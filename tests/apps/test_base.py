"""Tests for the deterministic payload pattern."""

from repro.apps.base import pattern_bytes, verify_pattern


def test_pattern_is_pure_function_of_offset():
    assert pattern_bytes(100, 50) == pattern_bytes(100, 50)
    # Concatenation property: two adjacent ranges form the longer range.
    assert pattern_bytes(0, 100) == pattern_bytes(0, 40) + pattern_bytes(40, 60)


def test_pattern_differs_by_offset():
    assert pattern_bytes(0, 100) != pattern_bytes(1, 100)


def test_verify_accepts_correct_data():
    assert verify_pattern(1234, pattern_bytes(1234, 500)) == -1


def test_verify_reports_first_corruption():
    data = bytearray(pattern_bytes(0, 100))
    data[42] ^= 0xFF
    assert verify_pattern(0, bytes(data)) == 42


def test_verify_empty():
    assert verify_pattern(0, b"") == -1


def test_zero_length():
    assert pattern_bytes(10, 0) == b""
    assert pattern_bytes(10, -5) == b""
