"""Tests for the application watchdog (paper Sec. 4.2.2 extension)."""

from repro.apps.watchdog import ApplicationWatchdog
from repro.host.app import Application
from repro.sim.core import millis, seconds


class Dummy(Application):
    def __init__(self, host):
        super().__init__(host, "dummy")


def test_healthy_app_never_suspected(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    suspicions = []
    wd = ApplicationWatchdog(lan.world, app, suspicions.append,
                             period_ns=millis(100), miss_threshold=3)
    wd.start()
    lan.world.run(until=seconds(5))
    assert suspicions == []
    assert not wd.suspicious


def test_hung_app_is_suspected(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    suspicions = []
    wd = ApplicationWatchdog(lan.world, app, suspicions.append,
                             period_ns=millis(100), miss_threshold=3)
    wd.start()
    lan.world.run(until=seconds(1))
    app.crash(cleanup=False)
    lan.world.run(until=seconds(2))
    assert suspicions == [app]
    assert wd.suspicious


def test_detection_latency_is_threshold_periods(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    when = []
    wd = ApplicationWatchdog(lan.world, app,
                             lambda a: when.append(lan.world.sim.now),
                             period_ns=millis(100), miss_threshold=3)
    wd.start()
    lan.world.run(until=seconds(1))
    app.crash(cleanup=False)
    lan.world.run(until=seconds(3))
    latency = when[0] - seconds(1)
    assert millis(300) <= latency <= millis(500)


def test_fires_exactly_once(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    suspicions = []
    wd = ApplicationWatchdog(lan.world, app, suspicions.append,
                             period_ns=millis(100))
    wd.start()
    app.crash(cleanup=False)
    lan.world.run(until=seconds(5))
    assert len(suspicions) == 1


def test_manual_pet_mode(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    suspicions = []
    wd = ApplicationWatchdog(lan.world, app, suspicions.append,
                             period_ns=millis(100), miss_threshold=3,
                             auto_pet=False)
    wd.start()
    # Nobody pets: suspicion even though the app object is alive.
    lan.world.run(until=seconds(2))
    assert len(suspicions) == 1


def test_stop_cancels_monitoring(lan):
    app = Dummy(lan.hosts[0])
    app.start()
    suspicions = []
    wd = ApplicationWatchdog(lan.world, app, suspicions.append,
                             period_ns=millis(100))
    wd.start()
    wd.stop()
    app.crash(cleanup=False)
    lan.world.run(until=seconds(5))
    assert suspicions == []


def test_bad_threshold_rejected(lan):
    import pytest
    app = Dummy(lan.hosts[0])
    with pytest.raises(ValueError):
        ApplicationWatchdog(lan.world, app, lambda a: None, miss_threshold=0)
