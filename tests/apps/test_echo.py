"""Tests for the echo server/client pair."""

from repro.apps.echo import EchoClient, EchoServer
from repro.sim.core import millis, seconds


def test_echo_roundtrips(lan):
    EchoServer(lan.hosts[0], "server", port=7).start()
    done = []
    client = EchoClient(lan.hosts[1], "client", lan.ip(0), port=7,
                        message_size=64, interval_ns=millis(10), count=20,
                        on_complete=lambda: done.append(True))
    client.start()
    lan.world.run(until=seconds(5))
    assert done == [True]
    assert len(client.rtts_ns) == 20
    assert client.mean_rtt_ns is not None
    assert client.mean_rtt_ns < millis(5)  # LAN RTT


def test_echo_preserves_byte_count_under_load(lan):
    server = EchoServer(lan.hosts[0], "server", port=7)
    server.start()
    client = EchoClient(lan.hosts[1], "client", lan.ip(0), port=7,
                        message_size=8192, interval_ns=millis(1), count=200)
    client.start()
    lan.world.run(until=seconds(30))
    assert server.bytes_echoed == 8192 * 200
    assert len(client.rtts_ns) == 200


def test_echo_server_handles_concurrent_clients(lan3):
    EchoServer(lan3.hosts[0], "server", port=7).start()
    clients = []
    for i in range(3):
        c = EchoClient(lan3.hosts[1], f"c{i}", lan3.ip(0), port=7,
                       message_size=100, interval_ns=millis(5), count=10)
        c.start()
        clients.append(c)
    lan3.world.run(until=seconds(5))
    assert all(len(c.rtts_ns) == 10 for c in clients)


def test_rtt_grows_with_bottleneck(world):
    from tests.conftest import make_lan
    lan = make_lan(world, bandwidth_bps=1_000_000)  # 1 Mbps: slow
    EchoServer(lan.hosts[0], "server", port=7).start()
    client = EchoClient(lan.hosts[1], "client", lan.ip(0), port=7,
                        message_size=4096, interval_ns=millis(50), count=5)
    client.start()
    lan.world.run(until=seconds(10))
    # 2 x 4096B at 1Mbps is ~65ms serialization alone.
    assert client.mean_rtt_ns > millis(50)
