"""Tests for the key-value store application."""

from repro.apps.kvstore import KvClient, KvServer
from repro.sim.core import millis, seconds


def test_basic_operations(lan):
    KvServer(lan.hosts[0], "kv", port=6379).start()
    client = KvClient(lan.hosts[1], "c", lan.ip(0), commands=[
        b"SET a 1", b"GET a", b"DEL a", b"GET a", b"KEYS"])
    client.start()
    lan.world.run(until=seconds(5))
    assert client.replies == [b"OK", b"VALUE 1", b"OK", b"MISSING",
                              b"COUNT 0"]


def test_state_accumulates(lan):
    server = KvServer(lan.hosts[0], "kv", port=6379)
    server.start()
    commands = [b"SET k%d v%d" % (i, i) for i in range(20)] + [b"KEYS"]
    client = KvClient(lan.hosts[1], "c", lan.ip(0), commands=commands)
    client.start()
    lan.world.run(until=seconds(5))
    assert client.replies[-1] == b"COUNT 20"
    assert server.store[b"k7"] == b"v7"


def test_errors_are_deterministic(lan):
    KvServer(lan.hosts[0], "kv", port=6379).start()
    client = KvClient(lan.hosts[1], "c", lan.ip(0), commands=[
        b"", b"BOGUS x", b"SET onlykey", b"GET"])
    client.start()
    lan.world.run(until=seconds(5))
    assert all(reply.startswith(b"ERR") for reply in client.replies)


def test_two_replicas_reach_identical_state(lan3):
    s0 = KvServer(lan3.hosts[0], "kv0", port=6379)
    s1 = KvServer(lan3.hosts[1], "kv1", port=6379)
    s0.start()
    s1.start()
    commands = [b"SET x 1", b"SET y 2", b"DEL x", b"SET z 3"]
    KvClient(lan3.hosts[2], "c0", lan3.ip(0), commands=commands).start()
    KvClient(lan3.hosts[2], "c1", lan3.ip(1), commands=commands).start()
    lan3.world.run(until=seconds(5))
    assert s0.store == s1.store == {b"y": b"2", b"z": b"3"}


def test_kv_state_survives_sttcp_failover():
    """The stateful-service headline: keys written before the crash are
    readable from the (former) backup after failover, on the SAME
    connection."""
    from repro.faults.faults import HwCrash
    from repro.scenarios.builder import build_testbed
    from repro.sim.core import seconds as s

    tb = build_testbed(seed=41)
    primary_kv = KvServer(tb.primary, "kv-p", port=80)
    backup_kv = KvServer(tb.backup, "kv-b", port=80)
    primary_kv.start()
    backup_kv.start()
    tb.pair.start()
    commands = ([b"SET k%d v%d" % (i, i) for i in range(50)]
                + [b"GET k25", b"KEYS"]
                + [b"GET k%d" % i for i in range(50)])
    client = KvClient(tb.client, "c", tb.service_ip, port=80,
                      commands=commands, interval_ns=millis(20))
    client.start()
    # The writes take 50*20ms = 1s; crash right after them.
    tb.inject.at(s(1.2), HwCrash(tb.primary))
    tb.run_until(60)
    assert client.reset_count == 0
    assert client.done
    assert client.replies[50] == b"VALUE v25"
    assert client.replies[51] == b"COUNT 50"
    # Every key written to the dead primary is served by the backup.
    assert client.replies[52:] == [b"VALUE v%d" % i for i in range(50)]
    assert backup_kv.store == {b"k%d" % i: b"v%d" % i for i in range(50)}
