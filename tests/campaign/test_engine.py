"""The multiprocess engine: determinism, fault tolerance, no deadlocks.

The hostile scenarios (hangs, worker crashes) register throwaway
scenarios; workers are forked, so registrations made before
``run_campaign`` is visible to them.  Faulty-worker tests use ``fork``
explicitly — they are Linux/CI-shaped by design.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign import (CampaignSpec, TrialSpec, derive_seed,
                            execute_trial, register_scenario, run_campaign)
from repro.campaign.engine import _percentile_summary
from repro.scenarios.options import RunOptions

# One small-but-real failover campaign shared by the determinism tests:
# the stream spans the fault (2 MB at 100 Mbps ≈ 160 ms, fault at 100 ms)
# so failover time / goodput are exercised, yet a trial stays ~0.3 s.
SMALL = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 2_000_000, "fault_at_s": 0.1},
    grid={"hb_period_ms": [100, 200]},
    trials=2, seed=7,
    options=RunOptions(run_until_s=6.0),
    timeout_s=120.0)


def test_aggregated_json_is_byte_identical_across_jobs():
    # The tentpole property: worker count and scheduling order are
    # invisible in the canonical aggregate.
    serial = run_campaign(SMALL, jobs=1)
    fanned = run_campaign(SMALL, jobs=4)
    assert serial.to_json() == fanned.to_json()
    assert serial.to_jsonl() == fanned.to_jsonl()
    assert [r["status"] for r in serial.records] == ["ok"] * 4
    assert all(r["stream_intact"] for r in serial.records)


def test_trial_record_identical_in_process_and_in_worker():
    # Seed derivation + record construction must not depend on which
    # process runs the trial.
    trial = TrialSpec(scenario="failover",
                      params={"total_bytes": 2_000_000, "fault_at_s": 0.1,
                              "hb_period_ms": 100},
                      options=RunOptions(run_until_s=6.0),
                      seed=derive_seed(7, 0), index=0)
    in_process = execute_trial(trial)

    spec = CampaignSpec(scenario="failover",
                        base=dict(trial.params), trials=1, seed=7,
                        options=RunOptions(run_until_s=6.0),
                        timeout_s=120.0)
    in_worker = run_campaign(spec, jobs=2).records[0]
    assert in_process == in_worker


def test_summary_percentiles_and_grid_breakdown():
    result = run_campaign(SMALL, jobs=1)
    summary = result.summary()
    assert summary["trials"] == 4 and summary["ok"] == 4
    assert summary["intact"] == 4
    assert summary["failover_time_ns"]["n"] == 4
    assert summary["goodput_bytes_per_s"]["p50"] > 0
    points = summary["by_point"]
    assert [p["point"] for p in points] == [{"hb_period_ms": 100},
                                            {"hb_period_ms": 200}]
    assert all(p["trials"] == 2 and p["ok"] == 2 for p in points)


def test_percentile_summary_is_nearest_rank():
    values = list(range(1, 101))
    summary = _percentile_summary(values)
    assert summary == {"n": 100, "min": 1, "max": 100, "mean": 50.5,
                       "p50": 51, "p90": 90, "p99": 99}
    assert _percentile_summary([None, None]) is None
    assert _percentile_summary([5, None]) == {
        "n": 1, "min": 5, "max": 5, "mean": 5.0,
        "p50": 5, "p90": 5, "p99": 5}


# ------------------------------------------------------- hostile scenarios

def _hostile(trial: TrialSpec) -> dict:
    """Scenario that hangs, dies, or succeeds on command.

    ``die_once_flag`` names a file: on the first attempt (flag absent)
    the worker creates it and dies without returning — the retry then
    succeeds, proving a killed trial is re-dispatched.
    """
    mode = trial.params.get("mode", "ok")
    if mode == "hang":
        time.sleep(60.0)
    elif mode == "crash":
        os._exit(13)
    elif mode == "die_once":
        flag = trial.params["die_once_flag"]
        if not os.path.exists(flag):
            with open(flag, "w", encoding="ascii"):
                pass
            os._exit(13)
    return {"index": trial.index, "scenario": trial.scenario,
            "seed": trial.seed, "params": dict(trial.params),
            "status": "ok", "error": None, "oracle": "off",
            "value": trial.index * 10}


register_scenario("test_hostile", _hostile)

fork_only = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs a fork start method")


@fork_only
def test_hung_trial_is_killed_and_campaign_continues():
    spec = CampaignSpec(
        scenario="test_hostile",
        grid={"mode": ["ok", "hang", "ok"]},
        trials=1, seed=1, timeout_s=1.0, retries=0)
    start = time.monotonic()
    result = run_campaign(spec, jobs=2, mp_context="fork")
    assert time.monotonic() - start < 30.0     # never deadlocks the pool
    by_mode = {r["params"]["mode"]: r for r in result.records}
    assert by_mode["ok"]["status"] == "ok"
    assert by_mode["hang"]["status"] == "failed"
    assert "timed out" in by_mode["hang"]["error"]
    assert any("timed out" in line for line in result.dispatch_log)


@fork_only
def test_crashed_worker_is_respawned_and_trial_marked_failed():
    spec = CampaignSpec(
        scenario="test_hostile",
        grid={"mode": ["crash", "ok", "ok", "ok"]},
        trials=1, seed=1, timeout_s=30.0, retries=1)
    result = run_campaign(spec, jobs=2, mp_context="fork")
    by_mode = {}
    for record in result.records:
        by_mode.setdefault(record["params"]["mode"], []).append(record)
    assert len(by_mode["crash"]) == 1
    assert by_mode["crash"][0]["status"] == "failed"
    assert "crashed" in by_mode["crash"][0]["error"]
    assert all(r["status"] == "ok" for r in by_mode["ok"])


@fork_only
def test_crashed_trial_is_retried_and_can_succeed(tmp_path):
    flag = str(tmp_path / "died-once")
    spec = CampaignSpec(
        scenario="test_hostile",
        base={"die_once_flag": flag},
        grid={"mode": ["die_once", "ok"]},
        trials=1, seed=1, timeout_s=30.0, retries=2)
    result = run_campaign(spec, jobs=2, mp_context="fork")
    assert os.path.exists(flag)                # first attempt really died
    assert [r["status"] for r in result.records] == ["ok", "ok"]
    assert any("retrying" in line for line in result.dispatch_log)


def test_failing_scenario_yields_failed_record_not_exception():
    spec = CampaignSpec(scenario="failover",
                        base={"fault": "no_such_fault", "total_bytes": 1000},
                        trials=1, seed=1)
    result = run_campaign(spec, jobs=1)
    record = result.records[0]
    assert record["status"] == "failed"
    assert "unknown fault" in record["error"]
    assert result.failed == [record]


def test_unknown_scenario_fails_per_trial():
    result = run_campaign(
        CampaignSpec(scenario="nope", trials=1, seed=1), jobs=1)
    assert result.records[0]["status"] == "failed"
    assert "unknown scenario" in result.records[0]["error"]
