"""``python -m repro sweep``: grid syntax, outputs, jobs-invariance."""

from __future__ import annotations

import json

from repro.cli import main

# Tiny but fault-spanning trials (~0.3 s each): see tests/campaign/
# test_engine.py for the sizing rationale.
BASE_ARGS = ["sweep", "--set", "total_bytes=2000000",
             "--set", "fault_at_s=0.1", "--run-until", "6",
             "--seed", "7", "--quiet"]


def test_sweep_writes_canonical_aggregate_and_jsonl(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    jsonl = tmp_path / "trials.jsonl"
    rc = main(BASE_ARGS + ["--grid", "hb_period_ms=100,200",
                           "--trials", "1",
                           "--out", str(out), "--jsonl", str(jsonl)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "2 ok, 0 failed" in printed
    assert "hb_period_ms=100" in printed

    aggregate = json.loads(out.read_text())
    assert aggregate["campaign"]["grid"] == {"hb_period_ms": [100, 200]}
    assert aggregate["campaign"]["base"]["total_bytes"] == 2_000_000
    assert aggregate["summary"]["ok"] == 2
    assert [r["params"]["hb_period_ms"] for r in aggregate["trials"]] == \
        [100, 200]

    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert [r["index"] for r in lines] == [0, 1]
    assert lines == aggregate["trials"]


def test_sweep_output_is_jobs_invariant(tmp_path):
    # The CI smoke leg's contract, held as a test too: the --out file is
    # byte-identical whatever --jobs is.
    args = BASE_ARGS + ["--grid", "hb_period_ms=100", "--trials", "2"]
    out1, out2 = tmp_path / "j1.json", tmp_path / "j2.json"
    assert main(args + ["--jobs", "1", "--out", str(out1)]) == 0
    assert main(args + ["--jobs", "2", "--out", str(out2)]) == 0
    assert out1.read_bytes() == out2.read_bytes()


def test_sweep_profile_dumps_per_worker_stats(tmp_path, capsys):
    import pstats

    profdir = tmp_path / "profiles"
    rc = main(BASE_ARGS + ["--grid", "hb_period_ms=100", "--trials", "2",
                           "--jobs", "1", "--profile", str(profdir)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "profiles ->" in printed
    dump = profdir / "worker-0.pstats"
    assert dump.exists()
    stats = pstats.Stats(str(dump))
    # The trial loop ran under the profiler: the scenario executor must
    # be among the recorded functions.
    assert any("execute_trial" in str(func) for func in stats.stats)
    # The aggregated report: one merged dump plus a printed cumulative
    # top-N table covering every worker's share of the campaign.
    assert (profdir / "merged.pstats").exists()
    assert "aggregated profile (all workers, top 25" in printed
    assert "cumulative" in printed


def test_sweep_profile_merges_multiple_workers(tmp_path, capsys):
    import pstats

    profdir = tmp_path / "profiles"
    rc = main(BASE_ARGS + ["--grid", "hb_period_ms=100", "--trials", "2",
                           "--jobs", "2", "--profile", str(profdir),
                           "--profile-top", "5"])
    assert rc == 0
    printed = capsys.readouterr().out
    dumps = sorted(profdir.glob("worker-*.pstats"))
    assert len(dumps) == 2
    assert "2 worker stats file(s)" in printed
    assert "top 5 by cumulative time" in printed
    merged = pstats.Stats(str(profdir / "merged.pstats"))
    # The merge covers both workers: total call count is at least each
    # individual dump's.
    for dump in dumps:
        assert merged.total_calls >= pstats.Stats(str(dump)).total_calls
    assert any("execute_trial" in str(func) for func in merged.stats)


def test_sweep_profile_top_zero_suppresses_report(tmp_path, capsys):
    profdir = tmp_path / "profiles"
    rc = main(BASE_ARGS + ["--grid", "hb_period_ms=100", "--trials", "1",
                           "--jobs", "1", "--profile", str(profdir),
                           "--profile-top", "0"])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "profiles ->" in printed
    assert "aggregated profile" not in printed
    assert (profdir / "merged.pstats").exists()


def test_sweep_named_fault_and_monte_carlo(capsys):
    rc = main(BASE_ARGS + ["--fault", "nic_failure_primary",
                           "--trials", "2"])
    assert rc == 0
    assert "2 ok" in capsys.readouterr().out


def test_sweep_rejects_bad_grid():
    try:
        main(BASE_ARGS + ["--grid", "hb_period_ms"])
    except ValueError as exc:
        assert "bad --grid" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("bad grid syntax was accepted")


def test_sweep_listed_in_cli(capsys):
    assert main(["list"]) == 0
    assert "sweep" in capsys.readouterr().out
