"""The warm-trial path: cache mechanics, affinity, aggregate identity.

``test_warm_equivalence.py`` (tests/obs) pins the wire-level property —
a thawed testbed behaves byte-for-byte like a cold build.  These tests
pin the engine-level consequences: warm and cold campaigns aggregate
identically, chunk assignment never straddles a grid point, and the
cache reuses/accounts exactly as documented.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, expand, run_campaign, warm
from repro.campaign.engine import _affine_chunks
from repro.scenarios.options import RunOptions

SPEC = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 2_000_000, "fault_at_s": 0.1},
    grid={"hb_period_ms": [100, 200]},
    trials=2, seed=7,
    options=RunOptions(run_until_s=6.0),
    timeout_s=120.0)


def test_warm_and_cold_campaigns_aggregate_identically():
    warm.get_cache().clear()
    warm.reset_stats()
    hot = run_campaign(SPEC, jobs=1)            # warm path (default)
    stats = dict(warm.get_cache().stats)
    cold = run_campaign(SPEC, jobs=1, warm=False)
    assert hot.to_json() == cold.to_json()
    assert hot.to_jsonl() == cold.to_jsonl()
    # 2 grid points x 2 trials: one build per point, one restore for
    # each point's second trial — proof the warm path actually ran.
    assert stats["builds"] == 2
    assert stats["restores"] == 2


def test_cold_campaign_leaves_cache_untouched():
    warm.get_cache().clear()
    warm.reset_stats()
    run_campaign(SPEC, jobs=1, warm=False)
    stats = warm.get_cache().stats
    assert stats["builds"] == 0 and stats["restores"] == 0


def test_affine_chunks_never_straddle_a_grid_point():
    trials = expand(CampaignSpec(
        scenario="failover",
        grid={"hb_period_ms": [100, 200, 500]},
        trials=3, seed=1))
    for chunksize in (1, 2, 3, 4, 8):
        chunks = _affine_chunks(trials, chunksize)
        assert [t.index for chunk in chunks for t in chunk] \
            == [t.index for t in trials]
        for chunk in chunks:
            assert len(chunk) <= chunksize
            assert all(t.params == chunk[0].params for t in chunk)


CUBIC_SPEC = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 2_000_000, "fault_at_s": 0.1, "cc": "cubic"},
    grid={"hb_period_ms": [100]},
    trials=3, seed=11,
    options=RunOptions(run_until_s=6.0),
    timeout_s=120.0)


def test_warm_cubic_campaign_matches_cold_and_leaks_no_pooled_segments():
    """Warm trials share the worker's recycle pools (they live outside the
    world snapshot), so three consecutive CUBIC trials exercise the full
    interaction: thawed testbeds acquiring segments that previous trials
    recycled.  The aggregate must still be byte-identical to cold runs,
    and every pooled segment must sit scrubbed between trials — a leaked
    claim would alias one trial's payload into the next."""
    from repro.net import pool
    from repro.tcp.segment import SEGMENT_POOL

    pool.clear()
    warm.get_cache().clear()
    warm.reset_stats()
    hot = run_campaign(CUBIC_SPEC, jobs=1)
    stats = dict(warm.get_cache().stats)
    assert stats["builds"] == 1 and stats["restores"] == 2
    assert SEGMENT_POOL, "CUBIC trials recycled no segments"
    assert all(s._claims == 0 and s.payload == b"" for s in SEGMENT_POOL)
    assert all(f._claims == 0 and f.payload is None for f in pool.FRAME_POOL)
    assert all(p._claims == 0 and p.payload is None for p in pool.PACKET_POOL)
    cold = run_campaign(CUBIC_SPEC, jobs=1, warm=False)
    assert hot.to_json() == cold.to_json()
    assert hot.to_jsonl() == cold.to_jsonl()


def test_thawed_testbed_carries_no_run_state():
    """A trial mutates its testbed (clock advances, connections come and
    go, CUBIC epochs anchor to sim time); the next trial's thaw must hand
    back the pristine build — zero clock, zero connections — and fresh
    connections in the thawed world must start outside any cubic epoch."""
    from repro.scenarios.builder import build_testbed

    cache = warm.WarmTestbedCache()
    first = cache.acquire(
        ("cubic-key",), 5, lambda: build_testbed(seed=5, cc="cubic"))
    # Dirty the first build the way a trial does: advance the clock and
    # open a connection (its cc clock now reads a nonzero sim time).
    socket = first.client.tcp.connect(first.service_ip, 5001)
    first.run_for(0.5)
    assert first.world.sim.now > 0
    assert socket.connection.cc.name == "cubic"

    thawed = cache.acquire(("cubic-key",), 6, lambda: 1 / 0)
    assert thawed.world.sim.now == 0
    for host in (thawed.primary, thawed.backup, thawed.client):
        assert host.tcp.connections == []
    fresh = thawed.client.tcp.connect(thawed.service_ip, 5001).connection
    assert fresh.cc.name == "cubic"
    assert fresh.cc._epoch_start_ns == -1   # not inside a cubic epoch
    assert fresh.cc._w_max == 0.0           # no remembered loss window


def test_cache_acquire_returns_first_build_directly_then_thaws():
    from repro.scenarios.builder import build_testbed

    cache = warm.WarmTestbedCache()
    built = build_testbed(seed=5)
    first = cache.acquire(("k",), 5, lambda: built)
    assert first is built                        # zero-cost first hit
    second = cache.acquire(("k",), 6, lambda: 1 / 0)   # builder not called
    assert second is not built
    assert second.world.sim.now == 0
    assert cache.stats["builds"] == 1 and cache.stats["restores"] == 1
    cache.clear()
    assert cache.acquire(("k",), 5, lambda: built) is built
