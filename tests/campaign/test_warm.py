"""The warm-trial path: cache mechanics, affinity, aggregate identity.

``test_warm_equivalence.py`` (tests/obs) pins the wire-level property —
a thawed testbed behaves byte-for-byte like a cold build.  These tests
pin the engine-level consequences: warm and cold campaigns aggregate
identically, chunk assignment never straddles a grid point, and the
cache reuses/accounts exactly as documented.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, expand, run_campaign, warm
from repro.campaign.engine import _affine_chunks
from repro.scenarios.options import RunOptions

SPEC = CampaignSpec(
    scenario="failover",
    base={"total_bytes": 2_000_000, "fault_at_s": 0.1},
    grid={"hb_period_ms": [100, 200]},
    trials=2, seed=7,
    options=RunOptions(run_until_s=6.0),
    timeout_s=120.0)


def test_warm_and_cold_campaigns_aggregate_identically():
    warm.get_cache().clear()
    warm.reset_stats()
    hot = run_campaign(SPEC, jobs=1)            # warm path (default)
    stats = dict(warm.get_cache().stats)
    cold = run_campaign(SPEC, jobs=1, warm=False)
    assert hot.to_json() == cold.to_json()
    assert hot.to_jsonl() == cold.to_jsonl()
    # 2 grid points x 2 trials: one build per point, one restore for
    # each point's second trial — proof the warm path actually ran.
    assert stats["builds"] == 2
    assert stats["restores"] == 2


def test_cold_campaign_leaves_cache_untouched():
    warm.get_cache().clear()
    warm.reset_stats()
    run_campaign(SPEC, jobs=1, warm=False)
    stats = warm.get_cache().stats
    assert stats["builds"] == 0 and stats["restores"] == 0


def test_affine_chunks_never_straddle_a_grid_point():
    trials = expand(CampaignSpec(
        scenario="failover",
        grid={"hb_period_ms": [100, 200, 500]},
        trials=3, seed=1))
    for chunksize in (1, 2, 3, 4, 8):
        chunks = _affine_chunks(trials, chunksize)
        assert [t.index for chunk in chunks for t in chunk] \
            == [t.index for t in trials]
        for chunk in chunks:
            assert len(chunk) <= chunksize
            assert all(t.params == chunk[0].params for t in chunk)


def test_cache_acquire_returns_first_build_directly_then_thaws():
    from repro.scenarios.builder import build_testbed

    cache = warm.WarmTestbedCache()
    built = build_testbed(seed=5)
    first = cache.acquire(("k",), 5, lambda: built)
    assert first is built                        # zero-cost first hit
    second = cache.acquire(("k",), 6, lambda: 1 / 0)   # builder not called
    assert second is not built
    assert second.world.sim.now == 0
    assert cache.stats["builds"] == 1 and cache.stats["restores"] == 1
    cache.clear()
    assert cache.acquire(("k",), 5, lambda: built) is built
