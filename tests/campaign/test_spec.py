"""Seed derivation, campaign expansion, and CLI grid parsing."""

import pytest

from repro.campaign.spec import (CampaignSpec, derive_seed, expand,
                                 parse_grid_arg, parse_scalar, parse_set_arg)
from repro.scenarios.options import RunOptions


def test_derive_seed_is_stable_across_processes():
    # The scheme is a SHA-256 truncation: these values are part of the
    # determinism contract (a worker on any platform derives the same).
    assert derive_seed(3, 0) == derive_seed(3, 0)
    assert derive_seed(3, 0) == 2381985766276731439
    assert derive_seed(3, 1) == 8323796565800240333
    assert derive_seed(7, 0) == 6890116974247465166


def test_derive_seed_spreads_neighbouring_indexes():
    seeds = [derive_seed(3, i) for i in range(100)]
    assert len(set(seeds)) == 100
    assert all(0 <= s < 2 ** 63 for s in seeds)


def test_expand_orders_grid_then_trials():
    spec = CampaignSpec(base={"total_bytes": 1000},
                        grid={"a": [1, 2], "b": ["x", "y"]},
                        trials=2, seed=11)
    trials = expand(spec)
    assert len(trials) == 8
    assert [t.index for t in trials] == list(range(8))
    # First grid key varies slowest; repetitions are innermost.
    assert [t.params["a"] for t in trials] == [1, 1, 1, 1, 2, 2, 2, 2]
    assert [t.params["b"] for t in trials] == ["x", "x", "y", "y"] * 2
    assert all(t.params["total_bytes"] == 1000 for t in trials)
    assert [t.seed for t in trials] == [derive_seed(11, i) for i in range(8)]


def test_expand_without_grid_is_pure_monte_carlo():
    trials = expand(CampaignSpec(trials=5, seed=2))
    assert len(trials) == 5
    assert len({t.seed for t in trials}) == 5


def test_campaign_spec_rejects_obs_level():
    with pytest.raises(ValueError, match="observability off"):
        CampaignSpec(options=RunOptions(obs_level="counters"))


def test_campaign_spec_rejects_empty_grid_entry():
    with pytest.raises(ValueError, match="non-empty list"):
        CampaignSpec(grid={"a": []})


def test_parse_scalar_coercion():
    assert parse_scalar("5") == 5 and isinstance(parse_scalar("5"), int)
    assert parse_scalar("0.25") == 0.25
    assert parse_scalar("true") is True
    assert parse_scalar("False") is False
    assert parse_scalar("hw_crash_primary") == "hw_crash_primary"


def test_parse_grid_and_set_args():
    assert parse_grid_arg("hb_period_ms=5,10,20") == \
        ("hb_period_ms", [5, 10, 20])
    assert parse_set_arg("fault=nic_failure_primary") == \
        ("fault", "nic_failure_primary")
    with pytest.raises(ValueError):
        parse_grid_arg("no_values")
    with pytest.raises(ValueError):
        parse_set_arg("novalue")
