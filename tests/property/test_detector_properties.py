"""Hypothesis properties of the lag tracker: no false positives when the
peer keeps up, guaranteed detection when it freezes."""

from hypothesis import given, settings, strategies as st

from repro.sim.core import millis, seconds
from repro.sim.world import World
from repro.sttcp.detector import LagTracker


@given(st.lists(st.integers(min_value=0, max_value=100_000),
                min_size=2, max_size=40),
       st.integers(min_value=0, max_value=3_000))
@settings(max_examples=100)
def test_peer_tracking_within_one_update_never_fires(increments, staleness):
    """If the peer is always within one update of the local counter (the
    healthy staleness pattern), no verdict is ever produced."""
    world = World()
    tracker = LagTracker(world, max_lag_bytes=1, max_lag_time_ns=seconds(2),
                         confirm_ns=millis(500))
    local = 0
    previous_local = 0
    for inc in increments:
        previous_local = local
        local += inc
        # Peer reports the *previous* local value: maximal healthy lag.
        tracker.update(local, previous_local)
        world.run_for(millis(200))
        assert tracker.verdict() is None


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=30)
def test_frozen_peer_always_detected(freeze_after):
    world = World()
    tracker = LagTracker(world, max_lag_bytes=1000,
                         max_lag_time_ns=seconds(2), confirm_ns=millis(500))
    local = 0
    for _ in range(freeze_after):
        local += 5000
        tracker.update(local, local - 2000)
        world.run_for(millis(200))
    # Peer freezes; local keeps moving.
    frozen_peer = local - 2000
    detected = False
    for _ in range(30):
        local += 5000
        tracker.update(local, frozen_peer)
        world.run_for(millis(200))
        if tracker.verdict() is not None:
            detected = True
            break
    assert detected


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                          st.integers(min_value=0, max_value=10_000)),
                min_size=1, max_size=50))
@settings(max_examples=100)
def test_update_never_crashes_and_lag_consistent(pairs):
    world = World()
    tracker = LagTracker(world, max_lag_bytes=100,
                         max_lag_time_ns=seconds(1), confirm_ns=0)
    max_local = 0
    max_peer = 0
    for local, peer in pairs:
        tracker.update(local, peer)
        max_local = max(max_local, local)
        max_peer = max(max_peer, peer)
        world.run_for(millis(50))
        assert tracker.lag_bytes == max_local - max_peer
