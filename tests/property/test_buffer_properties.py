"""Hypothesis properties of the reassembly and send buffers.

The central invariant: no matter how a byte stream is sliced into
segments, duplicated, reordered or partially overlapped, the receive
buffer reconstructs exactly the original stream — this is what makes
"exactly-once in-order delivery across failover" testable at all.
"""

from hypothesis import given, settings, strategies as st

from repro.tcp.buffers import ReceiveBuffer, RetainBuffer, SendBuffer


@st.composite
def sliced_stream(draw):
    """A stream plus an arbitrary segmentation of it (with duplicates)."""
    stream = draw(st.binary(min_size=1, max_size=2000))
    cut_points = draw(st.lists(
        st.integers(min_value=0, max_value=len(stream)),
        min_size=0, max_size=20))
    cuts = sorted(set(cut_points) | {0, len(stream)})
    segments = [(start, stream[start:end])
                for start, end in zip(cuts, cuts[1:])]
    # Duplicate a random subset.
    dup_indexes = draw(st.lists(
        st.integers(min_value=0, max_value=max(0, len(segments) - 1)),
        max_size=5))
    for index in dup_indexes:
        if segments:
            segments.append(segments[index])
    # Arbitrary delivery order.
    order = draw(st.permutations(range(len(segments))))
    return stream, [segments[i] for i in order]


@given(sliced_stream())
@settings(max_examples=200)
def test_reassembly_reconstructs_stream(case):
    stream, segments = case
    buf = ReceiveBuffer(capacity=len(stream) + 10)
    for offset, data in segments:
        buf.receive(offset, data)
    assert buf.read() == stream
    assert not buf.has_gap
    assert buf.rcv_next == len(stream)


@given(sliced_stream(), st.integers(min_value=1, max_value=500))
@settings(max_examples=100)
def test_reassembly_with_interleaved_reads(case, read_size):
    stream, segments = case
    buf = ReceiveBuffer(capacity=len(stream) + 10)
    out = bytearray()
    for offset, data in segments:
        buf.receive(offset, data)
        out.extend(buf.read(read_size))
    out.extend(buf.read())
    assert bytes(out) == stream


@given(sliced_stream())
@settings(max_examples=100)
def test_window_never_negative_and_bounded(case):
    stream, segments = case
    buf = ReceiveBuffer(capacity=256)
    for offset, data in segments:
        buf.receive(offset, data)
        assert 0 <= buf.window <= 256
        buf.read(64)


@given(st.binary(min_size=1, max_size=1000),
       st.lists(st.integers(min_value=0, max_value=1000), max_size=10))
@settings(max_examples=100)
def test_send_buffer_acks_monotonic(data, acks):
    buf = SendBuffer(capacity=len(data))
    buf.write(data)
    floor = 0
    for ack in sorted(a for a in acks if a <= len(data)):
        buf.ack_to(ack)
        floor = max(floor, ack)
        assert buf.base_offset == floor
        remaining = buf.get_range(floor, len(data) - floor)
        assert remaining == data[floor:]


@given(st.binary(min_size=1, max_size=500),
       st.integers(min_value=1, max_value=100))
@settings(max_examples=100)
def test_send_buffer_get_range_matches_written(data, chunk):
    buf = SendBuffer(capacity=len(data))
    buf.write(data)
    reassembled = b"".join(buf.get_range(off, chunk)
                           for off in range(0, len(data), chunk))
    assert reassembled == data


@st.composite
def overlapping_stream(draw):
    """A stream re-sliced into *overlapping*, duplicated, reordered
    segments with consistent content — the left-edge-trim and
    duplicate-overlap merge paths of the OOO store, which plain
    cut-point slicing never reaches."""
    stream = draw(st.binary(min_size=1, max_size=2000))
    n = len(stream)
    count = draw(st.integers(min_value=1, max_value=30))
    segments = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=n - 1))
        length = draw(st.integers(min_value=1, max_value=min(400, n - start)))
        segments.append((start, stream[start:start + length]))
    # A deterministic coarse tiling guarantees full coverage, so the
    # reassembled stream is always completable.
    for off in range(0, n, 97):
        segments.append((off, stream[off:off + 97]))
    order = draw(st.permutations(range(len(segments))))
    return stream, [segments[i] for i in order]


@given(overlapping_stream())
@settings(max_examples=200)
def test_overlapping_segments_reassemble_byte_for_byte(case):
    stream, segments = case
    buf = ReceiveBuffer(capacity=len(stream) + 10)
    for offset, data in segments:
        buf.receive(offset, data)
    assert buf.read() == stream
    assert buf.rcv_next == len(stream)
    assert not buf.has_gap


@given(sliced_stream(), st.integers(min_value=16, max_value=64),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100)
def test_reassembly_through_tight_window_with_retransmission(
        case, capacity, read_size):
    """With a buffer far smaller than the stream, segments get trimmed at
    the acceptance edge; re-offering them (a sender's retransmission)
    with interleaved reads must still reproduce the exact stream."""
    stream, segments = case
    buf = ReceiveBuffer(capacity=capacity)
    out = bytearray()
    rounds = 0
    while len(out) < len(stream):
        rounds += 1
        assert rounds <= len(stream) + len(segments) + 2, \
            "reassembly stopped making progress"
        for offset, data in segments:
            buf.receive(offset, data)
            out.extend(buf.read(read_size))
        out.extend(buf.read())
    assert bytes(out) == stream


@given(st.binary(min_size=1, max_size=3000),
       st.integers(min_value=8, max_value=64),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=100)
def test_send_buffer_wrap_roundtrip(data, capacity, chunk):
    """Stream a payload much larger than the buffer through repeated
    write / get_range / ack cycles: every transmitted chunk must match
    the original stream even as storage positions are reused."""
    buf = SendBuffer(capacity=capacity)
    written = 0
    sent = bytearray()
    while len(sent) < len(data):
        written += buf.write(data[written:written + capacity])
        while len(sent) < written:
            part = buf.get_range(len(sent), min(chunk, written - len(sent)))
            sent.extend(part)
        buf.ack_to(len(sent))
        assert buf.base_offset == len(sent)
        assert buf.buffered == written - len(sent)
    assert bytes(sent) == data


@given(st.lists(st.binary(min_size=1, max_size=50), min_size=1, max_size=20),
       st.lists(st.integers(min_value=0, max_value=500), max_size=10))
@settings(max_examples=100)
def test_retain_buffer_contiguity(chunks, releases):
    stream = b"".join(chunks)
    buf = RetainBuffer(capacity=len(stream) + 1)
    offset = 0
    for chunk in chunks:
        buf.append(offset, chunk)
        offset += len(chunk)
    assert buf.get_range(0, len(stream)) == stream
    floor = 0
    for release in sorted(r for r in releases if r <= len(stream)):
        buf.release_to(release)
        floor = max(floor, release)
        tail = buf.get_range(floor, len(stream) - floor)
        assert tail == stream[floor:]
