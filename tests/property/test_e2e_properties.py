"""End-to-end property: TCP delivers the exact byte stream under random
loss, and ST-TCP failover preserves it under random crash timing.

These run whole simulations per example, so example counts are small but
each example is a full-system exercise.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import HwCrash
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds
from repro.sim.world import World
from repro.net.addresses import IPAddress

from tests.conftest import Lan
from tests.tcp.conftest import TcpPair, pump_stream


@given(seed=st.integers(min_value=0, max_value=10_000),
       loss_pct=st.integers(min_value=0, max_value=10),
       size=st.integers(min_value=1, max_value=300_000))
@settings(max_examples=15, deadline=None)
def test_tcp_stream_integrity_under_random_loss(seed, loss_pct, size):
    world = World(seed=seed)
    lan = Lan(world, loss_rate=loss_pct / 100)
    pair = TcpPair(lan)
    data = bytes((i * 31 + seed) % 251 for i in range(size))
    pump_stream(pair.client_sock, data)
    pair.run(240)
    assert bytes(pair.server.data) == data


@given(seed=st.integers(min_value=0, max_value=10_000),
       crash_ms=st.integers(min_value=300, max_value=2500))
@settings(max_examples=8, deadline=None)
def test_failover_preserves_stream_for_any_crash_instant(seed, crash_ms):
    """The Demo-1 guarantee quantified over crash timing: whenever the
    primary dies mid-transfer, the client still gets every byte, in
    order, with no reset."""
    tb = build_testbed(seed=seed)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    total = 25_000_000
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=total)
    client.start()
    tb.inject.at(millis(crash_ms), HwCrash(tb.primary))
    tb.run_until(60)
    assert client.received == total
    assert client.corrupt_at is None
    assert client.reset_count == 0
