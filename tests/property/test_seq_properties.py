"""Hypothesis properties of 32-bit sequence arithmetic."""

from hypothesis import given, strategies as st

from repro.tcp.seq import (SEQ_MASK, SEQ_MOD, seq_add, seq_ge, seq_gt,
                           seq_le, seq_lt, seq_max, seq_min, seq_sub)

seqs = st.integers(min_value=0, max_value=SEQ_MASK)
small = st.integers(min_value=-(1 << 30), max_value=(1 << 30))


@given(seqs, small)
def test_add_sub_roundtrip(seq, delta):
    assert seq_sub(seq_add(seq, delta), seq) == delta


@given(seqs, small, small)
def test_add_is_associative_mod(seq, a, b):
    assert seq_add(seq_add(seq, a), b) == seq_add(seq, a + b)


@given(seqs, seqs)
def test_comparison_trichotomy(a, b):
    """Within the half-circle, exactly one of <, ==, > holds."""
    d = seq_sub(a, b)
    assert (seq_lt(a, b), a == b or d == 0, seq_gt(a, b)).count(True) >= 1
    if d != 0:
        assert seq_lt(a, b) != seq_gt(a, b)


@given(seqs, seqs)
def test_lt_gt_antisymmetric(a, b):
    if seq_lt(a, b):
        assert seq_gt(b, a)
        assert not seq_gt(a, b)


@given(seqs, seqs)
def test_le_ge_duality(a, b):
    assert seq_le(a, b) == seq_ge(b, a)


@given(seqs, st.integers(min_value=0, max_value=(1 << 30)))
def test_forward_add_is_greater(seq, delta):
    if delta > 0:
        assert seq_gt(seq_add(seq, delta), seq)
        assert seq_lt(seq, seq_add(seq, delta))


@given(seqs, seqs)
def test_min_max_consistent(a, b):
    lo, hi = seq_min(a, b), seq_max(a, b)
    assert {lo, hi} == {a, b}
    assert seq_le(lo, hi)


@given(seqs)
def test_add_zero_identity(seq):
    assert seq_add(seq, 0) == seq
    assert seq_sub(seq, seq) == 0
