"""The timer wheel is observationally identical to a single binary heap.

The kernel's contract (docs/scheduler.md): events fire in global
``(time, insertion-sequence)`` order, no matter which tier — active
bucket, level-0/level-1 wheel, or overflow heap — an event happens to
land in, and no matter how the cursor advances or how entries migrate
between tiers.  We check it the direct way: run arbitrary programs of
schedule / schedule_at / cancel / run(until) operations (including
scheduling and cancelling from inside callbacks) through the real
:class:`Simulator` and through a 20-line reference heap scheduler, and
require byte-identical fire logs.
"""

import itertools
from heapq import heappop, heappush

from hypothesis import given, settings, strategies as st

from repro.sim.core import Simulator


class RefHandle:
    def __init__(self, callback, args):
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class HeapScheduler:
    """The old kernel, reduced to its semantics: one global (time, seq)
    min-heap, lazy cancellation, run-to-until clock advancement."""

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._heap = []

    def schedule(self, delay, callback, *args):
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        handle = RefHandle(callback, args)
        self._seq += 1
        heappush(self._heap, (time, self._seq, handle))
        return handle

    def run(self, until=None):
        while self._heap:
            time, _seq, handle = self._heap[0]
            if until is not None and time > until:
                break
            heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            handle.callback(*handle.args)
        if until is not None and self.now < until:
            self.now = until


# Delay mix chosen to hit every tier of the wheel: the active bucket
# (sub-slot), many L0 slots, the L1 wheel, and the overflow heap.
DELAYS = st.one_of(
    st.integers(0, 5_000),
    st.integers(0, 20_000_000),
    st.integers(0, 6_000_000_000),
    st.integers(0, 30_000_000_000),
)

CHILD_OP = st.one_of(
    st.tuples(st.just("sched"), DELAYS, st.just(())),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
)
OP = st.one_of(
    st.tuples(st.just("sched"), DELAYS,
              st.lists(CHILD_OP, max_size=3).map(tuple)),
    st.tuples(st.just("sched_at"), DELAYS,
              st.lists(CHILD_OP, max_size=3).map(tuple)),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
)
PROGRAM = st.lists(
    st.tuples(st.lists(OP, max_size=8), st.one_of(st.none(), DELAYS)),
    min_size=1, max_size=6)


def execute(scheduler, program):
    """Run ``program`` on ``scheduler``; return (fire log, final now)."""
    log = []
    handles = []
    ids = itertools.count()

    def fire(op_id, children):
        log.append((now(), op_id))
        for child in children:
            do_op(child)

    def now():
        return scheduler.now

    def do_op(spec):
        if spec[0] == "sched":
            handles.append(
                scheduler.schedule(spec[1], fire, next(ids), spec[2]))
        elif spec[0] == "sched_at":
            handles.append(
                scheduler.schedule_at(now() + spec[1], fire,
                                      next(ids), spec[2]))
        elif handles:
            handles[spec[1] % len(handles)].cancel()

    for ops, duration in program:
        for spec in ops:
            do_op(spec)
        scheduler.run(until=None if duration is None else now() + duration)
    scheduler.run()  # drain whatever survived, however far out
    return log, now()


@given(PROGRAM)
@settings(max_examples=150, deadline=None)
def test_wheel_fires_in_heap_order(program):
    wheel_log, wheel_now = execute(Simulator(), program)
    heap_log, heap_now = execute(HeapScheduler(), program)
    assert wheel_log == heap_log
    assert wheel_now == heap_now


def test_mass_cancel_churn_matches_heap():
    """Enough tombstones to trigger compaction repeatedly, spread across
    every tier, with survivors interleaved — order must still match."""
    def program_ops():
        ops = []
        for i in range(300):
            delay = (i * 37_003) % 25_000_000_000  # all tiers
            ops.append(("sched", delay, ()))
        for i in range(0, 280):
            if i % 4:  # cancel three quarters of them
                ops.append(("cancel", i))
        return [(ops, None)]

    program = program_ops()
    assert execute(Simulator(), program) == execute(HeapScheduler(), program)


def test_same_instant_fifo_across_tiers():
    """Ties on `time` resolve by insertion sequence even when the tied
    events were first routed to different tiers (L1 / overflow) and
    migrated inward later."""
    horizon = Simulator.L1_HORIZON_NS
    program = [(
        [("sched_at", horizon + 5, ()),      # overflow tier
         ("sched", 100, ()),                 # near future
         ("sched_at", horizon + 5, ()),      # overflow again, later seq
         ("sched_at", horizon - 10, ())],    # L1 tier
        None,
    )]
    assert execute(Simulator(), program) == execute(HeapScheduler(), program)
