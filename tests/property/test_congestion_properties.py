"""Hypothesis invariants for Reno congestion control and RTT estimation."""

from hypothesis import given, settings, strategies as st

from repro.sim.core import millis, seconds
from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.rtt import RttEstimator

MSS = 1460

events = st.lists(
    st.one_of(
        st.tuples(st.just("ack"), st.integers(min_value=1, max_value=10 * MSS)),
        st.tuples(st.just("dupack"), st.just(0)),
        st.tuples(st.just("timeout"), st.just(0)),
    ),
    min_size=1, max_size=100)


@given(events)
@settings(max_examples=200)
def test_cwnd_always_positive_and_ssthresh_floor(sequence):
    cc = RenoCongestionControl(MSS)
    snd_una = 0
    snd_nxt = 20 * MSS
    for kind, arg in sequence:
        if kind == "ack":
            snd_una += arg
            snd_nxt = max(snd_nxt, snd_una)
            cc.on_new_ack(arg, snd_una)
        elif kind == "dupack":
            cc.on_dupack(max(snd_nxt - snd_una, MSS), snd_nxt)
        else:
            cc.on_timeout(max(snd_nxt - snd_una, MSS))
        assert cc.cwnd >= MSS
        assert cc.ssthresh >= 2 * MSS
        assert cc.send_window(10 ** 9) == cc.cwnd
        assert cc.send_window(0) == 0


@given(st.lists(st.integers(min_value=0, max_value=int(2e9)),
                min_size=1, max_size=200))
@settings(max_examples=200)
def test_rto_always_within_bounds(samples):
    est = RttEstimator(min_rto_ns=millis(200), max_rto_ns=seconds(60))
    for sample in samples:
        est.on_sample(sample)
        assert millis(200) <= est.rto_ns <= seconds(60)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=50)
def test_backoff_is_monotone_and_capped(n_backoffs):
    est = RttEstimator(min_rto_ns=millis(200), max_rto_ns=seconds(60))
    est.on_sample(millis(10))
    previous = est.rto_ns
    for _ in range(n_backoffs):
        current = est.on_backoff()
        assert current >= previous
        assert current <= seconds(60)
        previous = current
    est.reset_backoff()
    assert est.rto_ns <= previous


@given(st.lists(st.integers(min_value=1, max_value=int(1e8)),
                min_size=2, max_size=100))
@settings(max_examples=100)
def test_srtt_stays_within_sample_envelope(samples):
    """The smoothed RTT can never leave the [min, max] envelope of the
    samples that produced it."""
    est = RttEstimator()
    for sample in samples:
        est.on_sample(sample)
    assert min(samples) <= est.srtt_ns <= max(samples)
