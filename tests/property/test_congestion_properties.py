"""Hypothesis invariants for the congestion-control machines and RTT
estimation.  Every registered algorithm must honour the window-floor
invariants; the per-algorithm properties pin the behaviours the
CC-identification scenario keys on (docs/congestion.md)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.core import millis, seconds
from repro.tcp.congestion import (RenoCongestionControl,
                                  TahoeCongestionControl, cc_names,
                                  make_congestion_control)
from repro.tcp.rtt import RttEstimator

MSS = 1460

events = st.lists(
    st.one_of(
        st.tuples(st.just("ack"), st.integers(min_value=1, max_value=10 * MSS)),
        st.tuples(st.just("dupack"), st.just(0)),
        st.tuples(st.just("timeout"), st.just(0)),
    ),
    min_size=1, max_size=100)


class TickClock:
    """Deterministic virtual clock: one fixed step per event."""

    def __init__(self, step_ns=1_000_000):
        self.now = 0
        self.step_ns = step_ns

    def tick(self):
        self.now += self.step_ns


def drive(cc, sequence, clock=None):
    """Feed an abstract (kind, arg) event sequence into a CC machine the
    way the connection would, yielding the machine after every event."""
    snd_una = 0
    snd_nxt = 20 * MSS
    for kind, arg in sequence:
        if clock is not None:
            clock.tick()
        if kind == "ack":
            snd_una += arg
            snd_nxt = max(snd_nxt, snd_una)
            cc.on_new_ack(arg, snd_una)
        elif kind == "dupack":
            cc.on_dupack(max(snd_nxt - snd_una, MSS), snd_nxt)
        else:
            cc.on_timeout(max(snd_nxt - snd_una, MSS))
        yield cc


@pytest.mark.parametrize("name", cc_names())
@given(events)
@settings(max_examples=100)
def test_cwnd_always_positive_and_ssthresh_floor(name, sequence):
    """Every registered algorithm: cwnd never drops below one MSS,
    ssthresh never below two, and send_window is an exact min()."""
    clock = TickClock()
    cc = make_congestion_control(name, MSS, clock=clock)
    for cc in drive(cc, sequence, clock):
        assert cc.cwnd >= MSS
        assert cc.ssthresh >= 2 * MSS
        assert cc.send_window(10 ** 9) == cc.cwnd
        assert cc.send_window(0) == 0


@pytest.mark.parametrize("name", cc_names())
@given(events)
@settings(max_examples=60)
def test_loss_event_is_multiplicative_decrease(name, sequence):
    """Any loss event (third dupack or RTO) must leave ssthresh at no
    more than the larger of the pre-loss cwnd and flight: multiplicative
    decrease, whatever the factor (0.5 for the Reno family, 0.7 for
    CUBIC)."""
    clock = TickClock()
    cc = make_congestion_control(name, MSS, clock=clock)
    snd_una = 0
    snd_nxt = 20 * MSS
    for kind, arg in sequence:
        clock.tick()
        before = cc.cwnd
        retrans = cc.fast_retransmits + cc.timeouts
        if kind == "ack":
            snd_una += arg
            snd_nxt = max(snd_nxt, snd_una)
            cc.on_new_ack(arg, snd_una)
        else:
            flight = max(snd_nxt - snd_una, MSS)
            if kind == "dupack":
                cc.on_dupack(flight, snd_nxt)
            else:
                cc.on_timeout(flight)
            if cc.fast_retransmits + cc.timeouts > retrans:
                assert cc.ssthresh <= max(before, flight, 2 * MSS)


@given(events)
@settings(max_examples=100)
def test_tahoe_never_inflates_after_fast_retransmit(sequence):
    """Tahoe has no fast recovery: between a fast retransmit and the next
    new ack, cwnd stays pinned at one MSS no matter how many further
    dupacks arrive."""
    cc = TahoeCongestionControl(MSS)
    awaiting = False
    for i, (kind, arg) in enumerate(sequence):
        rtx_before = cc.fast_retransmits
        next(drive(cc, [(kind, arg)]))
        if kind == "ack":
            awaiting = False
        elif kind == "timeout":
            awaiting = False
        elif cc.fast_retransmits > rtx_before:
            awaiting = True
        if awaiting and kind == "dupack":
            assert cc.cwnd == MSS


@given(events)
@settings(max_examples=100)
def test_cubic_is_deterministic_per_virtual_clock(sequence):
    """Equal event sequences against equal virtual clocks give equal
    window trajectories — the property the identification scenario (and
    the warm-snapshot campaign path) depends on."""
    def trajectory():
        clock = TickClock()
        cc = make_congestion_control("cubic", MSS, clock=clock)
        return [(c.cwnd, c.ssthresh, c.in_fast_recovery)
                for c in drive(cc, sequence, clock)]

    assert trajectory() == trajectory()


@given(st.lists(st.integers(min_value=0, max_value=int(2e9)),
                min_size=1, max_size=200))
@settings(max_examples=200)
def test_rto_always_within_bounds(samples):
    est = RttEstimator(min_rto_ns=millis(200), max_rto_ns=seconds(60))
    for sample in samples:
        est.on_sample(sample)
        assert millis(200) <= est.rto_ns <= seconds(60)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=50)
def test_backoff_is_monotone_and_capped(n_backoffs):
    est = RttEstimator(min_rto_ns=millis(200), max_rto_ns=seconds(60))
    est.on_sample(millis(10))
    previous = est.rto_ns
    for _ in range(n_backoffs):
        current = est.on_backoff()
        assert current >= previous
        assert current <= seconds(60)
        previous = current
    est.reset_backoff()
    assert est.rto_ns <= previous


@given(st.lists(st.integers(min_value=1, max_value=int(1e8)),
                min_size=2, max_size=100))
@settings(max_examples=100)
def test_srtt_stays_within_sample_envelope(samples):
    """The smoothed RTT can never leave the [min, max] envelope of the
    samples that produced it."""
    est = RttEstimator()
    for sample in samples:
        est.on_sample(sample)
    assert min(samples) <= est.srtt_ns <= max(samples)
