"""Unit tests for the FIFO CPU model."""

import pytest

from repro.host.cpu import CpuModel
from repro.sim.world import World


def test_single_job_runs_after_cost():
    world = World()
    cpu = CpuModel(world)
    done = []
    cpu.submit(1000, lambda: done.append(world.sim.now))
    world.run()
    assert done == [1000]


def test_fifo_queueing_accumulates_delay():
    world = World()
    cpu = CpuModel(world)
    done = []
    cpu.submit(1000, lambda: done.append(world.sim.now))
    cpu.submit(1000, lambda: done.append(world.sim.now))
    cpu.submit(1000, lambda: done.append(world.sim.now))
    world.run()
    assert done == [1000, 2000, 3000]


def test_idle_gap_resets_queue():
    world = World()
    cpu = CpuModel(world)
    done = []
    cpu.submit(100, lambda: done.append(world.sim.now))
    world.run()
    world.sim.schedule(900, lambda: cpu.submit(
        100, lambda: done.append(world.sim.now)))
    world.run()
    assert done == [100, 1100]  # second job starts fresh at t=1000


def test_backlog_reporting():
    world = World()
    cpu = CpuModel(world)
    cpu.submit(5000, lambda: None)
    cpu.submit(5000, lambda: None)
    assert cpu.backlog_ns == 10_000
    world.run()
    assert cpu.backlog_ns == 0


def test_utilization():
    world = World()
    cpu = CpuModel(world)
    cpu.submit(500, lambda: None)
    world.run(until=1000)
    assert cpu.utilization(1000) == 0.5
    assert cpu.utilization(0) == 0.0


def test_overload_backlog_grows_without_bound():
    world = World()
    cpu = CpuModel(world)
    # Offered load 2x capacity: 200ns of work every 100ns.
    for t in range(0, 10_000, 100):
        world.sim.schedule_at(t, lambda: cpu.submit(200, lambda: None))
    world.run(until=10_000)
    assert cpu.backlog_ns > 5_000


def test_negative_cost_rejected():
    world = World()
    with pytest.raises(ValueError):
        CpuModel(world).submit(-1, lambda: None)


def test_jobs_counter():
    world = World()
    cpu = CpuModel(world)
    for _ in range(5):
        cpu.submit(10, lambda: None)
    world.run()
    assert cpu.jobs_run == 5
