"""Unit tests for the power strip (STONITH)."""

import pytest

from repro.sim.core import millis
from repro.host.power import PowerStrip


def test_power_down_after_actuation_delay(lan):
    strip = PowerStrip(lan.world, actuation_delay_ns=millis(5))
    strip.register(lan.hosts[0])
    strip.power_down(lan.hosts[0], initiator="test")
    assert lan.hosts[0].is_up  # not yet
    lan.world.run()
    assert not lan.hosts[0].is_up
    assert strip.was_powered_down("h0")


def test_power_down_already_dead_is_safe(lan):
    strip = PowerStrip(lan.world)
    strip.register(lan.hosts[0])
    lan.hosts[0].crash_hw()
    strip.power_down(lan.hosts[0], initiator="test")
    lan.world.run()
    assert not lan.hosts[0].is_up


def test_unregistered_host_rejected(lan):
    strip = PowerStrip(lan.world)
    with pytest.raises(KeyError):
        strip.power_down(lan.hosts[0], initiator="test")


def test_power_downs_recorded_with_initiator(lan):
    strip = PowerStrip(lan.world)
    strip.register(lan.hosts[0])
    strip.register(lan.hosts[1])
    strip.power_down(lan.hosts[1], initiator="backup-engine")
    lan.world.run()
    assert strip.power_downs[0][1] == "h1"
    assert strip.power_downs[0][2] == "backup-engine"
    assert not strip.was_powered_down("h0")
