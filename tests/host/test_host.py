"""Unit tests for the host model: power, crash semantics, frame gating."""

from repro.net.addresses import IPAddress
from repro.sim.core import seconds


def test_host_starts_up(lan):
    assert lan.hosts[0].is_up


def test_power_off_silences_inbound(lan):
    h0, h1 = lan.hosts
    got = []
    h0.ip.register_protocol("test", got.append)
    h0.power_off()
    h1.ip.register_protocol("test", lambda p: None)
    h1.ip.send(lan.ip(0), "test", b"x")
    lan.world.run()
    assert got == []


def test_power_off_silences_outbound(lan):
    h0, h1 = lan.hosts
    got = []
    h1.ip.register_protocol("test", got.append)
    h0.power_off()
    h0.ip.send(lan.ip(1), "test", b"x")
    lan.world.run()
    assert got == []


def test_power_off_disables_serial_ports(lan):
    from repro.net.serial_link import SerialLink
    h0, h1 = lan.hosts
    p0, p1 = h0.add_serial_port(), h1.add_serial_port()
    SerialLink(lan.world, p0, p1)
    got = []
    p1.set_handler(got.append)
    h1.power_off()
    p0.send(b"hello?")
    lan.world.run()
    assert got == []


def test_power_off_notifies_subscribers(lan):
    fired = []
    lan.hosts[0].on_power_off.append(lambda: fired.append(True))
    lan.hosts[0].power_off()
    assert fired == [True]


def test_power_off_idempotent(lan):
    fired = []
    lan.hosts[0].on_power_off.append(lambda: fired.append(True))
    lan.hosts[0].power_off()
    lan.hosts[0].power_off()
    assert fired == [True]


def test_hw_and_os_crash_same_symptom(lan):
    h0, h1 = lan.hosts
    h0.crash_hw()
    h1.crash_os()
    assert not h0.is_up and not h1.is_up


def test_crash_stops_tcp_timers(lan):
    h0, h1 = lan.hosts
    h0.tcp.listen(80, lambda s: None)
    sock = h1.tcp.connect(IPAddress("10.0.0.1"), 80)
    lan.world.run(until=seconds(1))
    sock.send(b"data")
    h1.crash_hw()
    pending_before = lan.world.sim.pending_events
    lan.world.run(until=seconds(30))
    # No retransmission storm from the dead host.
    assert sock.connection.retransmissions == 0


def test_crash_stops_apps(lan):
    from repro.host.app import Application

    class Ticker(Application):
        def __init__(self, host):
            super().__init__(host, "ticker")
            self.ticks = 0

        def on_start(self):
            self.every(100_000_000, self._tick)

        def _tick(self):
            self.ticks += 1

    app = Ticker(lan.hosts[0])
    app.start()
    lan.world.run(until=seconds(1))
    assert app.ticks == 10
    lan.hosts[0].crash_hw()
    lan.world.run(until=seconds(2))
    assert app.ticks == 10


def test_frames_dropped_counter(lan):
    h0, h1 = lan.hosts
    h0.power_off()
    # power gate stops it at the NIC; force through host path directly:
    from repro.net.frame import EthernetFrame, EtherType
    frame = EthernetFrame(h0.nics[0].mac, h1.nics[0].mac, EtherType.IPV4, b"")
    h0._frame_up(h0.interfaces[0], frame)
    assert h0.frames_dropped_host_down == 1


def test_cpu_model_activated_by_frame_cost(world):
    from repro.host.host import Host
    host = Host(world, "busy", frame_processing_cost_ns=10_000)
    assert host.cpu is not None
    host2 = Host(world, "fast")
    assert host2.cpu is None
