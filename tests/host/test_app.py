"""Unit tests for the application base class and crash modes."""

from repro.net.addresses import IPAddress
from repro.sim.core import seconds
from repro.host.app import Application
from repro.tcp.states import TcpState


class Worker(Application):
    """Test app: one socket, one periodic timer."""

    def __init__(self, host, connect_to=None):
        super().__init__(host, "worker")
        self.ticks = 0
        self.connect_to = connect_to
        self.sock = None

    def on_start(self):
        self.every(100_000_000, self._tick)
        if self.connect_to is not None:
            self.sock = self.track_socket(
                self.host.tcp.connect(self.connect_to, 80))

    def _tick(self):
        self.ticks += 1


def test_start_is_idempotent(lan):
    app = Worker(lan.hosts[0])
    app.start()
    app.start()
    lan.world.run(until=seconds(1))
    assert app.ticks == 10


def test_timers_stop_on_hang_crash(lan):
    app = Worker(lan.hosts[0])
    app.start()
    lan.world.run(until=seconds(1))
    app.crash(cleanup=False)
    lan.world.run(until=seconds(2))
    assert app.ticks == 10
    assert app.crashed and not app.is_alive


def test_hang_crash_leaves_sockets_open(lan):
    lan.hosts[0].tcp.listen(80, lambda s: None)
    app = Worker(lan.hosts[1], connect_to=IPAddress("10.0.0.1"))
    app.start()
    lan.world.run(until=seconds(1))
    app.crash(cleanup=False)
    lan.world.run(until=seconds(2))
    # Socket stays ESTABLISHED: no FIN was generated (paper Sec. 4.2.1).
    assert app.sock.state is TcpState.ESTABLISHED


def test_cleanup_crash_closes_sockets(lan):
    server_socks = []
    lan.hosts[0].tcp.listen(80, server_socks.append)
    app = Worker(lan.hosts[1], connect_to=IPAddress("10.0.0.1"))
    app.start()
    lan.world.run(until=seconds(1))
    app.crash(cleanup=True)
    lan.world.run(until=seconds(2))
    # FIN was generated and delivered (paper Sec. 4.2.2).
    assert app.sock.connection.fin_queued
    assert server_socks[0].connection.peer_fin_consumed


def test_crash_is_idempotent(lan):
    app = Worker(lan.hosts[0])
    app.start()
    app.crash(cleanup=False)
    app.crash(cleanup=True)   # second crash ignored
    assert app.crash_had_cleanup is False


def test_guard_callback_suppressed_after_crash(lan):
    app = Worker(lan.hosts[0])
    app.start()
    calls = []
    guarded = app.guard_callback(lambda: calls.append(1))
    guarded()
    app.crash(cleanup=False)
    guarded()
    assert calls == [1]


def test_after_timer(lan):
    app = Worker(lan.hosts[0])
    app.start()
    fired = []
    app.after(seconds(1), lambda: fired.append(lan.world.sim.now))
    lan.world.run(until=seconds(2))
    assert fired == [seconds(1)]


def test_stop_halts_timers_without_crash_flag(lan):
    app = Worker(lan.hosts[0])
    app.start()
    lan.world.run(until=seconds(1))
    app.stop()
    lan.world.run(until=seconds(2))
    assert app.ticks == 10
    assert not app.crashed


def test_untrack_socket(lan):
    lan.hosts[0].tcp.listen(80, lambda s: None)
    app = Worker(lan.hosts[1], connect_to=IPAddress("10.0.0.1"))
    app.start()
    app.untrack_socket(app.sock)
    assert app.sockets == []


def test_os_model_kill_helpers(lan):
    from repro.host.osmodel import OperatingSystem
    app = Worker(lan.hosts[0])
    app.start()
    lan.hosts[0].os.hang_app(app)
    assert app.crash_had_cleanup is False
