"""Multiple simultaneous replicated connections through one failover."""

import pytest

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import HwCrash
from repro.metrics.monitor import ClientStreamMonitor
from repro.scenarios.builder import build_testbed
from repro.sim.core import seconds

N_CLIENTS = 4
TOTAL_EACH = 8_000_000


@pytest.fixture(scope="module")
def multi_result():
    tb = build_testbed(seed=13)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    clients = []
    for i in range(N_CLIENTS):
        client = StreamClient(tb.client, f"client{i}", tb.service_ip,
                              port=80, total_bytes=TOTAL_EACH)
        client.start()
        clients.append(client)
    tb.inject.at(seconds(1), HwCrash(tb.primary))
    tb.run_until(90)
    return tb, clients


def test_all_connections_replicated(multi_result):
    tb, _clients = multi_result
    # The backup saw (and replicated) every connection before the crash.
    from repro.sttcp.events import EventKind
    replicated = tb.pair.backup.events.of_kind(EventKind.CONN_REPLICATED)
    assert len(replicated) == N_CLIENTS


def test_every_stream_survives_failover(multi_result):
    _tb, clients = multi_result
    for client in clients:
        assert client.received == TOTAL_EACH, client.name
        assert client.corrupt_at is None, client.name
        assert client.reset_count == 0, client.name


def test_heartbeat_scales_with_connections(multi_result):
    tb, _clients = multi_result
    # HB size: base + 20 bytes per managed connection (paper Sec. 3).
    from repro.sttcp.state import HEARTBEAT_BASE_BYTES, PER_CONNECTION_BYTES
    hb = tb.pair.backup.hb.build_heartbeat()
    assert hb.size_bytes <= (HEARTBEAT_BASE_BYTES
                             + PER_CONNECTION_BYTES * N_CLIENTS)


def test_single_takeover_covers_all_connections(multi_result):
    tb, _clients = multi_result
    from repro.sttcp.events import EventKind
    takeovers = tb.pair.backup.events.of_kind(EventKind.TAKEOVER)
    assert len(takeovers) == 1
    assert takeovers[0].detail["connections"] >= 1
