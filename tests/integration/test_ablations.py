"""Ablations from paper Sec. 3: the design changes between the original
ST-TCP prototype and the demonstrated one.

A2 (dual HB links): with a UDP-only heartbeat, a backup NIC failure makes
the *backup* believe the *primary* died — it wrongly powers the primary
down and takes over.  The dual-link design diagnoses it correctly.

A1 (state exchange over HB instead of tapping primary→client traffic):
with mirroring on and a per-frame CPU cost, the backup processes roughly
double the frames and falls behind, eventually suspected as failed.
"""

import pytest

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import NicFailure
from repro.metrics.monitor import ClientStreamMonitor
from repro.scenarios.builder import build_testbed
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.sttcp.events import EventKind


def run_backup_nic_failure(use_serial_hb: bool):
    config = SttcpConfig(use_serial_hb=use_serial_hb)
    tb = build_testbed(seed=9, config=config)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    monitor = ClientStreamMonitor(tb.world)
    client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                          total_bytes=30_000_000, monitor=monitor)
    client.start()
    tb.inject.at(seconds(1), NicFailure(tb.backup.nics[0]))
    tb.run_until(60)
    return tb, client


class TestDualHbAblation:
    def test_dual_links_diagnose_backup_nic_correctly(self):
        tb, client = run_backup_nic_failure(use_serial_hb=True)
        assert tb.pair.backup.takeover_at is None
        assert tb.pair.primary.mode == "non-fault-tolerant"
        assert tb.power_strip.was_powered_down("backup")
        assert not tb.power_strip.was_powered_down("primary")
        assert client.received == client.total_bytes

    # This ablation DEMONSTRATES a split brain; the invariant oracle
    # (rightly) flags sttcp.single-active, so it must not police it.
    @pytest.mark.no_invariant_check
    def test_single_link_misdiagnoses_backup_nic(self):
        """The paper's motivating bug: 'if the backup NIC failed, the
        backup would ... conclude that the primary has failed ... shut
        down the primary and attempt to take over'."""
        tb, _client = run_backup_nic_failure(use_serial_hb=False)
        # The deaf backup saw total HB silence and "took over".
        assert tb.pair.backup.takeover_at is not None
        assert tb.power_strip.was_powered_down("primary")
        # With a dead NIC its takeover serves nobody: the incorrect
        # decision killed a healthy primary.


class TestOldArchitectureAblation:
    def _run(self, mirror: bool, frame_cost_ns: int = 80_000):
        # 80 us per frame: ~65% CPU at the unidirectional frame rate of a
        # full-speed transfer, ~130% once the mirrored primary->client
        # traffic is added — exactly the Sec. 3 overload regime.
        tb = build_testbed(seed=9, mirror_to_backup=mirror,
                           backup_frame_cost_ns=frame_cost_ns)
        StreamServer(tb.primary, "srv-p", port=80).start()
        StreamServer(tb.backup, "srv-b", port=80).start()
        tb.pair.start()
        client = StreamClient(tb.client, "client", tb.service_ip, port=80,
                              total_bytes=60_000_000)
        client.start()
        tb.run_until(90)
        return tb, client

    def test_new_architecture_survives_cpu_constrained_backup(self):
        """Without mirroring, the same CPU keeps up: the pair stays FT."""
        tb, client = self._run(mirror=False)
        assert client.received == client.total_bytes
        assert tb.pair.primary.mode == "fault-tolerant"
        assert tb.pair.backup.mode == "fault-tolerant"

    def test_old_architecture_overloads_backup(self):
        """With primary->client traffic mirrored to the backup, the
        CPU-constrained backup lags ever further behind — the Sec. 3
        'backup starts lagging behind the primary' problem.  Depending on
        which detector races ahead, the overload manifests as the primary
        declaring the backup failed (app lag) or the starved backup
        mistaking the delayed heartbeats for a primary crash; either way
        the pair degrades out of fault-tolerant operation."""
        tb, client = self._run(mirror=True)
        degraded = (tb.pair.primary.mode != "fault-tolerant"
                    or tb.pair.backup.mode != "fault-tolerant")
        assert degraded
        # The backup processed far more frames than the primary handled.
        assert tb.backup.cpu.jobs_run > tb.primary.ip.packets_received
