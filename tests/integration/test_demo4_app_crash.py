"""Demo 4: application crash failures, both paper scenarios, plus the four
FIN-disagreement cases of Sec. 4.2.2.
"""

import pytest

from repro.faults.faults import AppCrashWithCleanup, AppHang
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.sttcp.events import EventKind

TOTAL = 30_000_000
CONFIG = SttcpConfig(max_delay_fin_ns=seconds(5))


@pytest.fixture(scope="module")
def hang_result():
    """Scenario 1: primary app crashes, socket NOT closed (no FIN)."""
    return run_failover_experiment(
        lambda tb, sp, sb: AppHang(sp),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)


@pytest.fixture(scope="module")
def cleanup_result():
    """Scenario 2: OS cleans the app up and closes the socket (FIN)."""
    return run_failover_experiment(
        lambda tb, sp, sb: AppCrashWithCleanup(sp),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=5, run_until_s=60), config=CONFIG)


class TestScenario1NoFin:
    def test_stream_intact(self, hang_result):
        assert hang_result.stream_intact

    def test_detected_as_application_failure(self, hang_result):
        events = hang_result.testbed.pair.backup.events
        detection = events.first(EventKind.APP_FAILURE_DETECTED)
        assert detection is not None
        assert detection.detail["location"] == "primary"

    def test_detection_via_lag_criteria(self, hang_result):
        events = hang_result.testbed.pair.backup.events
        symptom = events.first(EventKind.APP_FAILURE_DETECTED).detail["symptom"]
        assert "AppMaxLag" in symptom

    def test_takeover_and_stonith(self, hang_result):
        assert hang_result.testbed.pair.backup.takeover_at is not None
        assert hang_result.testbed.power_strip.was_powered_down("primary")

    def test_paper_claim_all_no_fin_failures_detected(self, hang_result):
        """Sec. 4.2.1: 'ST-TCP detects all application failures of the
        type ... where a FIN or RST segment is not generated' (given
        activity on the connection)."""
        timeline = hang_result.timeline
        assert timeline.detected_at is not None
        assert timeline.failover_time_ns < seconds(5)


class TestScenario2WithFin:
    def test_stream_intact(self, cleanup_result):
        assert cleanup_result.stream_intact

    def test_fin_was_held_not_sent(self, cleanup_result):
        """The OS-generated FIN was intercepted and held (MaxDelayFIN);
        the client never saw a premature close."""
        primary_events = cleanup_result.testbed.pair.primary.events
        assert primary_events.has(EventKind.FIN_HELD)
        assert cleanup_result.client.reset_count == 0

    def test_backup_detected_failure_within_max_delay_fin(self, cleanup_result):
        timeline = cleanup_result.timeline
        assert timeline.detected_at - timeline.fault_at \
            < CONFIG.max_delay_fin_ns

    def test_takeover_happened(self, cleanup_result):
        assert cleanup_result.testbed.pair.backup.takeover_at is not None


class TestBackupAppFailures:
    """Rows 2-3 of Table 1, backup side: primary survives, backup killed."""

    def test_backup_hang_primary_goes_non_ft(self):
        result = run_failover_experiment(
            lambda tb, sp, sb: AppHang(sb),
            total_bytes=TOTAL, fault_at_s=1.0,
            options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
        assert result.stream_intact
        primary = result.testbed.pair.primary
        assert primary.mode == "non-fault-tolerant"
        assert primary.events.first(
            EventKind.APP_FAILURE_DETECTED).detail["location"] == "backup"
        assert result.testbed.power_strip.was_powered_down("backup")
        # The client never noticed anything at all.
        assert result.glitch_ns < seconds(1)

    def test_backup_cleanup_crash_fin_suppressed(self):
        """Sec. 4.2.2 case 2b: backup generates a FIN (crash), primary does
        not.  The backup's FIN is suppressed; the primary detects the
        failure and goes non-FT; the client sees nothing."""
        result = run_failover_experiment(
            lambda tb, sp, sb: AppCrashWithCleanup(sb),
            total_bytes=TOTAL, fault_at_s=1.0,
            options=RunOptions(seed=5, run_until_s=60), config=CONFIG)
        assert result.stream_intact
        backup_events = result.testbed.pair.backup.events
        assert backup_events.has(EventKind.FIN_SUPPRESSED)
        assert result.testbed.pair.primary.mode == "non-fault-tolerant"
        assert result.client.reset_count == 0


class TestNormalClosureNotDelayed:
    def test_no_fin_delay_during_normal_operation(self):
        """Paper: 'during normal operation - when neither the primary nor
        the backup has failed - the FIN is not delayed by MaxDelayFIN'."""
        result = run_failover_experiment(
            lambda tb, sp, sb: AppHang(sp),        # fault far in the future
            total_bytes=1_000_000, fault_at_s=50.0,
            options=RunOptions(seed=5, run_until_s=30), config=CONFIG)
        client = result.client
        assert client.received == 1_000_000
        # The whole exchange, including close, finished long before
        # MaxDelayFIN could have been involved.
        assert client.completed_at < seconds(5)
        primary_events = result.testbed.pair.primary.events
        released = primary_events.of_kind(EventKind.FIN_RELEASED)
        for event in released:
            assert "MaxDelayFIN" not in event.detail.get("reason", "")
