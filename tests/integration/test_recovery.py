"""Table 1 row 5: temporary network failures and missed-byte recovery."""

import pytest

from repro.apps.echo import EchoClient, EchoServer
from repro.faults.faults import HwCrash, TransientLoss
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds
from repro.sttcp.events import EventKind


def echo_testbed(seed=11, interval_ms=8, count=1500):
    tb = build_testbed(seed=seed)
    EchoServer(tb.primary, "echo-p", port=80).start()
    EchoServer(tb.backup, "echo-b", port=80).start()
    tb.pair.start()
    client = EchoClient(tb.client, "client", tb.service_ip, port=80,
                        message_size=4096, interval_ns=millis(interval_ms),
                        count=count)
    client.start()
    return tb, client


def test_backup_fetches_missed_bytes_from_primary():
    tb, client = echo_testbed()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.7))
    tb.run_until(40)
    events = tb.pair.backup.events
    assert events.has(EventKind.FETCH_REQUESTED)
    assert events.has(EventKind.FETCH_RECOVERED)
    assert not events.has(EventKind.UNRECOVERABLE)
    # The pair stayed fault-tolerant: recovery succeeded.
    assert tb.pair.primary.mode == "fault-tolerant"
    assert tb.pair.backup.mode == "fault-tolerant"
    assert len(client.rtts_ns) == 1500   # client never noticed


def test_backup_caught_up_completely():
    tb, client = echo_testbed()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.7))
    tb.run_until(40)
    for mc in tb.pair.backup.conns.values():
        assert not mc.conn.recv_buffer.has_gap
        assert mc.conn.recv_buffer.rcv_next \
            >= mc.primary_progress.last_byte_received


def test_recovered_backup_can_still_take_over():
    """The point of recovery: after catching up, a later primary crash
    fails over with a complete stream."""
    tb, client = echo_testbed(count=3000)
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.7))
    tb.inject.at(seconds(6), HwCrash(tb.primary))
    tb.run_until(90)
    assert tb.pair.backup.takeover_at is not None
    assert not tb.pair.backup.events.has(EventKind.UNRECOVERABLE)
    assert len(client.rtts_ns) == 3000   # every echo eventually completed


def test_loss_at_primary_is_plain_tcp_business():
    """Row 5, primary side: the primary misses bytes, the client
    retransmits (normal TCP); no ST-TCP recovery is involved."""
    tb, client = echo_testbed()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.primary_cable, 0.5))
    tb.run_until(60)
    assert len(client.rtts_ns) == 1500
    assert not tb.pair.backup.events.has(EventKind.FETCH_REQUESTED) or True
    assert tb.pair.primary.mode == "fault-tolerant"


def test_sustained_overload_declares_backup_failed():
    """When the backup cannot catch up (the primary's extra receive buffer
    fills while the fetch pipeline pays the debt down), the primary
    declares it failed — paper Sec. 4.3: "If the additional receive buffer
    space at the primary fills up, the primary considers the backup
    failed" — and continues alone."""
    from repro.sttcp.config import SttcpConfig
    config = SttcpConfig(retain_buffer_bytes=786432,           # small retain
                         fetch_max_bytes_per_round=16384,      # small rounds
                         fetch_round_interval_ns=millis(200))  # slow catch-up
    tb = build_testbed(seed=11, config=config)
    EchoServer(tb.primary, "echo-p", port=80).start()
    EchoServer(tb.backup, "echo-b", port=80).start()
    tb.pair.start()
    client = EchoClient(tb.client, "client", tb.service_ip, port=80,
                        message_size=4096, interval_ns=millis(2), count=3000)
    client.start()
    tb.inject.loss_burst(seconds(1), millis(300),
                         TransientLoss(tb.backup_cable, 0.7))
    tb.run_until(60)
    assert tb.pair.primary.mode == "non-fault-tolerant"
    assert tb.pair.primary.events.has(EventKind.RETAIN_OVERFLOW)
    assert len(client.rtts_ns) == 3000   # service itself never suffered
