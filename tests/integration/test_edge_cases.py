"""Edge-of-envelope scenarios: young connections, handshake-time crashes,
idle-connection crashes, and post-takeover service quality."""

import pytest

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import HwCrash
from repro.scenarios.builder import build_testbed
from repro.sim.core import millis, seconds
from repro.tcp.states import TcpState


def make_testbed(seed=51):
    tb = build_testbed(seed=seed)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    return tb


def test_very_young_connection_survives_crash():
    """Connection established ~50ms before the crash: the replica barely
    exists, yet the stream must survive."""
    tb = make_testbed()
    tb.run_until(1)   # engines settled
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=5_000_000)
    client.start()
    tb.inject.at(tb.world.sim.now + millis(50), HwCrash(tb.primary))
    tb.run_until(30)
    assert client.received == 5_000_000
    assert client.corrupt_at is None
    assert client.reset_count == 0


def test_crash_during_handshake_recovered_by_syn_retransmission():
    """The primary dies between the client's SYN and any data.  The paper
    does not promise handshake failover; what MUST hold is that the client
    still reaches the service — its retransmitted SYN is answered by the
    (now live) backup listener after takeover."""
    tb = make_testbed()
    tb.run_until(1)
    crash_at = tb.world.sim.now + millis(1)
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=100_000)
    client.start()
    tb.inject.at(crash_at, HwCrash(tb.primary))
    tb.run_until(60)
    assert client.received == 100_000
    assert client.corrupt_at is None


def test_idle_connection_crash_detected_and_served_later():
    """Crash while the connection is idle: detection is HB-based so it
    happens anyway; a later request is served by the backup on the same
    connection."""
    tb = make_testbed()
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=10_000, close_when_complete=False)
    client.start()
    tb.run_until(2)
    assert client.received == 10_000     # transfer done; connection idle
    tb.inject.at(seconds(3), HwCrash(tb.primary))
    tb.run_until(6)
    assert tb.pair.backup.takeover_at is not None
    # Ask for more data on the SAME socket: the backup must serve it.
    client.total_bytes = 20_000
    client._request_more(client.sock)
    tb.run_until(30)
    assert client.received == 20_000
    assert client.corrupt_at is None
    assert client.reset_count == 0


def test_new_connection_while_pair_degraded_non_ft():
    """After the backup is lost (non-FT mode), new clients still get
    ordinary, un-replicated service from the primary."""
    tb = make_testbed()
    tb.run_until(1)
    tb.inject.at(seconds(1.5), HwCrash(tb.backup))
    tb.run_until(4)
    assert tb.pair.primary.mode == "non-fault-tolerant"
    client = StreamClient(tb.client, "late", tb.service_ip, port=80,
                          total_bytes=1_000_000)
    client.start()
    tb.run_until(20)
    assert client.received == 1_000_000
    assert client.reset_count == 0


def test_back_to_back_transfers_across_failover():
    """Sequential request/response cycles on one connection, with the
    crash landing between cycles."""
    tb = make_testbed()
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=40_000_000, request_chunk=10_000_000)
    client.start()
    tb.inject.at(seconds(1), HwCrash(tb.primary))
    tb.run_until(90)
    assert client.received == 40_000_000
    assert client.corrupt_at is None
    assert client.reset_count == 0


def test_post_takeover_connection_closes_cleanly():
    tb = make_testbed()
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=20_000_000)   # closes when complete
    client.start()
    tb.inject.at(seconds(1), HwCrash(tb.primary))
    tb.run_until(90)
    assert client.received == 20_000_000
    # Full close handshake with the backup completed (TIME_WAIT or gone).
    assert client.sock.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
