"""Wire-level proof of the headline mechanism: after takeover the backup
continues the *same* TCP connection — same ports, same sequence space, no
SYN, no RST — while the Ethernet source quietly changes machines."""

import pytest

from repro.apps.streaming import StreamClient, StreamServer
from repro.faults.faults import HwCrash
from repro.scenarios.builder import build_testbed
from repro.sim.core import seconds
from repro.tcp.segment import TcpSegment
from repro.tcp.seq import seq_ge


@pytest.fixture(scope="module")
def capture():
    tb = build_testbed(seed=3)
    StreamServer(tb.primary, "srv-p", port=80).start()
    StreamServer(tb.backup, "srv-b", port=80).start()
    tb.pair.start()
    segments = []   # (time, segment) of every TCP segment the client got

    def tap(packet):
        if isinstance(packet.payload, TcpSegment) \
                and packet.payload.src_port == 80:
            segments.append((tb.world.sim.now, packet.payload))

    tb.client.ip.add_packet_tap(tap)
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=30_000_000)
    client.start()
    fault_at = seconds(1)
    tb.inject.at(fault_at, HwCrash(tb.primary))
    tb.run_until(60)
    assert client.received == 30_000_000
    return tb, client, segments, fault_at


def test_exactly_one_syn_ack_ever(capture):
    _tb, _client, segments, _fault = capture
    syns = [seg for _t, seg in segments if seg.syn]
    assert len(syns) == 1            # the original handshake, nothing else


def test_no_rst_ever(capture):
    _tb, _client, segments, _fault = capture
    assert not any(seg.rst for _t, seg in segments)


def test_sequence_space_continues_across_takeover(capture):
    """The last pre-crash data segment and the first post-takeover data
    segment belong to one monotonic sequence space."""
    _tb, _client, segments, fault_at = capture
    data = [(t, seg) for t, seg in segments if seg.payload]
    before = [seg for t, seg in data if t < fault_at]
    after = [seg for t, seg in data if t > fault_at]
    assert before and after
    last_before = before[-1]
    first_after = after[0]
    # The resumed stream overlaps or continues — never restarts.
    assert seq_ge(first_after.seq, last_before.seq) or \
        abs(first_after.seq - last_before.seq) < (1 << 20)
    # Same source port throughout.
    assert {seg.src_port for _t, seg in data} == {80}


def test_total_payload_spans_exactly_the_response(capture):
    """Coverage of [0, 30 MB) with no byte beyond the stream length + FIN."""
    tb, client, segments, _fault = capture
    data = [seg for _t, seg in segments if seg.payload]
    isn = min(seg.seq for _t, seg in segments if seg.syn)
    highest = max((seg.seq - isn - 1 + len(seg.payload)) & 0xFFFFFFFF
                  for seg in data)
    assert highest == 30_000_000
