"""Demo 1: client-transparent seamless failover (the headline property).

The paper's claim: with ST-TCP, a primary crash mid-stream appears to the
client "at worst as a glitch"; without it, the service is disrupted and
the client must reconnect.
"""

import pytest

from repro.faults.faults import HwCrash, OsCrash
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_baseline_failover, run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.events import EventKind

TOTAL = 30_000_000


@pytest.fixture(scope="module")
def demo1():
    return run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=3, run_until_s=40))


def test_every_byte_delivered_exactly_once(demo1):
    assert demo1.client.received == TOTAL
    assert demo1.client.corrupt_at is None   # in order, uncorrupted


def test_no_connection_reset_seen_by_client(demo1):
    assert demo1.client.reset_count == 0
    assert demo1.stream_intact


def test_transfer_was_actually_interrupted_by_the_fault(demo1):
    """Sanity: the crash happened mid-stream, not after completion."""
    received_at_fault = demo1.monitor.bytes_before(seconds(1))
    assert 0 < received_at_fault < TOTAL


def test_backup_took_over_and_powered_primary_down(demo1):
    backup_events = demo1.testbed.pair.backup.events
    assert backup_events.has(EventKind.PEER_CRASH_DETECTED)
    assert backup_events.has(EventKind.TAKEOVER)
    assert demo1.testbed.power_strip.was_powered_down("primary")


def test_glitch_is_subsecond_with_default_hb(demo1):
    assert demo1.glitch_ns is not None
    assert demo1.glitch_ns < seconds(1)


def test_failover_timeline_is_coherent(demo1):
    timeline = demo1.timeline
    assert timeline.fault_at <= timeline.detected_at <= timeline.takeover_at
    assert timeline.takeover_at <= timeline.client_resumed_at
    assert timeline.failover_time_ns < seconds(1)


def test_os_crash_is_equivalent_to_hw_crash():
    result = run_failover_experiment(
        lambda tb, sp, sb: OsCrash(tb.primary),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=4, run_until_s=40))
    assert result.stream_intact
    assert result.testbed.pair.backup.events.has(EventKind.PEER_CRASH_DETECTED)


def test_baseline_shows_the_contrast():
    """Without ST-TCP the same crash costs a reconnect and a multi-second
    outage — the paper's Demo-1 comparison."""
    sttcp = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=3, run_until_s=40))
    baseline = run_baseline_failover(total_bytes=TOTAL, fault_at_s=1.0,
                                     liveness_timeout_s=2.0,
                                     options=RunOptions(seed=3, run_until_s=60))
    assert baseline.client.reconnect_count >= 1     # client-visible outage
    assert sttcp.client.reset_count == 0            # ST-TCP: none
    assert baseline.disruption_ns > sttcp.glitch_ns * 2
