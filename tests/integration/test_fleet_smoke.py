"""Fleet-scale smoke: a 1024-client testbed survives a primary crash
with the invariant oracle attached and every stream intact.

This is the scaling counterpart of the 32-client workload tests: the
point is not throughput (benchmarks/bench_core_throughput.py --scaling
measures that) but that nothing about the fleet configuration — the
timer wheel under heavy timer load, batched flood delivery, switch
egress filtering, 1024 live TCP stacks — breaks protocol correctness.
The oracle checks all 15 invariants during the run and the test fails
on any violation (InvariantViolationError propagates).
"""

from repro.scenarios.options import RunOptions
from repro.workloads import WorkloadSpec, run_workload_failover


def test_1024_client_failover_is_oracle_clean():
    spec = WorkloadSpec(kind="stream", connections=96,
                        bytes_per_conn=4_000, mean_interarrival_s=0.004)
    result = run_workload_failover(
        spec, num_clients=1024, fault_at_s=0.5,
        options=RunOptions(seed=11, run_until_s=8.0, check=True),
        egress_filtering=True)
    assert result.all_intact
    assert result.engine.completed_count == 96
    assert result.oracle is not None and result.oracle.violations == []
    # "Clean" must mean the oracle actually watched the fleet traffic.
    assert result.oracle.checks["wire.seq-continuity"] > 100
    sim = result.testbed.world.sim
    assert sim.events_processed > 10_000


def test_1024_client_testbed_builds_compactly():
    """build_testbed(num_clients=1024) must stay cheap enough to be a
    unit-test citizen: every per-frame object on the hot path is slotted
    and the builder does no quadratic work."""
    from repro.scenarios.builder import build_testbed

    tb = build_testbed(num_clients=1024, egress_filtering=True)
    assert len(tb.clients) == 1024
    # One switch port per client NIC plus the infrastructure ports.
    assert len(tb.switch.ports) >= 1026
