"""Table 1, exhaustively: every single-failure row, both locations —
symptom classification AND recovery action."""

import pytest

from repro.faults.faults import (AppCrashWithCleanup, AppHang, HwCrash,
                                 NicFailure)
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.config import SttcpConfig
from repro.sttcp.events import EventKind

TOTAL = 30_000_000
CONFIG = SttcpConfig(max_delay_fin_ns=seconds(5))

# (row, fault factory, expected detection kind, expected recovery)
MATRIX = [
    ("row1-primary", lambda tb, sp, sb: HwCrash(tb.primary),
     EventKind.PEER_CRASH_DETECTED, "takeover"),
    ("row1-backup", lambda tb, sp, sb: HwCrash(tb.backup),
     EventKind.PEER_CRASH_DETECTED, "non-ft"),
    ("row2-primary", lambda tb, sp, sb: AppHang(sp),
     EventKind.APP_FAILURE_DETECTED, "takeover"),
    ("row2-backup", lambda tb, sp, sb: AppHang(sb),
     EventKind.APP_FAILURE_DETECTED, "non-ft"),
    ("row3-primary", lambda tb, sp, sb: AppCrashWithCleanup(sp),
     EventKind.APP_FAILURE_DETECTED, "takeover"),
    ("row3-backup", lambda tb, sp, sb: AppCrashWithCleanup(sb),
     EventKind.APP_FAILURE_DETECTED, "non-ft"),
    ("row4-primary", lambda tb, sp, sb: NicFailure(tb.primary.nics[0]),
     EventKind.NIC_FAILURE_DETECTED, "takeover"),
    ("row4-backup", lambda tb, sp, sb: NicFailure(tb.backup.nics[0]),
     EventKind.NIC_FAILURE_DETECTED, "non-ft"),
]


@pytest.mark.parametrize("row_id,fault,kind,recovery",
                         MATRIX, ids=[m[0] for m in MATRIX])
def test_single_failure_masked_and_classified(row_id, fault, kind, recovery):
    result = run_failover_experiment(fault, total_bytes=TOTAL,
                                     fault_at_s=1.0,
                                     options=RunOptions(seed=3, run_until_s=60),
                                     config=CONFIG)
    # The ST-TCP guarantee: the client never notices a single failure.
    assert result.stream_intact, f"{row_id}: stream damaged"
    pair = result.testbed.pair
    strip = result.testbed.power_strip

    if recovery == "takeover":
        assert pair.backup.events.has(kind), f"{row_id}: wrong classification"
        assert pair.backup.takeover_at is not None
        assert strip.was_powered_down("primary")
        assert pair.backup.mode == "active"
    else:
        assert pair.primary.events.has(kind), f"{row_id}: wrong classification"
        assert pair.backup.takeover_at is None
        assert strip.was_powered_down("backup")
        assert pair.primary.mode == "non-fault-tolerant"
