"""Demo 5: NIC failures at the primary and at the backup (Table 1 row 4).

In both parts the IP-link heartbeat dies while the serial heartbeat
survives; the servers use HB progress counters and gateway pings to decide
*whose* NIC failed.
"""

import pytest

from repro.faults.faults import CableCut, NicFailure
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import seconds
from repro.sttcp.events import EventKind

TOTAL = 30_000_000


@pytest.fixture(scope="module")
def primary_nic_result():
    return run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.primary.nics[0]),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))


@pytest.fixture(scope="module")
def backup_nic_result():
    return run_failover_experiment(
        lambda tb, sp, sb: NicFailure(tb.backup.nics[0]),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))


class TestPrimaryNicFailure:
    def test_stream_intact(self, primary_nic_result):
        assert primary_nic_result.stream_intact

    def test_ip_link_down_serial_up_observed(self, primary_nic_result):
        events = primary_nic_result.testbed.pair.backup.events
        assert events.has(EventKind.HB_IP_LINK_DOWN)
        assert not events.has(EventKind.HB_SERIAL_LINK_DOWN)

    def test_classified_as_nic_failure(self, primary_nic_result):
        events = primary_nic_result.testbed.pair.backup.events
        assert events.has(EventKind.NIC_FAILURE_DETECTED)

    def test_gateway_ping_probing_started(self, primary_nic_result):
        events = primary_nic_result.testbed.pair.backup.events
        assert events.has(EventKind.PING_PROBING)

    def test_backup_took_over(self, primary_nic_result):
        assert primary_nic_result.testbed.pair.backup.takeover_at is not None
        assert primary_nic_result.testbed.power_strip.was_powered_down(
            "primary")


class TestBackupNicFailure:
    def test_stream_never_interrupted(self, backup_nic_result):
        """The primary keeps serving; the client must see NO glitch beyond
        ordinary variation."""
        assert backup_nic_result.stream_intact
        assert backup_nic_result.glitch_ns < seconds(1)

    def test_primary_detects_and_goes_non_ft(self, backup_nic_result):
        primary = backup_nic_result.testbed.pair.primary
        assert primary.events.has(EventKind.NIC_FAILURE_DETECTED)
        assert primary.mode == "non-fault-tolerant"

    def test_backup_was_powered_down(self, backup_nic_result):
        assert backup_nic_result.testbed.power_strip.was_powered_down(
            "backup")

    def test_backup_did_not_take_over(self, backup_nic_result):
        assert backup_nic_result.testbed.pair.backup.takeover_at is None


def test_cable_cut_equivalent_to_nic_failure():
    result = run_failover_experiment(
        lambda tb, sp, sb: CableCut(tb.primary_cable),
        total_bytes=TOTAL, fault_at_s=1.0,
        options=RunOptions(seed=6, run_until_s=60))
    assert result.stream_intact
    assert result.testbed.pair.backup.events.has(EventKind.NIC_FAILURE_DETECTED)


def test_idle_connection_resolved_by_gateway_ping():
    """Sec. 4.3: with no client data flowing (e.g. FTP-like), byte-lag
    detection cannot work; the gateway-ping exchange must decide."""
    from repro.scenarios.builder import build_testbed
    from repro.apps.streaming import StreamServer, StreamClient
    from repro.faults.faults import NicFailure as Nf

    tb = build_testbed(seed=8)
    StreamServer(tb.primary, "sp", port=80).start()
    StreamServer(tb.backup, "sb", port=80).start()
    tb.pair.start()
    # Small completed transfer: the connection then sits idle.
    client = StreamClient(tb.client, "c", tb.service_ip, port=80,
                          total_bytes=10_000, close_when_complete=False)
    client.start()
    tb.run_until(2)
    assert client.received == 10_000
    tb.inject.at(tb.world.sim.now + 1, Nf(tb.primary.nics[0]))
    tb.run_until(15)
    backup_events = tb.pair.backup.events
    assert backup_events.has(EventKind.NIC_FAILURE_DETECTED)
    symptom = backup_events.first(
        EventKind.NIC_FAILURE_DETECTED).detail["symptom"]
    assert "ping" in symptom.lower()
    assert tb.pair.backup.takeover_at is not None
