"""Demo 2: failover time as a function of heartbeat frequency.

Paper: failover time = failure-detection time (HB misses) + the residual
wait until the next (exponentially backed-off) client/backup
retransmission.  Both components must appear and the total must grow with
the HB period.
"""

import pytest

from repro.faults.faults import HwCrash
from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_failover_experiment
from repro.sim.core import millis, seconds
from repro.sttcp.config import SttcpConfig

PERIODS_MS = (200, 500, 1000)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for period_ms in PERIODS_MS:
        results[period_ms] = run_failover_experiment(
            lambda tb, sp, sb: HwCrash(tb.primary),
            total_bytes=30_000_000, fault_at_s=2.0,
            options=RunOptions(seed=3, run_until_s=60),
            config=SttcpConfig(hb_period_ns=millis(period_ms)))
    return results


def test_all_streams_intact(sweep):
    for period_ms, result in sweep.items():
        assert result.stream_intact, f"corrupted stream at {period_ms}ms"


def test_detection_latency_tracks_hb_period(sweep):
    for period_ms, result in sweep.items():
        detection = result.timeline.detection_latency_ns
        config = SttcpConfig(hb_period_ns=millis(period_ms))
        # Nominal: miss_threshold * period, plus quantization slack.
        assert detection >= config.detection_time_ns * 0.6
        assert detection <= config.detection_time_ns + millis(period_ms)


def test_failover_time_monotonic_in_hb_period(sweep):
    times = [sweep[p].timeline.failover_time_ns for p in PERIODS_MS]
    assert times[0] < times[1] < times[2]


def test_backoff_residue_present(sweep):
    """After takeover the stream restarts only at the next retransmission;
    the residue is nonzero and grows with later (more backed-off) takeover."""
    residues = [sweep[p].timeline.backoff_residue_ns for p in PERIODS_MS]
    assert all(r > 0 for r in residues)
    assert residues[2] > residues[0]


def test_fastest_setting_is_subsecond(sweep):
    assert sweep[200].timeline.failover_time_ns < seconds(1)


def test_slowest_setting_is_seconds_scale(sweep):
    assert seconds(2) < sweep[1000].timeline.failover_time_ns < seconds(8)
