"""Demo 3: insignificant overhead of ST-TCP during failure-free operation.

The paper transfers ~100 MB with ST-TCP enabled and disabled and compares
times.  The integration test uses 20 MB (the benchmark runs the full
100 MB); the claim is relative, not absolute.
"""

import pytest

from repro.apps.filetransfer import FileClient, FileServer
from repro.scenarios.builder import build_testbed

SIZE = 20_000_000


def transfer_time(enable_sttcp: bool, seed: int = 5) -> int:
    tb = build_testbed(seed=seed,
                       mode="sttcp" if enable_sttcp else "baseline")
    FileServer(tb.primary, "fs-p", port=80).start()
    if enable_sttcp:
        FileServer(tb.backup, "fs-b", port=80).start()
        tb.pair.start()
    target = tb.service_ip if enable_sttcp else tb.addresses.primary_ip
    client = FileClient(tb.client, "client", target, port=80,
                        file_size=SIZE)
    client.start()
    tb.run_until(60)
    assert client.received == SIZE
    assert client.corrupt_at is None
    return client.transfer_time_ns


@pytest.fixture(scope="module")
def times():
    return transfer_time(True), transfer_time(False)


def test_transfer_completes_both_ways(times):
    on, off = times
    assert on is not None and off is not None


def test_overhead_under_two_percent(times):
    on, off = times
    overhead = (on - off) / off
    assert overhead < 0.02, f"ST-TCP overhead {overhead:.1%}"


def test_goodput_close_to_line_rate(times):
    on, _off = times
    goodput_mbps = SIZE * 8 * 1e9 / on / 1e6
    assert goodput_mbps > 80
