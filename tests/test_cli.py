"""Smoke tests for the ``python -m repro`` command-line interface."""

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("demo1", "demo2", "demo3", "demo4", "demo5", "table1"):
        assert name in out


def test_no_command_lists(capsys):
    assert main([]) == 0
    assert "demo1" in capsys.readouterr().out


def test_demo2_single_period(capsys):
    assert main(["demo2", "--hb", "200", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "200 ms" in out
    assert "failover time" in out


def test_demo3_small_size(capsys):
    assert main(["demo3", "--size", "5000000", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "overhead" in out
