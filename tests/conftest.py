"""Shared fixtures: a bare world, a two-host LAN, and testbed factories.

Setting ``REPRO_CHECK=1`` in the environment additionally attaches the
protocol invariant oracle (``docs/invariants.md``) to every ``World``
any test constructs, and fails the test if a run breached an invariant.
Tests that deliberately produce hostile or corrupted traffic opt out
with ``@pytest.mark.no_invariant_check``.
"""

from __future__ import annotations

import pytest

from repro.check.autocheck import env_enabled, patch_worlds
from repro.net.addresses import IPAddress
from repro.net.cable import Cable
from repro.net.switch import Switch
from repro.sim.world import World
from repro.host.host import Host


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_invariant_check: test produces deliberately invalid traffic; "
        "skip the REPRO_CHECK=1 invariant oracle for it")


@pytest.fixture(autouse=True)
def _invariant_check(request):
    """The ``REPRO_CHECK=1`` opt-in oracle (see module docstring)."""
    if (not env_enabled()
            or request.node.get_closest_marker("no_invariant_check")):
        yield
        return
    with patch_worlds() as oracles:
        yield
    violations = [v for oracle in oracles for v in oracle.violations]
    assert not violations, (
        "invariant oracle tripped (REPRO_CHECK=1):\n"
        + "\n".join(f"  {v}" for v in violations[:20]))


@pytest.fixture
def world() -> World:
    return World(seed=1234)


class Lan:
    """A small switched LAN for substrate tests."""

    def __init__(self, world: World, host_count: int = 2,
                 bandwidth_bps: int = 100_000_000, loss_rate: float = 0.0):
        self.world = world
        self.switch = Switch(world)
        self.hosts: list[Host] = []
        self.cables: list[Cable] = []
        for i in range(host_count):
            host = Host(world, f"h{i}")
            nic = host.add_nic(f"02:00:00:00:00:{i + 1:02x}",
                               [f"10.0.0.{i + 1}"], "10.0.0.0")
            port = self.switch.new_port()
            cable = Cable(world, nic, port, bandwidth_bps=bandwidth_bps,
                          loss_rate=loss_rate)
            nic.attach_cable(cable)
            port.cable = cable
            self.hosts.append(host)
            self.cables.append(cable)

    def ip(self, index: int) -> IPAddress:
        return IPAddress(f"10.0.0.{index + 1}")


@pytest.fixture
def lan(world: World) -> Lan:
    return Lan(world)


@pytest.fixture
def lan3(world: World) -> Lan:
    return Lan(world, host_count=3)


def make_lan(world: World, **kwargs) -> Lan:
    return Lan(world, **kwargs)
