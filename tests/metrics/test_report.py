"""Tests for the report formatting helpers."""

from repro.metrics.report import banner, format_duration, format_table
from repro.sim.core import millis, seconds


def test_format_duration_scales():
    assert format_duration(None) == "-"
    assert format_duration(500_000) == "500us"
    assert format_duration(millis(25)) == "25.0ms"
    assert format_duration(seconds(1.5)) == "1.500s"


def test_format_table_alignment():
    table = format_table(["name", "value"],
                         [["x", 1], ["longer-name", 22]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    # All rows the same width.
    assert len({len(line) for line in lines}) <= 2


def test_format_table_stringifies_cells():
    table = format_table(["a"], [[3.14159]])
    assert "3.14159" in table


def test_banner_centers_title():
    text = banner("Demo 1", width=40)
    assert "Demo 1" in text
    assert len(text) == 40
