"""Tests for the client stream monitor (gap/glitch analysis)."""

from repro.metrics.monitor import ClientStreamMonitor
from repro.sim.core import millis, seconds
from repro.sim.world import World


def feed(world, monitor, schedule):
    """schedule: list of (time_ns, nbytes)."""
    for t, n in schedule:
        world.sim.schedule_at(t, monitor.on_bytes, n)
    world.run()


def test_total_and_timestamps():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(100, 10), (200, 20)])
    assert monitor.total_bytes == 30
    assert monitor.first_byte_at == 100
    assert monitor.last_byte_at == 200


def test_max_gap():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(0, 1), (100, 1), (500, 1), (600, 1)])
    assert monitor.max_gap_ns() == 400
    assert monitor.max_gap_ns(after_ns=500) == 100


def test_gap_at_instant():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(100, 1), (1000, 1)])
    last_before, first_after, gap = monitor.gap_at(500)
    assert (last_before, first_after, gap) == (100, 1000, 900)
    assert monitor.gap_at(2000) is None  # nothing after


def test_largest_gap_after():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(0, 1), (100, 1), (2000, 1), (2100, 1)])
    stall = monitor.largest_gap_after(50)
    assert stall == (100, 2000, 1900)


def test_largest_gap_includes_boundary_sample():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(100, 1), (5000, 1)])
    # Even asking after t=200 sees the stall that started at 100.
    stall = monitor.largest_gap_after(200)
    assert stall == (100, 5000, 4900)


def test_resume_time_after():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(100, 1), (900, 1)])
    assert monitor.resume_time_after(100) == 900
    assert monitor.resume_time_after(900) is None


def test_bytes_before():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(100, 10), (200, 10), (300, 10)])
    assert monitor.bytes_before(250) == 20
    assert monitor.bytes_before(50) == 0


def test_throughput():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(0, 500_000), (seconds(1), 500_000)])
    assert abs(monitor.throughput_mbps() - 8.0) < 0.1


def test_events():
    world = World()
    monitor = ClientStreamMonitor(world)
    monitor.note_event("reset")
    monitor.note_event("reconnect")
    monitor.note_event("reset")
    assert len(monitor.events_of("reset")) == 2


def test_progress_series_downsamples():
    world = World()
    monitor = ClientStreamMonitor(world)
    feed(world, monitor, [(i * millis(10), 100) for i in range(100)])
    series = monitor.progress_series(millis(100))
    assert len(series) <= 12
    assert series[-1][1] == monitor.total_bytes


def test_empty_monitor_is_graceful():
    world = World()
    monitor = ClientStreamMonitor(world)
    assert monitor.max_gap_ns() == 0
    assert monitor.gap_at(100) is None
    assert monitor.largest_gap_after(0) is None
    assert monitor.throughput_mbps() is None
    assert monitor.progress_series(1000) == []
