"""Tests for the ASCII figure helpers."""

import pytest

from repro.metrics.figures import bar_chart, sparkline, step_series


def test_bar_chart_scales_to_peak():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, unit="s")
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("█") == 10       # the peak fills the width
    assert lines[0].count("█") == 5
    assert "2s" in lines[1]


def test_bar_chart_validates_lengths():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_bar_chart_empty():
    assert bar_chart([], []) == "(empty chart)"


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 4])
    assert len(line) == 5
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_resamples():
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10


def test_sparkline_flat_series():
    assert sparkline([5, 5, 5]) == "▁▁▁"


def test_step_series_renders_extents():
    plot = step_series([(0, 0), (1, 10), (2, 20)], width=20, height=5)
    assert "*" in plot
    assert "[0, 2]" in plot and "[0, 20]" in plot


def test_step_series_empty():
    assert step_series([]) == "(no data)"
