"""Tests for failover timeline assembly."""

from repro.metrics.monitor import ClientStreamMonitor
from repro.metrics.timeline import FailoverTimeline, build_timeline
from repro.sim.core import seconds
from repro.sim.world import World
from repro.sttcp.events import EngineEventLog, EventKind


def test_timeline_derived_quantities():
    timeline = FailoverTimeline(fault_at=seconds(1),
                                detected_at=seconds(2),
                                takeover_at=seconds(2),
                                client_resumed_at=seconds(3))
    assert timeline.detection_latency_ns == seconds(1)
    assert timeline.failover_time_ns == seconds(2)
    assert timeline.backoff_residue_ns == seconds(1)


def test_timeline_tolerates_missing_fields():
    timeline = FailoverTimeline()
    assert timeline.detection_latency_ns is None
    assert timeline.failover_time_ns is None
    assert timeline.backoff_residue_ns is None
    assert "-" in timeline.describe()


def test_build_from_event_logs():
    backup = EngineEventLog()
    primary = EngineEventLog()
    backup.emit(seconds(2), EventKind.PEER_CRASH_DETECTED)
    backup.emit(seconds(2), EventKind.STONITH, target="primary")
    backup.emit(seconds(2), EventKind.TAKEOVER)
    timeline = build_timeline(seconds(1), backup, primary)
    assert timeline.detected_at == seconds(2)
    assert timeline.detection_kind == EventKind.PEER_CRASH_DETECTED
    assert timeline.takeover_at == seconds(2)
    assert timeline.stonith_at == seconds(2)


def test_earliest_detection_across_logs():
    backup = EngineEventLog()
    primary = EngineEventLog()
    backup.emit(seconds(3), EventKind.APP_FAILURE_DETECTED)
    primary.emit(seconds(2), EventKind.NIC_FAILURE_DETECTED)
    timeline = build_timeline(seconds(1), backup, primary)
    assert timeline.detected_at == seconds(2)
    assert timeline.detection_kind == EventKind.NIC_FAILURE_DETECTED


def test_resume_from_monitor_stall():
    world = World()
    monitor = ClientStreamMonitor(world)
    for t in (0, 100, 200):
        world.sim.schedule_at(seconds(1) + t, monitor.on_bytes, 1)
    world.sim.schedule_at(seconds(4), monitor.on_bytes, 1)
    world.run()
    backup = EngineEventLog()
    timeline = build_timeline(seconds(2), backup, None, monitor)
    assert timeline.client_resumed_at == seconds(4)
    assert timeline.failover_time_ns == seconds(2)


def test_non_ft_recorded():
    primary = EngineEventLog()
    primary.emit(seconds(5), EventKind.NON_FT_MODE)
    timeline = build_timeline(seconds(1), EngineEventLog(), primary)
    assert timeline.non_ft_at == seconds(5)
