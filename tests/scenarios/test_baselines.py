"""Tests for the non-ST-TCP hot-standby baseline (Demo 1's comparison)."""

from repro.scenarios.options import RunOptions
from repro.scenarios.runner import run_baseline_failover


def test_baseline_client_recovers_by_reconnecting():
    result = run_baseline_failover(total_bytes=20_000_000, fault_at_s=1.0,
                                   liveness_timeout_s=2.0,
                                   options=RunOptions(run_until_s=40))
    client = result.client
    assert client.received == 20_000_000
    assert client.completed_at is not None
    assert client.reconnect_count >= 1
    assert client.corrupt_at is None


def test_baseline_disruption_includes_app_timeout():
    result = run_baseline_failover(total_bytes=20_000_000, fault_at_s=1.0,
                                   liveness_timeout_s=2.0,
                                   options=RunOptions(run_until_s=40))
    # The client cannot even start recovering before its liveness timeout:
    # the disruption is at least that long.
    assert result.disruption_ns >= 2_000_000_000


def test_baseline_without_failure_completes_without_reconnect():
    result = run_baseline_failover(total_bytes=5_000_000, fault_at_s=30.0,
                                   liveness_timeout_s=2.0,
                                   options=RunOptions(run_until_s=20))
    assert result.client.received == 5_000_000
    assert result.client.reconnect_count == 0
