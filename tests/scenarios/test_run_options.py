"""The unified RunOptions surface and the redesigned builder parameters.

These pin the API contract post-redesign: ``options=RunOptions(...)`` is
the one knob surface (the pre-``RunOptions`` per-keyword shims are gone),
``build_testbed(mode=...)`` takes only the mode *strings*, multi-client
testbeds get a generated address plan, and the congestion-control
algorithm rides on ``RunOptions.cc`` / ``build_testbed(cc=...)`` all the
way into every TCP endpoint (see docs/congestion.md).
"""

import pytest

from repro.faults.faults import HwCrash
from repro.scenarios import (DEFAULT_TRACE_CATEGORIES, LoggerAttachment,
                             RunOptions, build_testbed,
                             run_baseline_failover, run_failover_experiment)


# ------------------------------------------------------------- RunOptions

def test_run_options_defaults():
    opts = RunOptions()
    assert opts.seed == 3
    assert opts.run_until_s == 60.0
    assert opts.obs_level is None
    assert opts.check is False
    assert opts.cc is None
    assert opts.trace_categories == DEFAULT_TRACE_CATEGORIES


def test_run_options_rejects_bad_obs_level():
    with pytest.raises(ValueError):
        RunOptions(obs_level="everything")


def test_run_options_rejects_unknown_cc():
    with pytest.raises(ValueError):
        RunOptions(cc="vegas")


def test_with_copies_and_replaces():
    opts = RunOptions(seed=1)
    changed = opts.with_(seed=9, check=True, cc="cubic")
    assert (changed.seed, changed.check, changed.cc) == (9, True, "cubic")
    assert (opts.seed, opts.check, opts.cc) == (1, False, None)


def test_legacy_per_runner_keywords_are_gone():
    """The pre-RunOptions shims were retired: passing the old keywords
    must fail loudly instead of being silently merged."""
    with pytest.raises(TypeError):
        run_failover_experiment(
            lambda tb, sp, sb: HwCrash(tb.primary),
            total_bytes=100_000, fault_at_s=0.5, seed=5, run_until_s=5.0)


def test_runner_accepts_options_object():
    result = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=100_000, fault_at_s=0.5,
        options=RunOptions(seed=5, run_until_s=5.0))
    assert result.stream_intact
    assert result.testbed.world.sim.now == 5_000_000_000


# ------------------------------------------------------------------- cc

def test_options_cc_reaches_every_endpoint():
    result = run_failover_experiment(
        lambda tb, sp, sb: HwCrash(tb.primary),
        total_bytes=100_000, fault_at_s=0.5,
        options=RunOptions(seed=5, run_until_s=5.0, cc="cubic"))
    assert result.stream_intact
    for host in (result.testbed.primary, result.testbed.backup,
                 result.testbed.client):
        assert host.tcp.config.cc == "cubic"
        for conn in host.tcp.connections:
            assert conn.cc.name == "cubic"


def test_builder_cc_sets_tcp_config():
    tb = build_testbed(seed=1, cc="tahoe")
    assert tb.primary.tcp.config.cc == "tahoe"
    assert tb.client.tcp.config.cc == "tahoe"


def test_builder_rejects_unknown_cc():
    with pytest.raises(ValueError):
        build_testbed(seed=1, cc="vegas")


# ----------------------------------------------------------------- mode

def test_mode_baseline_builds_without_pair():
    tb = build_testbed(seed=1, mode="baseline")
    assert tb.pair is None
    assert tb.serial_link is None


def test_mode_rejects_non_string():
    """The bool-mode back-compat shim was retired with the redesign."""
    with pytest.raises(ValueError):
        build_testbed(seed=1, mode=True)


def test_mode_rejects_unknown_string():
    with pytest.raises(ValueError):
        build_testbed(seed=1, mode="turbo")


# --------------------------------------------------------- multi-client

def test_num_clients_builds_distinct_hosts():
    tb = build_testbed(seed=1, num_clients=4)
    assert len(tb.clients) == 4
    assert tb.client is tb.clients[0]
    names = [h.name for h in tb.clients]
    assert names == ["client", "client1", "client2", "client3"]
    ips = [h.interfaces[0].addresses[0] for h in tb.clients]
    assert len(set(ips)) == 4
    macs = [h.nics[0].mac for h in tb.clients]
    assert len(set(macs)) == 4


def test_every_client_has_static_service_arp():
    tb = build_testbed(seed=1, num_clients=3)
    for host in tb.clients:
        mac = host.interfaces[0].arp.lookup(tb.service_ip)
        assert mac == tb.addresses.multi_ea


def test_single_client_testbed_unchanged():
    """num_clients=1 must be the exact Figure-2 testbed (prefix /24)."""
    tb = build_testbed(seed=1)
    assert len(tb.clients) == 1
    assert tb.clients[0].name == "client"
    assert "client" in tb.cables


# ---------------------------------------------------- LoggerAttachment

def test_add_logger_returns_named_result():
    tb = build_testbed(seed=1)
    attachment = tb.add_logger()
    assert isinstance(attachment, LoggerAttachment)
    assert attachment.host.name == "logger"
    assert attachment.logger is not None
    host, logger = attachment  # historical tuple unpack still works
    assert host is attachment.host and logger is attachment.logger
    assert "logger" in tb.cables


# --------------------------------------------------- baseline timeline

def test_baseline_export_carries_fault_marker():
    """Regression: the baseline runner used to finalize its ObsSession
    without a timeline, so baseline exports lacked the fault instant."""
    result = run_baseline_failover(
        total_bytes=100_000, fault_at_s=0.5,
        options=RunOptions(seed=4, run_until_s=8, obs_level="counters"))
    assert result.timeline is not None
    assert result.timeline.fault_at == 500_000_000
    gauges = result.obs.metrics.snapshot()["gauges"]
    assert gauges["sttcp.fault_at_ns"] == 500_000_000
